//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface MacroBase-RS's unit tests use — the [`proptest!`]
//! macro, [`Strategy`] for integer/float ranges, [`collection::vec`],
//! [`ProptestConfig::with_cases`], and `prop_assert!`/`prop_assert_eq!` —
//! as deterministic randomized tests: each property runs a fixed number of
//! cases drawn from a seeded SplitMix64 stream. No shrinking, no persistence
//! of failing cases; failures report the case index instead. See
//! `vendor/README.md` for the rationale.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator state threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Create a runner from a seed.
    pub fn new(seed: u64) -> Self {
        TestRunner { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (runner.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        })*
    };
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (runner.next_f64() as $t) * (self.end - self.start)
            }
        })*
    };
}

float_range_strategy!(f32, f64);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy generating `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    /// Generate vectors of values from `element` with length in `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = Strategy::sample(&self.length, runner);
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Per-property configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stand-in has no shrinking, so a
        // smaller default keeps `cargo test` latency reasonable while still
        // exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Define property tests: each `fn` runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        $(#[test] fn $name:ident $args:tt $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $(#[test] fn $name $args $body)*);
    };
    (@impl ($config:expr); $(
        #[test]
        fn $name:ident( $($pat:pat_param in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Seed from the property name so distinct properties explore
                // distinct streams, deterministically across runs.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf29ce484222325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100000001b3)
                    });
                for case in 0..config.cases {
                    let mut runner =
                        $crate::TestRunner::new(seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut runner);)*
                    #[allow(unused_mut)]
                    let mut run = move || -> ::std::result::Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(message) = run() {
                        panic!("property {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = crate::TestRunner::new(1);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3usize..17), &mut runner);
            assert!((3..17).contains(&x));
            let f = Strategy::sample(&(-2.0f64..4.0), &mut runner);
            assert!((-2.0..4.0).contains(&f));
            let signed = Strategy::sample(&(-5i32..5), &mut runner);
            assert!((-5..5).contains(&signed));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut runner = crate::TestRunner::new(2);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u32..30, 1..9), &mut runner);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 30));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_round_trip(mut data in prop::collection::vec(0u64..100, 0..20), k in 1usize..5) {
            data.push(k as u64);
            prop_assert!(!data.is_empty());
            prop_assert_eq!(data.last().copied(), Some(k as u64));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRunner::new(7);
        let mut b = crate::TestRunner::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
