//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the exact surface the MacroBase-RS workspace uses — the
//! [`json!`] macro, [`Value`], [`Map`], and JSON text serialization through
//! [`std::fmt::Display`] — so harness binaries can emit machine-readable
//! result rows without a crates.io dependency. See `vendor/README.md`.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Map<String, Value>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating point number.
    Float(f64),
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
///
/// Backed by a `Vec` of pairs: the harness emits small flat objects, so
/// linear-scan insertion is cheaper and keeps key order stable in output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert a key/value pair, replacing and returning any previous value
    /// for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Borrow the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Mutably borrow the object map if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Borrow the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Return the number as `f64` if this value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        })*
    };
}

from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Convert any supported type into a [`Value`].
pub fn to_value<T: Into<Value>>(v: T) -> Value {
    v.into()
}

/// By-reference conversion into [`Value`], used by the [`json!`] macro so
/// that (matching upstream serde_json) macro operands are borrowed, not
/// moved.
pub trait ToJson {
    /// Convert to a JSON value without consuming `self`.
    fn to_json(&self) -> Value;
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(self.clone())
            }
        })*
    };
}

to_json_via_from!(
    i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool, String
);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(v) if v.is_finite() => {
                // Match serde_json: floats always carry a fractional part.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Infinity; serde_json refuses them at
            // construction, we serialize as null at the use site instead.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Build a [`Value`] from a JSON-like literal.
///
/// Supports the subset the workspace uses: `null`, flat
/// `{ "key": expr, ... }` objects, `[expr, ...]` arrays, and bare
/// expressions convertible via [`Into<Value>`]. Nest objects by writing
/// `json!({ "outer": json!({ "inner": 1 }) })` — unlike upstream, bare
/// nested braces are not parsed.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToJson::to_json(&$elem)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&$value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Error produced by [`from_str`] on malformed JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document into a [`Value`] (the inverse of `Display`).
///
/// Supports the full JSON grammar: objects, arrays, strings (with the same
/// escapes `Display` emits plus `\/`, `\b`, `\f`, and `\uXXXX`), numbers,
/// booleans, and `null`. Trailing content after the document is an error.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.consume_literal("true", Value::Bool(true)),
            Some(b'f') => self.consume_literal("false", Value::Bool(false)),
            Some(b'n') => self.consume_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by Display and
                            // are rejected rather than silently mangled.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_round_trips() {
        let v = json!({"name": "mcd", "dim": 32usize, "secs": 1.5, "ok": true});
        assert_eq!(
            v.to_string(),
            r#"{"name":"mcd","dim":32,"secs":1.5,"ok":true}"#
        );
    }

    #[test]
    fn whole_floats_keep_fraction() {
        assert_eq!(json!(2.0f64).to_string(), "2.0");
        assert_eq!(json!(2.5f64).to_string(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json!("a\"b\\c\n").to_string(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn nested_values_work() {
        let v = json!({"outer": json!({"inner": json!([1, 2, 3])}), "empty": Value::Null});
        assert_eq!(v.to_string(), r#"{"outer":{"inner":[1,2,3]},"empty":null}"#);
    }

    #[test]
    fn insert_replaces_and_preserves_order() {
        let mut v = json!({"a": 1, "b": 2});
        let map = v.as_object_mut().unwrap();
        assert_eq!(map.insert("a".into(), json!(9)), Some(json!(1)));
        assert_eq!(map.insert("c".into(), json!(3)), None);
        assert_eq!(v.to_string(), r#"{"a":9,"b":2,"c":3}"#);
    }

    #[test]
    fn parser_round_trips_emitted_documents() {
        let original = json!({
            "experiment": "fig11",
            "partitions": 8usize,
            "seconds": 0.125,
            "jaccard": 1.0,
            "mode": "coordinated",
            "ok": true,
            "missing": Value::Null
        });
        let parsed = from_str(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let parsed = from_str(
            r#" { "a" : [1, -2.5, 1e3, {"b": "x\n\"y\u0041"}], "c": [] } "#,
        )
        .unwrap();
        let obj = parsed.as_object().unwrap();
        let arr = match obj.get("a").unwrap() {
            Value::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        let inner = arr[3].as_object().unwrap();
        assert_eq!(inner.get("b").and_then(Value::as_str), Some("x\n\"yA"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = json!({"s": "x", "n": 4});
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(obj.get("n").and_then(Value::as_f64), Some(4.0));
        assert_eq!(obj.len(), 2);
        assert!(!obj.is_empty());
    }
}
