//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the exact surface the MacroBase-RS workspace uses — the
//! [`json!`] macro, [`Value`], [`Map`], and JSON text serialization through
//! [`std::fmt::Display`] — so harness binaries can emit machine-readable
//! result rows without a crates.io dependency. See `vendor/README.md`.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Map<String, Value>),
}

/// A JSON number: integer or finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating point number.
    Float(f64),
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
///
/// Backed by a `Vec` of pairs: the harness emits small flat objects, so
/// linear-scan insertion is cheaper and keeps key order stable in output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert a key/value pair, replacing and returning any previous value
    /// for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Borrow the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Mutably borrow the object map if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Borrow the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Return the number as `f64` if this value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        })*
    };
}

from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Convert any supported type into a [`Value`].
pub fn to_value<T: Into<Value>>(v: T) -> Value {
    v.into()
}

/// By-reference conversion into [`Value`], used by the [`json!`] macro so
/// that (matching upstream serde_json) macro operands are borrowed, not
/// moved.
pub trait ToJson {
    /// Convert to a JSON value without consuming `self`.
    fn to_json(&self) -> Value;
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(self.clone())
            }
        })*
    };
}

to_json_via_from!(
    i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool, String
);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(v) if v.is_finite() => {
                // Match serde_json: floats always carry a fractional part.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Infinity; serde_json refuses them at
            // construction, we serialize as null at the use site instead.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Build a [`Value`] from a JSON-like literal.
///
/// Supports the subset the workspace uses: `null`, flat
/// `{ "key": expr, ... }` objects, `[expr, ...]` arrays, and bare
/// expressions convertible via [`Into<Value>`]. Nest objects by writing
/// `json!({ "outer": json!({ "inner": 1 }) })` — unlike upstream, bare
/// nested braces are not parsed.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToJson::to_json(&$elem)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&$value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_round_trips() {
        let v = json!({"name": "mcd", "dim": 32usize, "secs": 1.5, "ok": true});
        assert_eq!(
            v.to_string(),
            r#"{"name":"mcd","dim":32,"secs":1.5,"ok":true}"#
        );
    }

    #[test]
    fn whole_floats_keep_fraction() {
        assert_eq!(json!(2.0f64).to_string(), "2.0");
        assert_eq!(json!(2.5f64).to_string(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json!("a\"b\\c\n").to_string(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn nested_values_work() {
        let v = json!({"outer": json!({"inner": json!([1, 2, 3])}), "empty": Value::Null});
        assert_eq!(v.to_string(), r#"{"outer":{"inner":[1,2,3]},"empty":null}"#);
    }

    #[test]
    fn insert_replaces_and_preserves_order() {
        let mut v = json!({"a": 1, "b": 2});
        let map = v.as_object_mut().unwrap();
        assert_eq!(map.insert("a".into(), json!(9)), Some(json!(1)));
        assert_eq!(map.insert("c".into(), json!(3)), None);
        assert_eq!(v.to_string(), r#"{"a":9,"b":2,"c":3}"#);
    }

    #[test]
    fn accessors() {
        let v = json!({"s": "x", "n": 4});
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(obj.get("n").and_then(Value::as_f64), Some(4.0));
        assert_eq!(obj.len(), 2);
        assert!(!obj.is_empty());
    }
}
