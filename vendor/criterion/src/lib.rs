//! Offline stand-in for the `criterion` crate.
//!
//! Implements the surface MacroBase-RS's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a deliberately simple measurement loop: one warm-up call, then
//! `MB_BENCH_ITERS` timed calls (default 3), reporting min and median wall
//! time plus derived throughput. No statistics, plots, or baselines; swap in
//! real criterion (see `vendor/README.md`) when crates.io access exists.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from eliding a benchmarked
/// computation, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Call `routine` once to warm up, then time it `MB_BENCH_ITERS` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), None, f);
    }
}

/// A named group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in's iteration count comes
    /// from `MB_BENCH_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a named benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.throughput, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.to_string(), self.throughput, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

fn configured_iters() -> usize {
    std::env::var("MB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters: configured_iters(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput
        .map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let per_s = count as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE);
            format!("  {per_s:.3e} {unit}")
        })
        .unwrap_or_default();
    println!(
        "  {label:<40} min {:>12?}  median {:>12?}{rate}",
        min, median
    );
}

/// Define a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 4,
        };
        let mut calls = 0usize;
        b.iter(|| calls += 1);
        // One warm-up call plus four timed calls.
        assert_eq!(calls, 5);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("amc", 100).to_string(), "amc/100");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 2), &2, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
