//! # MacroBase-RS
//!
//! A Rust reproduction of **MacroBase: Prioritizing Attention in Fast Data**
//! (Bailis et al., SIGMOD 2017): a fast-data analytics engine that combines
//! streaming **classification** (robust, density-based outlier detection)
//! with streaming **explanation** (risk-ratio attribute-combination mining)
//! so that a handful of returned results capture the most important
//! behaviours in a high-volume stream.
//!
//! This façade crate re-exports the full public API of the workspace:
//!
//! * [`core`] — data types, operator traits, and the unified query surface:
//!   one `MdpQuery` executed by any `Executor` backend (one-shot,
//!   coordinated partitioned, naïve partitioned, streaming).
//! * [`stats`] — robust statistics: MAD, FastMCD, Mahalanobis distances,
//!   confidence intervals.
//! * [`sketch`] — the Adaptable Damped Reservoir (ADR), the Amortized
//!   Maintenance Counter (AMC), SpaceSaving baselines, streaming quantiles.
//! * [`fpgrowth`] — FP-tree/FPGrowth, CPS-tree and M-CPS-tree itemset mining.
//! * [`classify`] — MAD/MCD/Z-score/rule classifiers and percentile
//!   thresholds.
//! * [`explain`] — risk-ratio explanation (batch, streaming, and baselines).
//! * [`transform`] — STFT, autocorrelation, windowing, normalization,
//!   optical-flow features.
//! * [`ingest`] — CSV ingestion and the synthetic workloads used by the
//!   paper's evaluation.
//! * [`scenario`] — labeled fault-injection scenarios with ground truth,
//!   plus the shared precision/recall/Jaccard metrics
//!   ([`scenario::eval`]) behind the accuracy harness.
//! * [`pool`] — the work-stealing execution substrate behind the
//!   partitioned modes, FastMCD's C-steps, and parallel attribute encoding
//!   (vendored rayon stand-in; scoped `join`/`parallel_for`/`map_reduce`).
//! * [`obs`] — the mergeable telemetry layer: lock-free metric registries
//!   (counters, gauges, log-bucketed latency histograms) folded with the
//!   same `Mergeable` algebra the engines use, per-stage query traces
//!   attached to reports when `ObsConfig` is enabled (off by default), and
//!   a JSON-lines exporter behind the reproduction binaries' `--trace`.
//! * [`serve`] — the resident multi-query server: bounded priority
//!   admission over the shared pool, an epoch-versioned shared model cache
//!   (train once, score for every subscriber; retrains publish new epochs
//!   without stalling readers), streaming-session lifecycle with idle
//!   expiry, and a JSON-lines wire protocol over stdin/stdout (the
//!   `mb_serve` binary). Reports served concurrently are byte-identical to
//!   standalone runs.
//!
//! ## Quickstart
//!
//! ```
//! use macrobase::prelude::*;
//!
//! // A stream of power readings tagged with device ids; one device misbehaves.
//! let mut points: Vec<Point> = (0..5_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 50)))
//!     .collect();
//! for i in 0..50 {
//!     points[i * 100] = Point::simple(90.0, "device_13");
//! }
//!
//! // One query...
//! let mut query = MdpQuery::with_defaults();
//! let report = query.execute(&Executor::OneShot, &points).unwrap();
//! assert!(report.explanations.iter().any(|e| {
//!     e.attributes.iter().any(|a| a.contains("device_13"))
//! }));
//!
//! // ...any engine. Coordinated partitioned execution shares one trained
//! // model and merges pre-render explanation state, so the report is exactly
//! // the one-shot report at any partition count (unlike
//! // `Executor::NaivePartitioned`, whose accuracy degrades with cores).
//! let mut query = MdpQuery::with_defaults();
//! let scaled = query
//!     .execute(&Executor::Coordinated { partitions: 8 }, &points)
//!     .unwrap();
//! assert_eq!(scaled.num_outliers, report.num_outliers);
//! ```

pub use macrobase_core as core;
pub use mb_classify as classify;
pub use mb_obs as obs;
pub use mb_explain as explain;
pub use mb_fpgrowth as fpgrowth;
pub use mb_ingest as ingest;
pub use mb_pool as pool;
pub use mb_scenario as scenario;
pub use mb_serve as serve;
pub use mb_sketch as sketch;
pub use mb_stats as stats;
pub use mb_transform as transform;

/// Commonly used types, re-exported for `use macrobase::prelude::*`.
pub mod prelude {
    pub use crate::core::executor::{MdpClassifier, MdpExplainer};
    pub use crate::core::operator::{
        Classifier, CsvIngestor, Explainer, Ingestor, Transformer, VecIngestor,
    };
    pub use crate::core::parallel::default_num_partitions;
    pub use crate::core::presentation::render_report;
    pub use crate::core::query::{
        AnalysisConfig, EstimatorKind, Executor, MdpQuery, MdpQueryBuilder, StreamingOptions,
    };
    pub use crate::core::streaming::StreamingSession;
    pub use crate::core::types::{LabeledPoint, MdpReport, Point, RenderedExplanation};
    pub use crate::core::{Classification, Label, PipelineError};
    pub use crate::explain::ExplanationConfig;
    pub use crate::obs::{ObsConfig, QueryTrace};

    // Deprecated pre-query entry points, kept so existing code compiles
    // (each carries a migration pointer in its deprecation note).
    #[allow(deprecated)]
    pub use crate::core::coordinated::run_coordinated;
    #[allow(deprecated)]
    pub use crate::core::oneshot::{MdpConfig, MdpOneShot};
    #[allow(deprecated)]
    pub use crate::core::parallel::run_partitioned;
    #[allow(deprecated)]
    pub use crate::core::pipeline::{Pipeline, PipelineBuilder};
    #[allow(deprecated)]
    pub use crate::core::streaming::{MdpStreaming, StreamingMdpConfig};
}
