//! Naïve shared-nothing partitioned execution (Appendix D, Figure 11) and
//! the scatter scaffold shared by both partitioned backends.
//!
//! The paper's preliminary scale-out strategy partitions the input across
//! cores, runs an independent MDP query per partition, and returns the union
//! of the per-partition explanations. Throughput scales linearly, but
//! accuracy degrades because each partition trains on a sample of the data
//! and explanations are not coordinated across partitions — the benchmark
//! harness reproduces both halves of that trade-off. The engine lives in
//! [`crate::executor`] (`Executor::NaivePartitioned`); this module keeps
//! the partitioning utilities and the deprecated free-function entry point.

use crate::query::{AnalysisConfig, Executor, MdpQuery};
use crate::types::{MdpReport, Point, RenderedExplanation};
use crate::Result;

/// The partition count used when a caller passes `0`: one partition per
/// worker in the shared execution pool. This respects
/// [`mb_pool::configure_global_threads`] (and the harness `--threads`
/// flag) rather than blindly using the machine's core count — for the
/// naïve mode especially, over-partitioning beyond the pool costs accuracy
/// for no throughput.
pub fn default_num_partitions() -> usize {
    mb_pool::global().num_threads()
}

/// Resolve a caller-supplied partition count: `0` means "derive from
/// [`default_num_partitions`]".
pub(crate) fn resolve_num_partitions(num_partitions: usize) -> usize {
    if num_partitions == 0 {
        default_num_partitions()
    } else {
        num_partitions
    }
}

/// Split a slice into `num_partitions` contiguous chunks (the last may be
/// short). Shared by the naïve and coordinated partitioned executors.
pub(crate) fn partition_chunks<T>(items: &[T], num_partitions: usize) -> Vec<&[T]> {
    assert!(num_partitions > 0, "need at least one partition");
    let chunk_size = items.len().div_ceil(num_partitions);
    items.chunks(chunk_size.max(1)).collect()
}

/// Run `work` over each chunk on the shared work-stealing pool and collect
/// the results in chunk order — the scatter half of the partitioned
/// executors. Tasks share nothing except what `work` captures by reference.
/// Submitting to the resident [`mb_pool::global`] pool replaces the
/// per-call `std::thread::scope` spawn this used to pay, which dominated
/// scatter cost for small batches (see `fig11_scaleout`'s scatter-overhead
/// section). A panic inside `work` propagates to the caller.
pub(crate) fn scatter<I, O, F>(chunks: Vec<I>, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    mb_pool::global().map_vec(chunks, work)
}

/// The result of a partitioned run: per-partition reports plus the unioned
/// explanation set (superseded by the unified [`MdpReport`], whose
/// `partition_reports` field carries the per-partition detail).
#[deprecated(
    since = "0.5.0",
    note = "use MdpQuery::execute with Executor::NaivePartitioned; per-partition detail is in MdpReport::partition_reports"
)]
#[derive(Debug)]
pub struct PartitionedReport {
    /// One report per partition, in partition order.
    pub partition_reports: Vec<MdpReport>,
    /// Union of all partitions' explanations (deduplicated by attribute
    /// combination, keeping the highest-risk-ratio instance).
    pub merged_explanations: Vec<RenderedExplanation>,
    /// Total points processed across partitions.
    pub num_points: usize,
}

/// Execute `config` over `points` split into `num_partitions` shared-nothing
/// partitions, each processed as an independent pool task (superseded by
/// [`MdpQuery::execute`](crate::query::MdpQuery::execute) with
/// [`Executor::NaivePartitioned`](crate::query::Executor)). Pass `0` for
/// `num_partitions` to use one partition per available core
/// ([`default_num_partitions`]).
#[deprecated(
    since = "0.5.0",
    note = "use MdpQuery::execute with Executor::NaivePartitioned { partitions }"
)]
#[allow(deprecated)]
pub fn run_partitioned(
    points: &[Point],
    num_partitions: usize,
    config: &AnalysisConfig,
) -> Result<PartitionedReport> {
    let report = MdpQuery::new(config.clone()).execute(
        &Executor::NaivePartitioned {
            partitions: num_partitions,
        },
        points,
    )?;
    Ok(PartitionedReport {
        num_points: report.num_points,
        partition_reports: report
            .partition_reports
            .expect("naive partitioned reports always carry partition detail"),
        merged_explanations: report.explanations,
    })
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::oneshot::MdpOneShot;
    use mb_explain::ExplanationConfig;

    fn workload(n: usize) -> Vec<Point> {
        let mut points: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 9) as f64 * 0.2],
                    vec![format!("device_{}", i % 60)],
                )
            })
            .collect();
        for i in 0..(n / 100) {
            points[i * 100] = Point::new(vec![400.0], vec!["device_bad".to_string()]);
        }
        points
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn single_partition_matches_one_shot() {
        let points = workload(10_000);
        let partitioned = run_partitioned(&points, 1, &config()).unwrap();
        let direct = MdpOneShot::new(config()).run(&points).unwrap();
        assert_eq!(partitioned.partition_reports.len(), 1);
        assert_eq!(
            partitioned.partition_reports[0].num_outliers,
            direct.num_outliers
        );
        assert_eq!(
            partitioned.merged_explanations.len(),
            direct.explanations.len()
        );
    }

    #[test]
    fn multiple_partitions_still_find_the_planted_device() {
        let points = workload(20_000);
        for num_partitions in [2, 4, 8] {
            let result = run_partitioned(&points, num_partitions, &config()).unwrap();
            assert_eq!(result.partition_reports.len(), num_partitions);
            assert!(
                result
                    .merged_explanations
                    .iter()
                    .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))),
                "device_bad missing with {num_partitions} partitions"
            );
            assert_eq!(result.num_points, 20_000);
        }
    }

    #[test]
    fn merged_explanations_are_deduplicated() {
        let points = workload(20_000);
        let result = run_partitioned(&points, 4, &config()).unwrap();
        let mut combos: Vec<&Vec<String>> = result
            .merged_explanations
            .iter()
            .map(|e| &e.attributes)
            .collect();
        let before = combos.len();
        combos.sort();
        combos.dedup();
        assert_eq!(before, combos.len());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(run_partitioned(&[], 4, &config()).is_err());
    }

    #[test]
    fn zero_partitions_derives_count_from_available_parallelism() {
        let points = workload(10_000);
        let result = run_partitioned(&points, 0, &config()).unwrap();
        assert_eq!(result.partition_reports.len(), default_num_partitions());
    }
}
