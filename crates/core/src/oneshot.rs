//! One-shot MDP execution: classify a stored batch with robust estimators and
//! explain the resulting outliers (Sections 4–5, "one-shot queries" of
//! Section 3.2).

use crate::types::{MdpReport, Point, RenderedExplanation};
use crate::{PipelineError, Result};
use mb_classify::batch::{BatchClassifier, BatchClassifierConfig};
use mb_classify::Label;
use mb_explain::batch::BatchExplainer;
use mb_explain::encoder::AttributeEncoder;
use mb_explain::risk_ratio::rank_explanations;
use mb_explain::ExplanationConfig;
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::zscore::ZScoreEstimator;
use mb_stats::Estimator;

/// Which robust estimator the classification stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// MAD for univariate queries, MCD for multivariate (the MDP default).
    Auto,
    /// Force MAD (univariate only).
    Mad,
    /// Force FastMCD.
    Mcd,
    /// Force the non-robust Z-score baseline (univariate only; used by the
    /// Figure 3 comparison).
    ZScore,
}

impl EstimatorKind {
    /// Resolve [`Auto`] to a concrete estimator for `dim`-dimensional
    /// metrics. This is THE selection rule — every executor (one-shot and
    /// coordinated) dispatches through it so the modes cannot diverge.
    ///
    /// [`Auto`]: EstimatorKind::Auto
    pub fn resolve(self, dim: usize) -> EstimatorKind {
        match self {
            EstimatorKind::Auto => {
                if dim == 1 {
                    EstimatorKind::Mad
                } else {
                    EstimatorKind::Mcd
                }
            }
            concrete => concrete,
        }
    }
}

/// Configuration of a one-shot MDP query.
#[derive(Debug, Clone)]
pub struct MdpConfig {
    /// Estimator selection.
    pub estimator: EstimatorKind,
    /// Score percentile above which points are outliers (paper default 0.99).
    pub target_percentile: f64,
    /// Explanation thresholds (support / risk ratio).
    pub explanation: ExplanationConfig,
    /// Optional cap on training sample size (Figure 9).
    pub training_sample_size: Option<usize>,
    /// Optional human-readable attribute column names for rendered output.
    pub attribute_names: Vec<String>,
    /// Whether to retain every point's score in the report (Figure 7 needs
    /// this; large runs usually do not).
    pub retain_scores: bool,
    /// Whether to skip explanation entirely (Table 2 reports throughput both
    /// with and without explanation).
    pub skip_explanation: bool,
}

impl Default for MdpConfig {
    fn default() -> Self {
        MdpConfig {
            estimator: EstimatorKind::Auto,
            target_percentile: 0.99,
            explanation: ExplanationConfig::default(),
            training_sample_size: None,
            attribute_names: Vec::new(),
            retain_scores: false,
            skip_explanation: false,
        }
    }
}

/// The one-shot MDP pipeline.
#[derive(Debug, Clone)]
pub struct MdpOneShot {
    config: MdpConfig,
}

impl MdpOneShot {
    /// Create a pipeline with the given configuration.
    pub fn new(config: MdpConfig) -> Self {
        MdpOneShot { config }
    }

    /// Create a pipeline with default (paper) parameters.
    pub fn with_defaults() -> Self {
        Self::new(MdpConfig::default())
    }

    /// Validate that all points share one metric dimensionality; returns it.
    pub(crate) fn check_dimensions(points: &[Point]) -> Result<usize> {
        let first = points.first().ok_or(PipelineError::EmptyInput)?;
        let dim = first.dimension();
        if dim == 0 {
            return Err(PipelineError::InvalidConfiguration(
                "points must have at least one metric".to_string(),
            ));
        }
        for p in points {
            if p.dimension() != dim {
                return Err(PipelineError::InconsistentDimensions {
                    expected: dim,
                    actual: p.dimension(),
                });
            }
        }
        Ok(dim)
    }

    fn classify_with<E: Estimator>(
        &self,
        estimator: E,
        metrics: &[Vec<f64>],
    ) -> Result<(Vec<mb_classify::Classification>, Option<f64>)> {
        let mut classifier = BatchClassifier::new(
            estimator,
            BatchClassifierConfig {
                target_percentile: self.config.target_percentile,
                training_sample_size: self.config.training_sample_size,
            },
        );
        let classifications = classifier.classify_batch(metrics)?;
        let cutoff = classifier.threshold().map(|t| t.cutoff());
        Ok((classifications, cutoff))
    }

    /// Execute the query over a batch of points.
    pub fn run(&self, points: &[Point]) -> Result<MdpReport> {
        let dim = Self::check_dimensions(points)?;
        let metrics: Vec<Vec<f64>> = points.iter().map(|p| p.metrics.clone()).collect();

        let (classifications, cutoff) = match self.config.estimator.resolve(dim) {
            EstimatorKind::Mad => self.classify_with(MadEstimator::new(), &metrics)?,
            EstimatorKind::ZScore => self.classify_with(ZScoreEstimator::new(), &metrics)?,
            EstimatorKind::Mcd => self.classify_with(McdEstimator::with_defaults(), &metrics)?,
            EstimatorKind::Auto => unreachable!("resolve() eliminates Auto"),
        };

        let num_outliers = classifications
            .iter()
            .filter(|c| c.label == Label::Outlier)
            .count();

        let explanations = if self.config.skip_explanation {
            Vec::new()
        } else {
            // Encode attributes and split transactions by class.
            let mut encoder = if self.config.attribute_names.is_empty() {
                AttributeEncoder::new()
            } else {
                AttributeEncoder::with_column_names(self.config.attribute_names.clone())
            };
            let mut outlier_txns = Vec::with_capacity(num_outliers);
            let mut inlier_txns = Vec::with_capacity(points.len() - num_outliers);
            for (point, classification) in points.iter().zip(classifications.iter()) {
                let items = encoder.encode_point(&point.attributes);
                match classification.label {
                    Label::Outlier => outlier_txns.push(items),
                    Label::Inlier => inlier_txns.push(items),
                }
            }
            let explainer = BatchExplainer::new(self.config.explanation);
            let mut explanations = explainer.explain(&outlier_txns, &inlier_txns);
            rank_explanations(&mut explanations);
            explanations
                .into_iter()
                .map(|e| RenderedExplanation {
                    attributes: encoder.describe(&e.items),
                    items: e.items,
                    stats: e.stats,
                })
                .collect()
        };

        Ok(MdpReport {
            explanations,
            num_points: points.len(),
            num_outliers,
            score_cutoff: cutoff,
            scores: if self.config.retain_scores {
                classifications.iter().map(|c| c.score).collect()
            } else {
                Vec::new()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};

    fn workload_points(num_points: usize, num_devices: usize) -> (Vec<Point>, Vec<String>) {
        let workload = device_workload(&DeviceWorkloadConfig {
            num_points,
            num_devices,
            outlying_device_fraction: 0.01,
            ..DeviceWorkloadConfig::default()
        });
        let points = workload
            .records
            .iter()
            .map(|r| Point::new(r.record.metrics.clone(), r.record.attributes.clone()))
            .collect();
        (points, workload.outlying_devices)
    }

    #[test]
    fn empty_input_is_an_error() {
        let mdp = MdpOneShot::with_defaults();
        assert!(matches!(mdp.run(&[]), Err(PipelineError::EmptyInput)));
    }

    #[test]
    fn inconsistent_dimensions_rejected() {
        let mdp = MdpOneShot::with_defaults();
        let points = vec![
            Point::new(vec![1.0], vec!["a".to_string()]),
            Point::new(vec![1.0, 2.0], vec!["a".to_string()]),
        ];
        assert!(matches!(
            mdp.run(&points),
            Err(PipelineError::InconsistentDimensions { .. })
        ));
    }

    #[test]
    fn recovers_misbehaving_devices_from_device_workload() {
        // The core end-to-end claim of Section 6.1: on the synthetic device
        // workload without noise, MDP's explanations identify exactly the
        // outlying devices.
        let (points, truth) = workload_points(40_000, 200);
        let mdp = MdpOneShot::new(MdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report.num_outliers > 0);
        // Every ground-truth device appears among the explanations.
        let reported: Vec<String> = report
            .explanations
            .iter()
            .flat_map(|e| e.attributes.clone())
            .collect();
        for device in &truth {
            assert!(
                reported.iter().any(|r| r.ends_with(device.as_str())),
                "device {device} missing from explanations: {reported:?}"
            );
        }
    }

    #[test]
    fn outlier_fraction_tracks_percentile() {
        let (points, _) = workload_points(20_000, 100);
        let mdp = MdpOneShot::with_defaults();
        let report = mdp.run(&points).unwrap();
        // ~1% of devices are outlying so slightly more than 1% of points are
        // flagged; the fraction must be in a sane band around the percentile.
        assert!(report.outlier_fraction() > 0.005);
        assert!(report.outlier_fraction() < 0.05);
        assert!(report.score_cutoff.unwrap() > 0.0);
    }

    #[test]
    fn skip_explanation_omits_explanations() {
        let (points, _) = workload_points(5_000, 50);
        let mdp = MdpOneShot::new(MdpConfig {
            skip_explanation: true,
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report.explanations.is_empty());
        assert!(report.num_outliers > 0);
    }

    #[test]
    fn retain_scores_keeps_per_point_scores() {
        let (points, _) = workload_points(2_000, 20);
        let mdp = MdpOneShot::new(MdpConfig {
            retain_scores: true,
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert_eq!(report.scores.len(), 2_000);
        assert!(report.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn multivariate_auto_uses_mcd() {
        // Two metrics: MDP should pick MCD automatically and still flag the
        // planted multivariate anomalies.
        let mut points: Vec<Point> = (0..5_000)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 7) as f64 * 0.1, 20.0 + (i % 5) as f64 * 0.1],
                    vec![format!("device_{}", i % 50)],
                )
            })
            .collect();
        for i in 0..50 {
            points[i * 100] = Point::new(vec![200.0, 300.0], vec!["device_bad".to_string()]);
        }
        let mdp = MdpOneShot::new(MdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }

    #[test]
    fn zscore_estimator_can_be_forced() {
        let (points, _) = workload_points(5_000, 50);
        let mdp = MdpOneShot::new(MdpConfig {
            estimator: EstimatorKind::ZScore,
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report.num_outliers > 0);
    }
}
