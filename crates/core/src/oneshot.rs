//! One-shot MDP execution: classify a stored batch with robust estimators and
//! explain the resulting outliers (Sections 4–5, "one-shot queries" of
//! Section 3.2).
//!
//! Superseded by the unified query surface: build an [`MdpQuery`] and
//! execute it with `Executor::OneShot`. The deprecated shims here
//! delegate to exactly that engine, so reports are identical either way.

pub use crate::query::EstimatorKind;

use crate::query::{AnalysisConfig, Executor, MdpQuery};
use crate::types::{MdpReport, Point};
use crate::Result;

/// Configuration of a one-shot MDP query (superseded by [`AnalysisConfig`],
/// which carries exactly the same fields).
#[deprecated(
    since = "0.5.0",
    note = "use AnalysisConfig with MdpQuery + Executor::OneShot"
)]
pub type MdpConfig = AnalysisConfig;

/// The one-shot MDP pipeline (superseded by [`MdpQuery`] +
/// `Executor::OneShot`).
#[deprecated(
    since = "0.5.0",
    note = "use MdpQuery::execute with Executor::OneShot"
)]
#[derive(Debug, Clone)]
pub struct MdpOneShot {
    config: AnalysisConfig,
}

#[allow(deprecated)]
impl MdpOneShot {
    /// Create a pipeline with the given configuration.
    pub fn new(config: MdpConfig) -> Self {
        MdpOneShot { config }
    }

    /// Create a pipeline with default (paper) parameters.
    pub fn with_defaults() -> Self {
        Self::new(AnalysisConfig::default())
    }

    /// Execute the query over a batch of points.
    pub fn run(&self, points: &[Point]) -> Result<MdpReport> {
        MdpQuery::new(self.config.clone()).execute(&Executor::OneShot, points)
    }
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineError;
    use mb_explain::ExplanationConfig;
    use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};

    fn workload_points(num_points: usize, num_devices: usize) -> (Vec<Point>, Vec<String>) {
        let workload = device_workload(&DeviceWorkloadConfig {
            num_points,
            num_devices,
            outlying_device_fraction: 0.01,
            ..DeviceWorkloadConfig::default()
        });
        let points = workload
            .records
            .iter()
            .map(|r| Point::new(r.record.metrics.clone(), r.record.attributes.clone()))
            .collect();
        (points, workload.outlying_devices)
    }

    #[test]
    fn empty_input_is_an_error() {
        let mdp = MdpOneShot::with_defaults();
        assert!(matches!(mdp.run(&[]), Err(PipelineError::EmptyInput)));
    }

    #[test]
    fn inconsistent_dimensions_rejected() {
        let mdp = MdpOneShot::with_defaults();
        let points = vec![
            Point::new(vec![1.0], vec!["a".to_string()]),
            Point::new(vec![1.0, 2.0], vec!["a".to_string()]),
        ];
        assert!(matches!(
            mdp.run(&points),
            Err(PipelineError::InconsistentDimensions { .. })
        ));
    }

    #[test]
    fn recovers_misbehaving_devices_from_device_workload() {
        // The core end-to-end claim of Section 6.1: on the synthetic device
        // workload without noise, MDP's explanations identify exactly the
        // outlying devices.
        let (points, truth) = workload_points(40_000, 200);
        let mdp = MdpOneShot::new(MdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report.num_outliers > 0);
        // Every ground-truth device appears among the explanations.
        let reported: Vec<String> = report
            .explanations
            .iter()
            .flat_map(|e| e.attributes.clone())
            .collect();
        for device in &truth {
            assert!(
                reported.iter().any(|r| r.ends_with(device.as_str())),
                "device {device} missing from explanations: {reported:?}"
            );
        }
    }

    #[test]
    fn outlier_fraction_tracks_percentile() {
        let (points, _) = workload_points(20_000, 100);
        let mdp = MdpOneShot::with_defaults();
        let report = mdp.run(&points).unwrap();
        // ~1% of devices are outlying so slightly more than 1% of points are
        // flagged; the fraction must be in a sane band around the percentile.
        assert!(report.outlier_fraction() > 0.005);
        assert!(report.outlier_fraction() < 0.05);
        assert!(report.score_cutoff.unwrap() > 0.0);
    }

    #[test]
    fn skip_explanation_omits_explanations() {
        let (points, _) = workload_points(5_000, 50);
        let mdp = MdpOneShot::new(MdpConfig {
            skip_explanation: true,
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report.explanations.is_empty());
        assert!(report.num_outliers > 0);
    }

    #[test]
    fn retain_scores_keeps_per_point_scores() {
        let (points, _) = workload_points(2_000, 20);
        let mdp = MdpOneShot::new(MdpConfig {
            retain_scores: true,
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert_eq!(report.scores.len(), 2_000);
        assert!(report.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn multivariate_auto_uses_mcd() {
        // Two metrics: MDP should pick MCD automatically and still flag the
        // planted multivariate anomalies.
        let mut points: Vec<Point> = (0..5_000)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 7) as f64 * 0.1, 20.0 + (i % 5) as f64 * 0.1],
                    vec![format!("device_{}", i % 50)],
                )
            })
            .collect();
        for i in 0..50 {
            points[i * 100] = Point::new(vec![200.0, 300.0], vec!["device_bad".to_string()]);
        }
        let mdp = MdpOneShot::new(MdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }

    #[test]
    fn zscore_estimator_can_be_forced() {
        let (points, _) = workload_points(5_000, 50);
        let mdp = MdpOneShot::new(MdpConfig {
            estimator: EstimatorKind::ZScore,
            ..MdpConfig::default()
        });
        let report = mdp.run(&points).unwrap();
        assert!(report.num_outliers > 0);
    }

    #[test]
    fn shim_report_equals_query_report() {
        // The deprecated entry point must stay byte-equal to the query API it
        // delegates to.
        let (points, _) = workload_points(10_000, 80);
        let config = MdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            retain_scores: true,
            ..MdpConfig::default()
        };
        let shim = MdpOneShot::new(config.clone()).run(&points).unwrap();
        let query = MdpQuery::new(config)
            .execute(&Executor::OneShot, &points)
            .unwrap();
        assert_eq!(shim.num_outliers, query.num_outliers);
        assert_eq!(shim.score_cutoff, query.score_cutoff);
        assert_eq!(shim.scores, query.scores);
        assert_eq!(shim.explanations, query.explanations);
    }
}
