//! The unified MDP query surface: one [`MdpQuery`] specification, executed
//! by any [`Executor`] backend.
//!
//! The paper's core architectural claim (Section 3, Table 1) is that
//! MacroBase is *one* typed dataflow — `Ingestor → Transformer* →
//! Classifier → Explainer` — that the same query can execute one-shot,
//! streaming, or scaled out. This module is that claim made concrete:
//!
//! * [`AnalysisConfig`] holds the backend-independent *what* of a query:
//!   estimator selection, the target score percentile, explanation
//!   thresholds, attribute names, and report shaping flags.
//! * [`MdpQuery`] composes an [`AnalysisConfig`] with the optional
//!   transformer chain and classifier stages (unsupervised, rule-based, or
//!   both OR-ed — the hybrid supervision pattern).
//! * [`Executor`] names the *how*: [`Executor::OneShot`],
//!   [`Executor::Coordinated`], [`Executor::NaivePartitioned`], or
//!   [`Executor::Streaming`] (whose per-backend knobs live in
//!   [`StreamingOptions`]). Every backend consumes the same query — from a
//!   stored slice ([`MdpQuery::execute`]) or any [`Ingestor`]
//!   ([`MdpQuery::execute_ingest`]) — and returns one unified
//!   [`MdpReport`].
//!
//! Backend knobs live *in the executor*, not the query, so "streaming
//! knobs on a batch backend" is unrepresentable; the remaining
//! query/backend mismatches (score retention and training-sample caps have
//! no meaning on an unbounded stream, batch transformer chains would make
//! stream results depend on ingestion batching) surface as typed
//! [`PipelineError`] values rather than silent drift.
//!
//! ```
//! use macrobase_core::query::{AnalysisConfig, Executor, MdpQuery};
//! use macrobase_core::types::Point;
//!
//! let mut points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 20)))
//!     .collect();
//! for i in 0..20 {
//!     points[i * 100] = Point::simple(90.0, "device_13");
//! }
//!
//! let mut query = MdpQuery::new(AnalysisConfig::default());
//! let report = query.execute(&Executor::OneShot, &points).unwrap();
//! assert!(report.num_outliers > 0);
//!
//! // The same query scales out without changing its answer.
//! let mut query = MdpQuery::new(AnalysisConfig::default());
//! let scaled = query
//!     .execute(&Executor::Coordinated { partitions: 4 }, &points)
//!     .unwrap();
//! assert_eq!(scaled.num_outliers, report.num_outliers);
//! ```

use crate::executor::{
    encoder_for, execute_coordinated, execute_naive, execute_one_shot, execute_one_shot_encoded,
    execute_one_shot_with_model, train_model, FittedModel, QueryParts,
};
use crate::operator::{Ingestor, Transformer};
use crate::streaming::StreamingEngine;
use crate::types::{MdpReport, Point};
use crate::{PipelineError, Result};
use mb_classify::rule::RuleClassifier;
use mb_explain::ExplanationConfig;
use std::borrow::Cow;

/// Which robust estimator the classification stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// MAD for univariate queries, MCD for multivariate (the MDP default).
    Auto,
    /// Force MAD (univariate only).
    Mad,
    /// Force FastMCD.
    Mcd,
    /// Force the non-robust Z-score baseline (univariate only; used by the
    /// Figure 3 comparison).
    ZScore,
}

impl EstimatorKind {
    /// Resolve [`Auto`] to a concrete estimator for `dim`-dimensional
    /// metrics. This is THE selection rule — every executor (one-shot,
    /// partitioned, and streaming) dispatches through it so the modes
    /// cannot diverge.
    ///
    /// [`Auto`]: EstimatorKind::Auto
    pub fn resolve(self, dim: usize) -> EstimatorKind {
        match self {
            EstimatorKind::Auto => {
                if dim == 1 {
                    EstimatorKind::Mad
                } else {
                    EstimatorKind::Mcd
                }
            }
            concrete => concrete,
        }
    }
}

/// The backend-independent configuration of an MDP query: what to compute,
/// regardless of which [`Executor`] computes it.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Estimator selection.
    pub estimator: EstimatorKind,
    /// Score percentile above which points are outliers (paper default 0.99).
    pub target_percentile: f64,
    /// Explanation thresholds (support / risk ratio).
    pub explanation: ExplanationConfig,
    /// Optional cap on training sample size (Figure 9). Batch backends only.
    pub training_sample_size: Option<usize>,
    /// Optional human-readable attribute column names for rendered output.
    pub attribute_names: Vec<String>,
    /// Whether to retain every point's score in the report (Figure 7 needs
    /// this; large runs usually do not). Batch backends only.
    pub retain_scores: bool,
    /// Whether to retain the input-order indices of outlier-labeled points in
    /// [`MdpReport::outlier_rows`]. Labeled-workload accuracy harnesses (the
    /// `quality_matrix` scenario corpus) score point-level precision/recall
    /// against these. Supported on every backend — unlike full score
    /// retention, the retained state is bounded by the outlier count, so the
    /// streaming backend accepts it too.
    pub retain_outlier_rows: bool,
    /// Whether to skip explanation entirely (Table 2 reports throughput both
    /// with and without explanation).
    pub skip_explanation: bool,
    /// Telemetry switch. Off by default: reports carry `trace: None` and
    /// stay byte-identical to pre-telemetry output. When enabled, every
    /// backend attaches a [`mb_obs::QueryTrace`] (per-stage wall times,
    /// row/batch movement, merged pool and engine counters) to
    /// [`MdpReport::trace`].
    pub obs: mb_obs::ObsConfig,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            estimator: EstimatorKind::Auto,
            target_percentile: 0.99,
            explanation: ExplanationConfig::default(),
            training_sample_size: None,
            attribute_names: Vec::new(),
            retain_scores: false,
            retain_outlier_rows: false,
            skip_explanation: false,
            obs: mb_obs::ObsConfig::default(),
        }
    }
}

/// Per-backend knobs of the streaming (EWS) executor: reservoir sizing and
/// decay cadence (Sections 4.2 and 5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingOptions {
    /// Reservoir / sketch sizes (paper default 10K).
    pub reservoir_size: usize,
    /// Decay rate applied at each period boundary (paper default 0.01).
    pub decay_rate: f64,
    /// Number of points between decay period boundaries (paper default 100K).
    pub decay_period: u64,
    /// Number of points between model retrainings.
    pub retrain_period: u64,
    /// RNG seed for the reservoirs.
    pub seed: u64,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        StreamingOptions {
            reservoir_size: 10_000,
            decay_rate: 0.01,
            decay_period: 100_000,
            retrain_period: 10_000,
            seed: 0xE75,
        }
    }
}

/// An execution backend for an [`MdpQuery`]. All four modes consume the same
/// query and produce the same unified [`MdpReport`] shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Executor {
    /// Run on the calling thread over the whole stored batch: the semantics
    /// reference every other mode is measured against.
    OneShot,
    /// Partitioned scale-out with coordination through mergeable state: one
    /// model fitted on the global batch and broadcast, one global threshold
    /// over the merged scores, per-partition explanation state merged on
    /// items. Reproduces the one-shot report exactly at any partition count.
    Coordinated {
        /// Number of partitions; `0` means one per pool worker
        /// ([`crate::parallel::default_num_partitions`]).
        partitions: usize,
    },
    /// The paper's preliminary shared-nothing scale-out (Appendix D /
    /// Figure 11): independent per-partition queries whose *rendered*
    /// explanations are unioned. Fast, but accuracy degrades with partition
    /// count. The unified report carries the union; per-partition reports are
    /// preserved in [`MdpReport::partition_reports`].
    NaivePartitioned {
        /// Number of partitions; `0` means one per pool worker.
        partitions: usize,
    },
    /// Exponentially weighted streaming (EWS) execution: ADR-trained
    /// classifier, AMC + M-CPS explainer, per-point processing with decay
    /// period boundaries.
    Streaming {
        /// Reservoir sizing and decay cadence.
        options: StreamingOptions,
    },
}

impl Executor {
    /// Streaming executor with default (paper) knobs.
    pub fn streaming() -> Executor {
        Executor::Streaming {
            options: StreamingOptions::default(),
        }
    }

    /// Short backend name used in errors and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Executor::OneShot => "one-shot",
            Executor::Coordinated { .. } => "coordinated",
            Executor::NaivePartitioned { .. } => "naive-partitioned",
            Executor::Streaming { .. } => "streaming",
        }
    }
}

/// A complete MDP query specification: analysis configuration, optional
/// transformer chain, and the classifier stages. Build one with
/// [`MdpQuery::builder`], then hand it to any [`Executor`].
pub struct MdpQuery {
    pub(crate) analysis: AnalysisConfig,
    pub(crate) transformers: Vec<Box<dyn Transformer>>,
    pub(crate) rule: Option<RuleClassifier>,
    pub(crate) unsupervised: bool,
}

impl MdpQuery {
    /// A query with the given analysis configuration, the unsupervised
    /// classifier, and no transformers (the common case).
    pub fn new(analysis: AnalysisConfig) -> Self {
        MdpQuery {
            analysis,
            transformers: Vec::new(),
            rule: None,
            unsupervised: true,
        }
    }

    /// A query with default (paper) parameters.
    pub fn with_defaults() -> Self {
        Self::new(AnalysisConfig::default())
    }

    /// Start building a query.
    pub fn builder() -> MdpQueryBuilder {
        MdpQueryBuilder::new()
    }

    /// The query's analysis configuration.
    pub fn analysis(&self) -> &AnalysisConfig {
        &self.analysis
    }

    pub(crate) fn parts(&self) -> QueryParts<'_> {
        QueryParts {
            analysis: &self.analysis,
            rule: self.rule.as_ref(),
            unsupervised: self.unsupervised,
        }
    }

    /// Reject query/backend combinations that cannot be executed faithfully.
    fn check_backend(&self, executor: &Executor) -> Result<()> {
        if let Executor::Streaming { .. } = executor {
            if self.analysis.retain_scores {
                return Err(PipelineError::UnsupportedByBackend {
                    feature: "retain_scores",
                    backend: executor.name(),
                });
            }
            if self.analysis.training_sample_size.is_some() {
                return Err(PipelineError::UnsupportedByBackend {
                    feature: "training_sample_size",
                    backend: executor.name(),
                });
            }
            // Transformers are batch operators: on an unbounded stream their
            // output would depend on how the source happens to batch the
            // input — silent drift from an ingestion knob. Rejecting them
            // keeps one semantics per query; apply stream transforms
            // upstream of ingestion or use a batch backend.
            if !self.transformers.is_empty() {
                return Err(PipelineError::UnsupportedByBackend {
                    feature: "transformer chain",
                    backend: executor.name(),
                });
            }
        }
        Ok(())
    }

    /// Run the transformer chain over a borrowed batch, cloning only when
    /// the query actually has transformers.
    fn transformed<'a>(&mut self, points: &'a [Point]) -> Cow<'a, [Point]> {
        if self.transformers.is_empty() {
            Cow::Borrowed(points)
        } else {
            Cow::Owned(self.transform_owned(points.to_vec()))
        }
    }

    fn transform_owned(&mut self, mut points: Vec<Point>) -> Vec<Point> {
        for t in self.transformers.iter_mut() {
            points = t.transform(points);
        }
        points
    }

    /// Dispatch an already-transformed batch to a batch backend.
    fn dispatch_batch(&self, executor: &Executor, input: &[Point]) -> Result<MdpReport> {
        match executor {
            Executor::OneShot => {
                execute_one_shot(self.parts(), input).map(|(_, report)| report)
            }
            Executor::Coordinated { partitions } => {
                execute_coordinated(self.parts(), input, *partitions)
            }
            Executor::NaivePartitioned { partitions } => {
                execute_naive(self.parts(), input, *partitions)
            }
            Executor::Streaming { .. } => {
                unreachable!("streaming is handled before batch dispatch")
            }
        }
    }

    /// Execute the query over a stored batch of points.
    ///
    /// The transformer chain runs over the whole batch first (so windowed
    /// batch transformers see everything), then the chosen backend
    /// classifies and explains. The streaming backend rejects transformer
    /// chains with a typed error (their output would otherwise depend on
    /// batching). Takes `&mut self` because transformers are stateful.
    pub fn execute(&mut self, executor: &Executor, points: &[Point]) -> Result<MdpReport> {
        self.check_backend(executor)?;
        match executor {
            Executor::Streaming { options } => {
                let mut engine = StreamingEngine::new(
                    &self.analysis,
                    options,
                    self.rule.clone(),
                    self.unsupervised,
                );
                if points.is_empty() {
                    return Err(PipelineError::EmptyInput);
                }
                for point in points {
                    engine.observe(point)?;
                }
                Ok(engine.report())
            }
            batch_executor => {
                let input = self.transformed(points);
                self.dispatch_batch(batch_executor, &input)
            }
        }
    }

    /// Execute the query over any [`Ingestor`] source.
    ///
    /// Batch backends materialize the source and behave exactly like
    /// [`execute`]; the streaming backend observes points incrementally,
    /// never holding the whole stream. Because a transformer chain's output
    /// would depend on how the source batches the stream, the streaming
    /// backend rejects it with a typed error — results never drift with an
    /// ingestion knob.
    ///
    /// [`execute`]: MdpQuery::execute
    pub fn execute_ingest(
        &mut self,
        executor: &Executor,
        source: &mut dyn Ingestor,
    ) -> Result<MdpReport> {
        self.check_backend(executor)?;
        match executor {
            Executor::Streaming { options } => {
                let mut engine = StreamingEngine::new(
                    &self.analysis,
                    options,
                    self.rule.clone(),
                    self.unsupervised,
                );
                let mut saw_points = false;
                while let Some(batch) = source.next_batch()? {
                    for point in &batch {
                        saw_points = true;
                        engine.observe(point)?;
                    }
                }
                if !saw_points {
                    return Err(PipelineError::EmptyInput);
                }
                Ok(engine.report())
            }
            // One-shot with no transformer chain is the columnar fast path:
            // ingest pre-encoded batches (metrics flat, attributes interned
            // straight into the query's dictionary) and never materialize a
            // `Point`. Encoding order equals ingestion order, so the report
            // — ids, scores, threshold, explanations — is exactly what the
            // materializing path below produces.
            Executor::OneShot if self.transformers.is_empty() => {
                let mut trace =
                    mb_obs::TraceBuilder::new(self.analysis.obs, "one-shot");
                let mut encoder = encoder_for(&self.analysis);
                let mut all = crate::operator::EncodedBatch::default();
                let timer = trace.start();
                let mut batches = 0usize;
                while let Some(batch) = source.next_encoded_batch(&mut encoder)? {
                    all.append(&batch)?;
                    batches += 1;
                }
                if all.is_empty() {
                    return Err(PipelineError::EmptyInput);
                }
                // The fast path encodes *during* ingestion, so one span
                // covers both stages of the paper pipeline.
                let rows = all.len();
                trace.finish_stage(timer, mb_obs::stage::INGEST, rows, rows, batches);
                execute_one_shot_encoded(
                    self.parts(),
                    &all.metrics,
                    all.dim,
                    &all.items,
                    &encoder,
                    trace,
                )
            }
            batch_executor => {
                let mut all = Vec::new();
                while let Some(batch) = source.next_batch()? {
                    all.extend(batch);
                }
                // The source's batches are already owned, so the transformer
                // chain runs in place — no second copy of the materialized
                // input.
                let all = self.transform_owned(all);
                self.dispatch_batch(batch_executor, &all)
            }
        }
    }

    /// Transformer chains are stateful batch operators; a model fitted on
    /// one chain state would silently disagree with a fresh execution, so
    /// the train/score split rejects them with a typed error.
    fn check_model_compatible(&self) -> Result<()> {
        if !self.transformers.is_empty() {
            return Err(PipelineError::UnsupportedByBackend {
                feature: "transformer chain",
                backend: "pre-trained model",
            });
        }
        Ok(())
    }

    /// Fit this query's classification model over a batch without
    /// classifying or explaining anything — the train half of the one-shot
    /// engine, split out so a model can be fitted once and shared (see
    /// [`FittedModel`]).
    ///
    /// Training is deterministic: the same query and batch always produce
    /// the same model, and [`execute_with_model`] over the training batch
    /// reproduces [`execute`] with [`Executor::OneShot`] byte for byte.
    /// Queries with transformer chains are rejected with a typed error.
    ///
    /// [`execute`]: MdpQuery::execute
    /// [`execute_with_model`]: MdpQuery::execute_with_model
    pub fn train(&self, points: &[Point]) -> Result<FittedModel> {
        self.check_model_compatible()?;
        train_model(self.parts(), points)
    }

    /// Execute one-shot classification and explanation against a
    /// pre-trained model instead of fitting one — the score half of the
    /// train/score split (see [`MdpQuery::train`]).
    ///
    /// The batch's dimensionality must match the model's, and the model's
    /// classification stages must match the query's (both unsupervised or
    /// both rule-only); mismatches are typed errors. Takes `&self`: with no
    /// transformer chain (rejected with a typed error) the query holds no
    /// mutable state, so one query can score many batches concurrently.
    pub fn execute_with_model(&self, model: &FittedModel, points: &[Point]) -> Result<MdpReport> {
        self.check_model_compatible()?;
        execute_one_shot_with_model(self.parts(), model, points)
    }

    /// Turn the query into an incremental streaming session
    /// ([`crate::streaming::StreamingSession`]): observe points one at a
    /// time and render reports mid-stream (adaptivity experiments, live
    /// monitoring). Consumes the query.
    ///
    /// Subject to the same typed compatibility checks as
    /// [`Executor::Streaming`]: score retention, training-sample caps, and
    /// transformer chains (batch operators cannot run point-at-a-time) are
    /// rejected.
    pub fn into_streaming(
        self,
        options: &StreamingOptions,
    ) -> Result<crate::streaming::StreamingSession> {
        self.check_backend(&Executor::Streaming {
            options: options.clone(),
        })?;
        Ok(crate::streaming::StreamingSession::new(StreamingEngine::new(
            &self.analysis,
            options,
            self.rule,
            self.unsupervised,
        )))
    }
}

impl std::fmt::Debug for MdpQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MdpQuery")
            .field("analysis", &self.analysis)
            .field("num_transformers", &self.transformers.len())
            .field("rule", &self.rule)
            .field("unsupervised", &self.unsupervised)
            .finish()
    }
}

/// Builder for [`MdpQuery`]. Validates the specification at
/// [`build`](MdpQueryBuilder::build) time so misconfigurations surface as
/// typed errors before any data is touched.
pub struct MdpQueryBuilder {
    analysis: AnalysisConfig,
    transformers: Vec<Box<dyn Transformer>>,
    rule: Option<RuleClassifier>,
    unsupervised: bool,
}

impl Default for MdpQueryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MdpQueryBuilder {
    /// Start with default analysis parameters and the unsupervised
    /// classifier enabled.
    pub fn new() -> Self {
        MdpQueryBuilder {
            analysis: AnalysisConfig::default(),
            transformers: Vec::new(),
            rule: None,
            unsupervised: true,
        }
    }

    /// Replace the whole analysis configuration.
    pub fn analysis(mut self, analysis: AnalysisConfig) -> Self {
        self.analysis = analysis;
        self
    }

    /// Select the estimator.
    pub fn estimator(mut self, estimator: EstimatorKind) -> Self {
        self.analysis.estimator = estimator;
        self
    }

    /// Set the target outlier score percentile (in `[0, 1]`).
    pub fn target_percentile(mut self, percentile: f64) -> Self {
        self.analysis.target_percentile = percentile;
        self
    }

    /// Set the explanation thresholds.
    pub fn explanation(mut self, explanation: ExplanationConfig) -> Self {
        self.analysis.explanation = explanation;
        self
    }

    /// Name the attribute columns for rendered output.
    pub fn attribute_names(mut self, names: Vec<String>) -> Self {
        self.analysis.attribute_names = names;
        self
    }

    /// Cap the training sample size (Figure 9).
    pub fn training_sample_size(mut self, size: usize) -> Self {
        self.analysis.training_sample_size = Some(size);
        self
    }

    /// Retain every point's score in the report (Figure 7).
    pub fn retain_scores(mut self) -> Self {
        self.analysis.retain_scores = true;
        self
    }

    /// Retain the input-order indices of outlier-labeled points in
    /// [`MdpReport::outlier_rows`] (accuracy scoring against labeled
    /// ground truth). Supported on every backend.
    pub fn retain_outlier_rows(mut self) -> Self {
        self.analysis.retain_outlier_rows = true;
        self
    }

    /// Skip the explanation stage entirely (Table 2 throughput runs).
    pub fn skip_explanation(mut self) -> Self {
        self.analysis.skip_explanation = true;
        self
    }

    /// Set the telemetry switch ([`AnalysisConfig::obs`]).
    pub fn obs(mut self, obs: mb_obs::ObsConfig) -> Self {
        self.analysis.obs = obs;
        self
    }

    /// Enable telemetry: the report will carry a populated
    /// [`MdpReport::trace`].
    pub fn traced(self) -> Self {
        self.obs(mb_obs::ObsConfig::enabled())
    }

    /// Append a feature transformation stage (applied in insertion order).
    pub fn transform(mut self, transformer: Box<dyn Transformer>) -> Self {
        self.transformers.push(transformer);
        self
    }

    /// Add a supervised rule classifier whose outlier labels are OR-ed with
    /// the unsupervised classifier's (the hybrid supervision pattern).
    pub fn supervised_rule(mut self, rule: RuleClassifier) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Disable the unsupervised classifier entirely (rule-only queries).
    pub fn without_unsupervised(mut self) -> Self {
        self.unsupervised = false;
        self
    }

    /// Validate and finish building.
    pub fn build(self) -> Result<MdpQuery> {
        if !self.unsupervised && self.rule.is_none() {
            return Err(PipelineError::MissingClassifier);
        }
        if !(0.0..=1.0).contains(&self.analysis.target_percentile) {
            return Err(PipelineError::InvalidConfiguration(format!(
                "target percentile must be in [0, 1], got {}",
                self.analysis.target_percentile
            )));
        }
        Ok(MdpQuery {
            analysis: self.analysis,
            transformers: self.transformers,
            rule: self.rule,
            unsupervised: self.unsupervised,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MapTransformer;
    use mb_classify::rule::{Comparison, RuleClassifier};

    fn planted_points(n: usize) -> Vec<Point> {
        let mut points: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 9) as f64 * 0.2],
                    vec![format!("device_{}", i % 40)],
                )
            })
            .collect();
        for i in 0..(n / 100) {
            points[i * 100] = Point::new(vec![400.0], vec!["device_bad".to_string()]);
        }
        points
    }

    #[test]
    fn builder_rejects_classifierless_query() {
        let result = MdpQuery::builder().without_unsupervised().build();
        assert!(matches!(result, Err(PipelineError::MissingClassifier)));
    }

    #[test]
    fn builder_rejects_invalid_percentile() {
        let result = MdpQuery::builder().target_percentile(1.5).build();
        assert!(matches!(
            result,
            Err(PipelineError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn streaming_backend_rejects_batch_only_knobs() {
        let points = planted_points(1_000);
        let mut query = MdpQuery::builder().retain_scores().build().unwrap();
        assert!(matches!(
            query.execute(&Executor::streaming(), &points),
            Err(PipelineError::UnsupportedByBackend {
                feature: "retain_scores",
                ..
            })
        ));
        let mut query = MdpQuery::builder()
            .training_sample_size(100)
            .build()
            .unwrap();
        assert!(matches!(
            query.execute(&Executor::streaming(), &points),
            Err(PipelineError::UnsupportedByBackend {
                feature: "training_sample_size",
                ..
            })
        ));
    }

    #[test]
    fn streaming_session_rejects_transformer_chains() {
        let query = MdpQuery::builder()
            .transform(Box::new(MapTransformer::new(|p: Point| p)))
            .build()
            .unwrap();
        assert!(matches!(
            query.into_streaming(&StreamingOptions::default()),
            Err(PipelineError::UnsupportedByBackend {
                feature: "transformer chain",
                ..
            })
        ));
    }

    #[test]
    fn all_four_executors_accept_the_same_query() {
        let points = planted_points(5_000);
        let executors = [
            Executor::OneShot,
            Executor::Coordinated { partitions: 4 },
            Executor::NaivePartitioned { partitions: 4 },
            Executor::streaming(),
        ];
        for executor in &executors {
            let mut query = MdpQuery::with_defaults();
            let report = query.execute(executor, &points).unwrap();
            assert_eq!(report.num_points, 5_000, "{} lost points", executor.name());
            assert!(
                report.num_outliers > 0,
                "{} found no outliers",
                executor.name()
            );
        }
    }

    #[test]
    fn empty_input_is_an_error_on_every_backend() {
        for executor in [
            Executor::OneShot,
            Executor::Coordinated { partitions: 2 },
            Executor::NaivePartitioned { partitions: 2 },
            Executor::streaming(),
        ] {
            let mut query = MdpQuery::with_defaults();
            assert!(
                matches!(query.execute(&executor, &[]), Err(PipelineError::EmptyInput)),
                "{} accepted empty input",
                executor.name()
            );
        }
    }

    #[test]
    fn rule_only_query_runs_on_batch_backends() {
        let mut points = planted_points(1_000);
        points[0] = Point::new(vec![1_000.0], vec!["device_x".to_string()]);
        for executor in [
            Executor::OneShot,
            Executor::Coordinated { partitions: 3 },
            Executor::NaivePartitioned { partitions: 3 },
        ] {
            let mut query = MdpQuery::builder()
                .without_unsupervised()
                .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 500.0))
                .build()
                .unwrap();
            let report = query.execute(&executor, &points).unwrap();
            // 10 planted 400.0 points fail the rule; only the 1000.0 one hits.
            assert_eq!(
                report.num_outliers,
                1,
                "{} mislabeled rule-only outliers",
                executor.name()
            );
            assert_eq!(report.score_cutoff, None);
        }
    }

    #[test]
    fn transformer_chain_runs_before_classification() {
        // Squaring turns modest values (30 -> 900) into extremes relative to
        // the squared background (~100): the transform must run for
        // device_hot to be explained.
        let mut points: Vec<Point> = (0..5_000)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 7) as f64 * 0.3],
                    vec![format!("device_{}", i % 40)],
                )
            })
            .collect();
        for i in 0..50 {
            points[i * 100] = Point::new(vec![30.0], vec!["device_hot".to_string()]);
        }
        let mut query = MdpQuery::builder()
            .transform(Box::new(MapTransformer::new(|mut p: Point| {
                p.metrics[0] = p.metrics[0] * p.metrics[0];
                p
            })))
            .explanation(ExplanationConfig::new(0.01, 3.0))
            .build()
            .unwrap();
        let report = query.execute(&Executor::OneShot, &points).unwrap();
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_hot"))));
    }

    #[test]
    fn mid_stream_ingestion_failure_fails_the_query() {
        // A source that errors after one batch must fail the query loudly,
        // not produce a report over the truncated prefix.
        struct FlakySource {
            yielded: bool,
        }
        impl crate::operator::Ingestor for FlakySource {
            fn next_batch(&mut self) -> crate::Result<Option<Vec<Point>>> {
                if self.yielded {
                    Err(PipelineError::Ingest("disk on fire".into()))
                } else {
                    self.yielded = true;
                    Ok(Some(planted_points(500)))
                }
            }
        }
        for executor in [Executor::OneShot, Executor::streaming()] {
            let mut query = MdpQuery::with_defaults();
            let mut source = FlakySource { yielded: false };
            assert!(
                matches!(
                    query.execute_ingest(&executor, &mut source),
                    Err(PipelineError::Ingest(_))
                ),
                "{} swallowed the ingestion failure",
                executor.name()
            );
        }
    }

    #[test]
    fn ingestor_and_slice_execution_agree() {
        use crate::operator::VecIngestor;
        let points = planted_points(4_000);
        let mut by_slice = MdpQuery::with_defaults();
        let slice_report = by_slice.execute(&Executor::OneShot, &points).unwrap();
        let mut by_ingest = MdpQuery::with_defaults();
        let mut source = VecIngestor::new(points, 512);
        let ingest_report = by_ingest
            .execute_ingest(&Executor::OneShot, &mut source)
            .unwrap();
        assert_eq!(slice_report.num_outliers, ingest_report.num_outliers);
        assert_eq!(slice_report.score_cutoff, ingest_report.score_cutoff);
        assert_eq!(
            slice_report.explanations.len(),
            ingest_report.explanations.len()
        );
    }
}
