//! Core data types: points, labeled points, and explanation reports.

use mb_classify::Label;
use mb_explain::risk_ratio::ExplanationStats;
use mb_fpgrowth::Item;

/// A MacroBase data point: real-valued metrics plus categorical attributes
/// (Table 1's `Point := (array<double> metrics, array<varchar> attributes)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Real-valued measurements used for classification.
    pub metrics: Vec<f64>,
    /// Categorical metadata used for explanation, one value per attribute
    /// column.
    pub attributes: Vec<String>,
}

impl Point {
    /// Create a point from metrics and attributes.
    pub fn new(metrics: Vec<f64>, attributes: Vec<String>) -> Self {
        Point {
            metrics,
            attributes,
        }
    }

    /// Create a point with a single metric and a single attribute (the shape
    /// of the paper's "simple" queries).
    pub fn simple(metric: f64, attribute: impl Into<String>) -> Self {
        Point {
            metrics: vec![metric],
            attributes: vec![attribute.into()],
        }
    }

    /// Metric dimensionality.
    pub fn dimension(&self) -> usize {
        self.metrics.len()
    }
}

/// A point together with its classification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    /// The classified point.
    pub point: Point,
    /// The outlier score assigned by the classifier.
    pub score: f64,
    /// The label implied by the score and threshold.
    pub label: Label,
}

/// One explanation rendered for presentation: decoded attribute strings plus
/// the raw items and statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedExplanation {
    /// Human-readable `column=value` descriptions of the combination.
    pub attributes: Vec<String>,
    /// The raw encoded items (useful for programmatic consumers).
    pub items: Vec<Item>,
    /// Support / risk-ratio statistics.
    pub stats: ExplanationStats,
}

/// The output of an MDP query: ranked explanations plus summary statistics
/// about the run (Section 3.2, stage 5).
#[derive(Debug, Clone, PartialEq)]
pub struct MdpReport {
    /// Explanations ranked by risk ratio then support.
    pub explanations: Vec<RenderedExplanation>,
    /// Number of points processed.
    pub num_points: usize,
    /// Number of points classified as outliers.
    pub num_outliers: usize,
    /// The score threshold that separated outliers from inliers (if one was
    /// computed).
    pub score_cutoff: Option<f64>,
    /// Outlier scores of every processed point, in input order, when score
    /// retention is enabled (used for the Figure 7 CDF; empty otherwise).
    /// The naïve partitioned backend concatenates partition scores in input
    /// order.
    pub scores: Vec<f64>,
    /// Input-order indices of the points labeled outliers, when
    /// [`AnalysisConfig::retain_outlier_rows`] is enabled (empty otherwise).
    /// This is what labeled-workload accuracy harnesses score point-level
    /// precision/recall against. Every backend populates it in global input
    /// order; the naïve partitioned backend's *partition* reports carry
    /// partition-local indices (matching their partition-local scores).
    ///
    /// [`AnalysisConfig::retain_outlier_rows`]: crate::query::AnalysisConfig::retain_outlier_rows
    pub outlier_rows: Vec<usize>,
    /// Per-partition detail, populated only by the naïve partitioned
    /// backend: one full report per shared-nothing partition, in partition
    /// order (each with its own local score cutoff). `None` for the
    /// single-model backends, whose report is already global.
    pub partition_reports: Option<Vec<MdpReport>>,
    /// Telemetry recorded while this report was produced: per-stage wall
    /// times, row/batch movement, and merged engine counters. `None` unless
    /// the query ran with [`ObsConfig`] enabled (the default is off, keeping
    /// reports byte-identical to untraced runs). The naïve partitioned
    /// backend also attaches a per-partition trace to each entry of
    /// [`MdpReport::partition_reports`].
    ///
    /// [`ObsConfig`]: mb_obs::ObsConfig
    pub trace: Option<mb_obs::QueryTrace>,
}

impl MdpReport {
    /// Fraction of points classified as outliers.
    pub fn outlier_fraction(&self) -> f64 {
        if self.num_points == 0 {
            0.0
        } else {
            self.num_outliers as f64 / self.num_points as f64
        }
    }

    /// The attribute strings of the top-`k` explanations (presentation
    /// order), borrowed from the report — no per-explanation clone.
    pub fn top_attributes(&self, k: usize) -> Vec<&[String]> {
        self.explanations
            .iter()
            .take(k)
            .map(|e| e.attributes.as_slice())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_constructors() {
        let p = Point::new(vec![1.0, 2.0], vec!["a".to_string()]);
        assert_eq!(p.dimension(), 2);
        let s = Point::simple(3.0, "device_1");
        assert_eq!(s.dimension(), 1);
        assert_eq!(s.attributes, vec!["device_1"]);
    }

    #[test]
    fn report_outlier_fraction() {
        let report = MdpReport {
            explanations: vec![],
            num_points: 200,
            num_outliers: 2,
            score_cutoff: Some(3.0),
            scores: vec![],
            outlier_rows: vec![],
            partition_reports: None,
            trace: None,
        };
        assert!((report.outlier_fraction() - 0.01).abs() < 1e-12);
        let empty = MdpReport {
            explanations: vec![],
            num_points: 0,
            num_outliers: 0,
            score_cutoff: None,
            scores: vec![],
            outlier_rows: vec![],
            partition_reports: None,
            trace: None,
        };
        assert_eq!(empty.outlier_fraction(), 0.0);
    }
}
