//! The typed operator interfaces of Table 1.
//!
//! MacroBase enforces pipeline structure through the type system: every
//! pipeline is `Ingestor → Transformer* → Classifier → Explainer`. In Rust
//! the stages are traits over batches of [`Point`]s; the compiler rejects a
//! pipeline that, say, feeds unlabeled points into an explainer, exactly as
//! the paper's Java prototype does with its generics. Closure adapters are
//! provided so quick domain-specific transforms don't require a new type.

use crate::types::{LabeledPoint, Point};
use mb_classify::Label;

/// An ingestor produces the initial stream of points from an external source
/// (`external data source(s) → stream<Point>`).
pub trait Ingestor {
    /// Produce the next batch of points; `None` when the source is exhausted.
    fn next_batch(&mut self) -> Option<Vec<Point>>;
}

/// A transformer rewrites points without changing the stream type
/// (`stream<Point> → stream<Point>`), e.g. normalization, STFT features,
/// optical-flow extraction.
pub trait Transformer {
    /// Transform a batch of points.
    fn transform(&mut self, points: Vec<Point>) -> Vec<Point>;
}

/// A classifier labels points (`stream<Point> → stream<(label, Point)>`).
pub trait Classifier {
    /// Classify a batch of points, returning them with scores and labels.
    fn classify(&mut self, points: Vec<Point>) -> crate::Result<Vec<LabeledPoint>>;
}

/// An explainer aggregates labeled points into explanations
/// (`stream<(label, Point)> → stream<Explanation>`).
pub trait Explainer {
    /// Consume a batch of labeled points.
    fn consume(&mut self, points: &[LabeledPoint]);
    /// Produce the current explanations on demand.
    fn explanations(&mut self) -> Vec<crate::types::RenderedExplanation>;
}

/// An ingestor over an in-memory vector of points (batch execution is
/// "streaming over stored data", Section 3.2).
#[derive(Debug, Clone)]
pub struct VecIngestor {
    points: Vec<Point>,
    batch_size: usize,
    cursor: usize,
}

impl VecIngestor {
    /// Create an ingestor that yields `points` in batches of `batch_size`.
    pub fn new(points: Vec<Point>, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        VecIngestor {
            points,
            batch_size,
            cursor: 0,
        }
    }
}

impl Ingestor for VecIngestor {
    fn next_batch(&mut self) -> Option<Vec<Point>> {
        if self.cursor >= self.points.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.points.len());
        let batch = self.points[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

/// Adapter turning a closure over a single point into a [`Transformer`].
pub struct MapTransformer<F: FnMut(Point) -> Point> {
    f: F,
}

impl<F: FnMut(Point) -> Point> MapTransformer<F> {
    /// Wrap a per-point closure.
    pub fn new(f: F) -> Self {
        MapTransformer { f }
    }
}

impl<F: FnMut(Point) -> Point> Transformer for MapTransformer<F> {
    fn transform(&mut self, points: Vec<Point>) -> Vec<Point> {
        points.into_iter().map(&mut self.f).collect()
    }
}

/// Adapter turning a batch-level closure into a [`Transformer`] (for
/// transforms that need to see the whole batch, e.g. windowed aggregation).
pub struct BatchTransformer<F: FnMut(Vec<Point>) -> Vec<Point>> {
    f: F,
}

impl<F: FnMut(Vec<Point>) -> Vec<Point>> BatchTransformer<F> {
    /// Wrap a per-batch closure.
    pub fn new(f: F) -> Self {
        BatchTransformer { f }
    }
}

impl<F: FnMut(Vec<Point>) -> Vec<Point>> Transformer for BatchTransformer<F> {
    fn transform(&mut self, points: Vec<Point>) -> Vec<Point> {
        (self.f)(points)
    }
}

/// A rule-based [`Classifier`] built from `mb_classify`'s supervised rules.
pub struct RuleBasedClassifier {
    rule: mb_classify::rule::RuleClassifier,
}

impl RuleBasedClassifier {
    /// Wrap a rule.
    pub fn new(rule: mb_classify::rule::RuleClassifier) -> Self {
        RuleBasedClassifier { rule }
    }
}

impl Classifier for RuleBasedClassifier {
    fn classify(&mut self, points: Vec<Point>) -> crate::Result<Vec<LabeledPoint>> {
        Ok(points
            .into_iter()
            .map(|point| {
                let label = self.rule.classify(&point.metrics);
                LabeledPoint {
                    score: if label == Label::Outlier { 1.0 } else { 0.0 },
                    label,
                    point,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_classify::rule::{Comparison, RuleClassifier};

    #[test]
    fn vec_ingestor_batches_everything_once() {
        let points: Vec<Point> = (0..10).map(|i| Point::simple(i as f64, "a")).collect();
        let mut ingestor = VecIngestor::new(points, 3);
        let mut total = 0;
        let mut batches = 0;
        while let Some(batch) = ingestor.next_batch() {
            total += batch.len();
            batches += 1;
        }
        assert_eq!(total, 10);
        assert_eq!(batches, 4);
        assert!(ingestor.next_batch().is_none());
    }

    #[test]
    fn map_transformer_applies_per_point() {
        let mut t = MapTransformer::new(|mut p: Point| {
            p.metrics[0] *= 2.0;
            p
        });
        let out = t.transform(vec![Point::simple(2.0, "x"), Point::simple(3.0, "y")]);
        assert_eq!(out[0].metrics[0], 4.0);
        assert_eq!(out[1].metrics[0], 6.0);
    }

    #[test]
    fn batch_transformer_can_change_cardinality() {
        // A windowing transform that averages pairs of points.
        let mut t = BatchTransformer::new(|points: Vec<Point>| {
            points
                .chunks(2)
                .map(|chunk| {
                    let mean =
                        chunk.iter().map(|p| p.metrics[0]).sum::<f64>() / chunk.len() as f64;
                    Point::simple(mean, chunk[0].attributes[0].clone())
                })
                .collect()
        });
        let input: Vec<Point> = (0..6).map(|i| Point::simple(i as f64, "w")).collect();
        let out = t.transform(input);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].metrics[0], 0.5);
    }

    #[test]
    fn rule_classifier_labels_by_predicate() {
        let mut c = RuleBasedClassifier::new(RuleClassifier::single(
            0,
            Comparison::GreaterThan,
            100.0,
        ));
        let out = c
            .classify(vec![Point::simple(150.0, "a"), Point::simple(50.0, "b")])
            .unwrap();
        assert_eq!(out[0].label, Label::Outlier);
        assert_eq!(out[1].label, Label::Inlier);
    }
}
