//! The typed operator interfaces of Table 1.
//!
//! MacroBase enforces pipeline structure through the type system: every
//! pipeline is `Ingestor → Transformer* → Classifier → Explainer`. In Rust
//! the stages are traits over batches of [`Point`]s; the compiler rejects a
//! pipeline that, say, feeds unlabeled points into an explainer, exactly as
//! the paper's Java prototype does with its generics. The
//! `stream<(label, Point)>` between classifier and explainer is represented
//! as parallel slices (`&[Point]` + `&[Classification]`) so no stage has to
//! clone or re-own the batch. Closure adapters are provided so quick
//! domain-specific transforms don't require a new type.
//!
//! These traits are *driven*: the batch backends of
//! [`crate::query::Executor`] execute queries by composing
//! [`crate::executor::MdpClassifier`] and [`crate::executor::MdpExplainer`]
//! through exactly these interfaces.

use crate::types::Point;
use mb_classify::{Classification, Label};
use mb_explain::{AttributeEncoder, ItemBatch};
use mb_ingest::csv::{CsvError, CsvQuery, CsvReader};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// One ingested batch in columnar form: a contiguous row-major metric
/// buffer plus the rows' attributes already dictionary-encoded into an
/// [`ItemBatch`]. Attribute strings never leave the ingestor — they are
/// interned into the encoder the caller supplied and flow on as dense item
/// ids.
#[derive(Debug, Clone, Default)]
pub struct EncodedBatch {
    /// Row-major metric values, [`dim`](EncodedBatch::dim) per row.
    pub metrics: Vec<f64>,
    /// Metric dimensionality shared by every row in this batch.
    pub dim: usize,
    /// The rows' encoded attribute items, one row per ingested point.
    pub items: ItemBatch,
}

impl EncodedBatch {
    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append all of `other`'s rows after this batch's rows. Errors if the
    /// metric dimensionalities disagree (a malformed source).
    pub fn append(&mut self, other: &EncodedBatch) -> crate::Result<()> {
        if self.is_empty() {
            self.dim = other.dim;
        } else if other.dim != self.dim {
            return Err(crate::PipelineError::InconsistentDimensions {
                expected: self.dim,
                actual: other.dim,
            });
        }
        self.metrics.extend_from_slice(&other.metrics);
        self.items.append(&other.items);
        Ok(())
    }
}

/// An ingestor produces the initial stream of points from an external source
/// (`external data source(s) → stream<Point>`).
pub trait Ingestor {
    /// Produce the next batch of points; `Ok(None)` when the source is
    /// exhausted. A mid-stream source failure is an error, so
    /// [`MdpQuery::execute_ingest`](crate::query::MdpQuery::execute_ingest)
    /// fails loudly instead of silently reporting over truncated data.
    fn next_batch(&mut self) -> crate::Result<Option<Vec<Point>>>;

    /// Produce the next batch in columnar, pre-encoded form: metrics in one
    /// flat buffer, attributes interned into `encoder` as an [`ItemBatch`].
    ///
    /// The default adapts [`next_batch`](Ingestor::next_batch), so every
    /// ingestor gets the columnar surface; sources that can encode straight
    /// from their wire format (CSV, scenario corpora) override it to skip
    /// materializing `Point`s entirely. Encoding order must equal point
    /// order so dictionary ids match a serial `encode_point` pass.
    fn next_encoded_batch(
        &mut self,
        encoder: &mut AttributeEncoder,
    ) -> crate::Result<Option<EncodedBatch>> {
        let Some(points) = self.next_batch()? else {
            return Ok(None);
        };
        let dim = points.first().map(|p| p.dimension()).unwrap_or(0);
        let mut batch = EncodedBatch {
            metrics: Vec::with_capacity(points.len() * dim),
            dim,
            items: ItemBatch::with_capacity(points.len(), 2),
        };
        let mut scratch = Vec::new();
        for p in &points {
            if p.dimension() != dim {
                return Err(crate::PipelineError::InconsistentDimensions {
                    expected: dim,
                    actual: p.dimension(),
                });
            }
            batch.metrics.extend_from_slice(&p.metrics);
            encoder.encode_point_into(&p.attributes, &mut scratch);
            batch.items.push_row(&scratch);
        }
        Ok(Some(batch))
    }
}

/// A transformer rewrites points without changing the stream type
/// (`stream<Point> → stream<Point>`), e.g. normalization, STFT features,
/// optical-flow extraction.
pub trait Transformer {
    /// Transform a batch of points.
    fn transform(&mut self, points: Vec<Point>) -> Vec<Point>;
}

/// A classifier labels points (`stream<Point> → stream<(label, Point)>`).
pub trait Classifier {
    /// Classify a batch of points, returning one scored label per point in
    /// input order.
    fn classify(&mut self, points: &[Point]) -> crate::Result<Vec<Classification>>;
}

/// An explainer aggregates labeled points into explanations
/// (`stream<(label, Point)> → stream<Explanation>`).
pub trait Explainer {
    /// Consume a batch of classified points (parallel slices, one
    /// classification per point).
    fn consume(&mut self, points: &[Point], classifications: &[Classification]);
    /// Produce the current explanations on demand.
    fn explanations(&mut self) -> Vec<crate::types::RenderedExplanation>;
}

/// An ingestor over an in-memory vector of points (batch execution is
/// "streaming over stored data", Section 3.2).
#[derive(Debug, Clone)]
pub struct VecIngestor {
    points: Vec<Point>,
    batch_size: usize,
    cursor: usize,
}

impl VecIngestor {
    /// Create an ingestor that yields `points` in batches of `batch_size`.
    pub fn new(points: Vec<Point>, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        VecIngestor {
            points,
            batch_size,
            cursor: 0,
        }
    }
}

impl Ingestor for VecIngestor {
    fn next_batch(&mut self) -> crate::Result<Option<Vec<Point>>> {
        if self.cursor >= self.points.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(self.points.len());
        let batch = self.points[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(Some(batch))
    }
}

/// Adapter turning a closure over a single point into a [`Transformer`].
pub struct MapTransformer<F: FnMut(Point) -> Point> {
    f: F,
}

impl<F: FnMut(Point) -> Point> MapTransformer<F> {
    /// Wrap a per-point closure.
    pub fn new(f: F) -> Self {
        MapTransformer { f }
    }
}

impl<F: FnMut(Point) -> Point> Transformer for MapTransformer<F> {
    fn transform(&mut self, points: Vec<Point>) -> Vec<Point> {
        points.into_iter().map(&mut self.f).collect()
    }
}

/// Adapter turning a batch-level closure into a [`Transformer`] (for
/// transforms that need to see the whole batch, e.g. windowed aggregation).
pub struct BatchTransformer<F: FnMut(Vec<Point>) -> Vec<Point>> {
    f: F,
}

impl<F: FnMut(Vec<Point>) -> Vec<Point>> BatchTransformer<F> {
    /// Wrap a per-batch closure.
    pub fn new(f: F) -> Self {
        BatchTransformer { f }
    }
}

impl<F: FnMut(Vec<Point>) -> Vec<Point>> Transformer for BatchTransformer<F> {
    fn transform(&mut self, points: Vec<Point>) -> Vec<Point> {
        (self.f)(points)
    }
}

/// A rule-based [`Classifier`] built from `mb_classify`'s supervised rules.
pub struct RuleBasedClassifier {
    rule: mb_classify::rule::RuleClassifier,
}

impl RuleBasedClassifier {
    /// Wrap a rule.
    pub fn new(rule: mb_classify::rule::RuleClassifier) -> Self {
        RuleBasedClassifier { rule }
    }
}

impl Classifier for RuleBasedClassifier {
    fn classify(&mut self, points: &[Point]) -> crate::Result<Vec<Classification>> {
        Ok(points
            .iter()
            .map(|point| {
                let label = self.rule.classify(&point.metrics);
                Classification {
                    score: if label == Label::Outlier { 1.0 } else { 0.0 },
                    label,
                }
            })
            .collect())
    }
}

/// A batching [`Ingestor`] over a CSV source: rows stream through
/// [`mb_ingest::csv::CsvReader`] and surface as batches of [`Point`]s, so
/// an MDP query can run end-to-end from a file without pre-materializing it
/// (the first step of real ingestion on the roadmap).
///
/// Rows whose metric cells fail to parse are skipped and counted
/// ([`CsvIngestor::skipped_rows`]); a mid-stream I/O failure is an error
/// ([`PipelineError::Ingest`](crate::PipelineError::Ingest)) that fails the
/// whole query.
pub struct CsvIngestor<R: BufRead> {
    reader: CsvReader<R>,
    batch_size: usize,
}

impl CsvIngestor<BufReader<File>> {
    /// Open a CSV file and ingest it according to `query` in batches of
    /// `batch_size` points.
    pub fn from_path(
        path: impl AsRef<Path>,
        query: &CsvQuery,
        batch_size: usize,
    ) -> Result<Self, CsvError> {
        Self::new(BufReader::new(File::open(path)?), query, batch_size)
    }
}

impl<R: BufRead> CsvIngestor<R> {
    /// Ingest CSV text from any buffered reader according to `query` in
    /// batches of `batch_size` points. Reads and validates the header
    /// eagerly, so unknown columns fail here rather than mid-stream.
    pub fn new(reader: R, query: &CsvQuery, batch_size: usize) -> Result<Self, CsvError> {
        assert!(batch_size > 0, "batch size must be positive");
        Ok(CsvIngestor {
            reader: CsvReader::new(reader, query)?,
            batch_size,
        })
    }

    /// Number of data rows skipped so far because a metric failed to parse
    /// or a column was missing.
    pub fn skipped_rows(&self) -> usize {
        self.reader.skipped_rows()
    }
}

impl<R: BufRead> Ingestor for CsvIngestor<R> {
    fn next_batch(&mut self) -> crate::Result<Option<Vec<Point>>> {
        let mut batch = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size {
            match self.reader.next_record() {
                Ok(Some(record)) => batch.push(Point::new(record.metrics, record.attributes)),
                Ok(None) => break,
                Err(e) => return Err(crate::PipelineError::Ingest(Box::new(e))),
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }

    /// CSV rows encode straight off the parsed record — no `Point` (and no
    /// per-point attribute `Vec<String>` survival past this frame).
    fn next_encoded_batch(
        &mut self,
        encoder: &mut AttributeEncoder,
    ) -> crate::Result<Option<EncodedBatch>> {
        let mut batch = EncodedBatch::default();
        let mut scratch = Vec::new();
        while batch.len() < self.batch_size {
            match self.reader.next_record() {
                Ok(Some(record)) => {
                    if batch.is_empty() {
                        batch.dim = record.metrics.len();
                    } else if record.metrics.len() != batch.dim {
                        return Err(crate::PipelineError::InconsistentDimensions {
                            expected: batch.dim,
                            actual: record.metrics.len(),
                        });
                    }
                    batch.metrics.extend_from_slice(&record.metrics);
                    encoder.encode_point_into(&record.attributes, &mut scratch);
                    batch.items.push_row(&scratch);
                }
                Ok(None) => break,
                Err(e) => return Err(crate::PipelineError::Ingest(Box::new(e))),
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_classify::rule::{Comparison, RuleClassifier};

    #[test]
    fn vec_ingestor_batches_everything_once() {
        let points: Vec<Point> = (0..10).map(|i| Point::simple(i as f64, "a")).collect();
        let mut ingestor = VecIngestor::new(points, 3);
        let mut total = 0;
        let mut batches = 0;
        while let Some(batch) = ingestor.next_batch().unwrap() {
            total += batch.len();
            batches += 1;
        }
        assert_eq!(total, 10);
        assert_eq!(batches, 4);
        assert!(ingestor.next_batch().unwrap().is_none());
    }

    #[test]
    fn map_transformer_applies_per_point() {
        let mut t = MapTransformer::new(|mut p: Point| {
            p.metrics[0] *= 2.0;
            p
        });
        let out = t.transform(vec![Point::simple(2.0, "x"), Point::simple(3.0, "y")]);
        assert_eq!(out[0].metrics[0], 4.0);
        assert_eq!(out[1].metrics[0], 6.0);
    }

    #[test]
    fn batch_transformer_can_change_cardinality() {
        // A windowing transform that averages pairs of points.
        let mut t = BatchTransformer::new(|points: Vec<Point>| {
            points
                .chunks(2)
                .map(|chunk| {
                    let mean =
                        chunk.iter().map(|p| p.metrics[0]).sum::<f64>() / chunk.len() as f64;
                    Point::simple(mean, chunk[0].attributes[0].clone())
                })
                .collect()
        });
        let input: Vec<Point> = (0..6).map(|i| Point::simple(i as f64, "w")).collect();
        let out = t.transform(input);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].metrics[0], 0.5);
    }

    #[test]
    fn rule_classifier_labels_by_predicate() {
        let mut c = RuleBasedClassifier::new(RuleClassifier::single(
            0,
            Comparison::GreaterThan,
            100.0,
        ));
        let out = c
            .classify(&[Point::simple(150.0, "a"), Point::simple(50.0, "b")])
            .unwrap();
        assert_eq!(out[0].label, Label::Outlier);
        assert_eq!(out[1].label, Label::Inlier);
    }

    #[test]
    fn csv_ingestor_streams_batches_of_points() {
        let csv = "power,device\n1.0,a\n2.0,b\nbad,c\n3.0,d\n";
        let query = CsvQuery::new(vec!["power".to_string()], vec!["device".to_string()]);
        let mut ingestor =
            CsvIngestor::new(std::io::Cursor::new(csv), &query, 2).unwrap();
        let first = ingestor.next_batch().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].metrics, vec![1.0]);
        assert_eq!(first[1].attributes, vec!["b".to_string()]);
        let second = ingestor.next_batch().unwrap().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].metrics, vec![3.0]);
        assert!(ingestor.next_batch().unwrap().is_none());
        assert_eq!(ingestor.skipped_rows(), 1);
    }

    #[test]
    fn strict_csv_ingest_errors_carry_line_and_column_context() {
        // Malformed row mid-file: header is line 1, the bad metric sits on
        // line 4. The surfaced PipelineError::Ingest message must say so.
        let csv = "power,device\n1.0,a\n2.0,b\nbad,c\n3.0,d\n";
        let query =
            CsvQuery::new(vec!["power".to_string()], vec!["device".to_string()]).strict();
        let mut ingestor = CsvIngestor::new(std::io::Cursor::new(csv), &query, 16).unwrap();
        let err = ingestor.next_batch().unwrap_err();
        assert!(matches!(err, crate::PipelineError::Ingest(_)));
        let message = err.to_string();
        assert!(message.contains("line 4"), "no position in: {message}");
        assert!(message.contains("power"), "no column in: {message}");
        assert!(message.contains("bad"), "no offending value in: {message}");
    }

    #[test]
    fn csv_ingestor_rejects_unknown_columns_eagerly() {
        let query = CsvQuery::new(vec!["nope".to_string()], vec![]);
        assert!(CsvIngestor::new(std::io::Cursor::new("a,b\n1,2\n"), &query, 8).is_err());
    }
}
