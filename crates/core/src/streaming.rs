//! Exponentially weighted streaming (EWS) MDP execution (Section 3.2's
//! "streaming queries", assembled from the ADR-trained classifier of
//! Section 4.2 and the AMC/M-CPS streaming explainer of Section 5.3).

use crate::types::{MdpReport, Point, RenderedExplanation};
use crate::Result;
use mb_classify::streaming::{StreamingClassifier, StreamingClassifierConfig};
use mb_classify::Label;
use mb_explain::encoder::AttributeEncoder;
use mb_explain::risk_ratio::rank_explanations;
use mb_explain::streaming::{StreamingExplainer, StreamingExplainerConfig};
use mb_explain::ExplanationConfig;
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;

/// Configuration of a streaming MDP query.
#[derive(Debug, Clone)]
pub struct StreamingMdpConfig {
    /// Score percentile above which points are outliers.
    pub target_percentile: f64,
    /// Explanation thresholds.
    pub explanation: ExplanationConfig,
    /// Reservoir / sketch sizes (paper default 10K).
    pub reservoir_size: usize,
    /// Decay rate applied at each period boundary (paper default 0.01).
    pub decay_rate: f64,
    /// Number of points between decay period boundaries (paper default 100K).
    pub decay_period: u64,
    /// Number of points between model retrainings.
    pub retrain_period: u64,
    /// Optional attribute column names for rendering.
    pub attribute_names: Vec<String>,
    /// Whether to skip maintaining explanation state (throughput measurements
    /// without explanation, as in Table 2).
    pub skip_explanation: bool,
    /// RNG seed for the reservoirs.
    pub seed: u64,
}

impl Default for StreamingMdpConfig {
    fn default() -> Self {
        StreamingMdpConfig {
            target_percentile: 0.99,
            explanation: ExplanationConfig::default(),
            reservoir_size: 10_000,
            decay_rate: 0.01,
            decay_period: 100_000,
            retrain_period: 10_000,
            attribute_names: Vec::new(),
            skip_explanation: false,
            seed: 0xE75,
        }
    }
}

/// Dispatch between the univariate (MAD) and multivariate (MCD) streaming
/// classifiers, chosen from the first observed point's dimensionality.
enum StreamingModel {
    Univariate(StreamingClassifier<MadEstimator>),
    Multivariate(StreamingClassifier<McdEstimator>),
}

/// The streaming (EWS) MDP pipeline.
pub struct MdpStreaming {
    config: StreamingMdpConfig,
    model: Option<StreamingModel>,
    explainer: StreamingExplainer,
    encoder: AttributeEncoder,
    points_seen: u64,
    outliers_seen: u64,
    points_since_decay: u64,
}

impl MdpStreaming {
    /// Create a streaming pipeline.
    pub fn new(config: StreamingMdpConfig) -> Self {
        let explainer = StreamingExplainer::new(StreamingExplainerConfig {
            explanation: config.explanation,
            decay_rate: config.decay_rate,
            amc_stable_size: config.reservoir_size,
            amc_maintenance_period: config.reservoir_size as u64,
        });
        let encoder = if config.attribute_names.is_empty() {
            AttributeEncoder::new()
        } else {
            AttributeEncoder::with_column_names(config.attribute_names.clone())
        };
        MdpStreaming {
            config,
            model: None,
            explainer,
            encoder,
            points_seen: 0,
            outliers_seen: 0,
            points_since_decay: 0,
        }
    }

    /// Create a streaming pipeline with default (paper) parameters.
    pub fn with_defaults() -> Self {
        Self::new(StreamingMdpConfig::default())
    }

    fn classifier_config(&self) -> StreamingClassifierConfig {
        StreamingClassifierConfig {
            input_reservoir_size: self.config.reservoir_size,
            score_reservoir_size: self.config.reservoir_size,
            decay_rate: self.config.decay_rate,
            retrain_period: self.config.retrain_period,
            target_percentile: self.config.target_percentile,
            threshold_refresh_period: (self.config.retrain_period / 10).max(1),
            warmup_points: 100,
            seed: self.config.seed,
        }
    }

    /// Observe one point, returning its label.
    pub fn observe(&mut self, point: &Point) -> Result<Label> {
        self.points_seen += 1;
        self.points_since_decay += 1;

        if self.model.is_none() {
            let config = self.classifier_config();
            self.model = Some(if point.dimension() == 1 {
                StreamingModel::Univariate(StreamingClassifier::new(MadEstimator::new(), config)?)
            } else {
                StreamingModel::Multivariate(StreamingClassifier::new(
                    McdEstimator::with_defaults(),
                    config,
                )?)
            });
        }
        let classification = match self.model.as_mut().expect("model initialized above") {
            StreamingModel::Univariate(c) => c.observe(&point.metrics),
            StreamingModel::Multivariate(c) => c.observe(&point.metrics),
        };
        if classification.label == Label::Outlier {
            self.outliers_seen += 1;
        }

        if !self.config.skip_explanation {
            let items = self.encoder.encode_point(&point.attributes);
            self.explainer
                .observe(&items, classification.label == Label::Outlier);
        }

        if self.points_since_decay >= self.config.decay_period {
            self.points_since_decay = 0;
            self.on_period_boundary();
        }
        Ok(classification.label)
    }

    /// Force a decay period boundary (also called automatically every
    /// `decay_period` points).
    pub fn on_period_boundary(&mut self) {
        if let Some(model) = self.model.as_mut() {
            match model {
                StreamingModel::Univariate(c) => c.on_period_boundary(),
                StreamingModel::Multivariate(c) => c.on_period_boundary(),
            }
        }
        if !self.config.skip_explanation {
            self.explainer.on_window_boundary();
        }
    }

    /// Total points observed so far.
    pub fn points_seen(&self) -> u64 {
        self.points_seen
    }

    /// Total points labeled outlier so far.
    pub fn outliers_seen(&self) -> u64 {
        self.outliers_seen
    }

    /// Whether the underlying model has completed its warm-up training.
    pub fn is_trained(&self) -> bool {
        match &self.model {
            Some(StreamingModel::Univariate(c)) => c.is_trained(),
            Some(StreamingModel::Multivariate(c)) => c.is_trained(),
            None => false,
        }
    }

    /// Produce the current explanations on demand (the streaming explainer is
    /// a continuously maintained view; this renders it).
    pub fn report(&mut self) -> MdpReport {
        let explanations = if self.config.skip_explanation {
            Vec::new()
        } else {
            let mut explanations = self.explainer.explain();
            rank_explanations(&mut explanations);
            explanations
                .into_iter()
                .map(|e| RenderedExplanation {
                    attributes: self.encoder.describe(&e.items),
                    items: e.items,
                    stats: e.stats,
                })
                .collect()
        };
        let cutoff = match self.model.as_mut() {
            Some(StreamingModel::Univariate(c)) => c.current_cutoff(),
            Some(StreamingModel::Multivariate(c)) => c.current_cutoff(),
            None => None,
        };
        MdpReport {
            explanations,
            num_points: self.points_seen as usize,
            num_outliers: self.outliers_seen as usize,
            score_cutoff: cutoff,
            scores: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};

    fn test_config() -> StreamingMdpConfig {
        StreamingMdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            reservoir_size: 2_000,
            decay_rate: 0.05,
            decay_period: 10_000,
            retrain_period: 5_000,
            attribute_names: vec!["device_id".to_string()],
            ..StreamingMdpConfig::default()
        }
    }

    #[test]
    fn streaming_recovers_misbehaving_devices() {
        let workload = device_workload(&DeviceWorkloadConfig {
            num_points: 50_000,
            num_devices: 200,
            outlying_device_fraction: 0.01,
            ..DeviceWorkloadConfig::default()
        });
        let mut mdp = MdpStreaming::new(test_config());
        for r in &workload.records {
            let point = Point::new(r.record.metrics.clone(), r.record.attributes.clone());
            mdp.observe(&point).unwrap();
        }
        assert!(mdp.is_trained());
        assert!(mdp.outliers_seen() > 0);
        let report = mdp.report();
        let reported: Vec<String> = report
            .explanations
            .iter()
            .flat_map(|e| e.attributes.clone())
            .collect();
        for device in &workload.outlying_devices {
            assert!(
                reported.iter().any(|r| r.ends_with(device.as_str())),
                "device {device} missing from {reported:?}"
            );
        }
    }

    #[test]
    fn report_before_any_points_is_empty() {
        let mut mdp = MdpStreaming::with_defaults();
        let report = mdp.report();
        assert_eq!(report.num_points, 0);
        assert!(report.explanations.is_empty());
        assert!(report.score_cutoff.is_none());
    }

    #[test]
    fn skip_explanation_mode_reports_counts_only() {
        let mut config = test_config();
        config.skip_explanation = true;
        let mut mdp = MdpStreaming::new(config);
        for i in 0..20_000 {
            let value = if i % 1_000 == 0 { 500.0 } else { 10.0 + (i % 7) as f64 };
            mdp.observe(&Point::simple(value, format!("d{}", i % 100)))
                .unwrap();
        }
        let report = mdp.report();
        assert!(report.explanations.is_empty());
        assert!(report.num_outliers > 0);
        assert_eq!(report.num_points, 20_000);
    }

    #[test]
    fn multivariate_streaming_dispatches_to_mcd() {
        let mut config = test_config();
        config.reservoir_size = 500;
        let mut mdp = MdpStreaming::new(config);
        for i in 0..5_000 {
            let point = Point::new(
                vec![10.0 + (i % 5) as f64 * 0.1, 20.0 + (i % 3) as f64 * 0.1],
                vec![format!("host_{}", i % 10)],
            );
            mdp.observe(&point).unwrap();
        }
        assert!(mdp.is_trained());
        // An extreme multivariate point is flagged.
        let label = mdp
            .observe(&Point::new(
                vec![500.0, 500.0],
                vec!["host_bad".to_string()],
            ))
            .unwrap();
        assert_eq!(label, Label::Outlier);
    }

    #[test]
    fn explanations_favor_recent_behaviour_under_decay() {
        let mut config = test_config();
        config.decay_rate = 0.5;
        config.decay_period = 5_000;
        let mut mdp = MdpStreaming::new(config);
        // Phase 1: device_old misbehaves.
        for i in 0..20_000 {
            let (value, device) = if i % 100 == 0 {
                (500.0, "device_old".to_string())
            } else {
                (10.0 + (i % 7) as f64 * 0.1, format!("d{}", i % 50))
            };
            mdp.observe(&Point::simple(value, device)).unwrap();
        }
        // Phase 2: device_new misbehaves instead, for much longer.
        for i in 0..40_000 {
            let (value, device) = if i % 100 == 0 {
                (500.0, "device_new".to_string())
            } else {
                (10.0 + (i % 7) as f64 * 0.1, format!("d{}", i % 50))
            };
            mdp.observe(&Point::simple(value, device)).unwrap();
        }
        let report = mdp.report();
        let count_for = |needle: &str| {
            report
                .explanations
                .iter()
                .filter(|e| e.attributes.iter().any(|a| a.contains(needle)))
                .map(|e| e.stats.outlier_count)
                .fold(0.0, f64::max)
        };
        assert!(
            count_for("device_new") > count_for("device_old"),
            "decay should favor the recent offender: {report:?}"
        );
    }
}
