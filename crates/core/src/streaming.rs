//! Exponentially weighted streaming (EWS) MDP execution (Section 3.2's
//! "streaming queries", assembled from the ADR-trained classifier of
//! Section 4.2 and the AMC/M-CPS streaming explainer of Section 5.3).
//!
//! The engine behind [`Executor::Streaming`](crate::query::Executor) lives
//! here; [`StreamingSession`] exposes it incrementally (observe points one
//! at a time, render reports mid-stream) for adaptivity experiments and
//! live monitoring. Build sessions with
//! [`MdpQuery::into_streaming`](crate::query::MdpQuery::into_streaming).

use crate::query::{AnalysisConfig, EstimatorKind, StreamingOptions};
use crate::types::{MdpReport, Point, RenderedExplanation};
use crate::{PipelineError, Result};
use mb_classify::rule::{label_or, RuleClassifier};
use mb_classify::streaming::{StreamingClassifier, StreamingClassifierConfig};
use mb_classify::Label;
use mb_explain::encoder::AttributeEncoder;
use mb_explain::risk_ratio::rank_explanations;
use mb_explain::streaming::{StreamingExplainer, StreamingExplainerConfig};
use mb_explain::ExplanationConfig;
use mb_obs::{stage, MetricRegistry, QueryTrace, StageTimer, StageTrace};
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::zscore::ZScoreEstimator;

/// Dispatch between the concrete streaming classifiers, chosen from the
/// configured estimator resolved against the first observed point's
/// dimensionality.
enum StreamingModel {
    Mad(StreamingClassifier<MadEstimator>),
    Mcd(StreamingClassifier<McdEstimator>),
    ZScore(StreamingClassifier<ZScoreEstimator>),
}

/// The streaming (EWS) engine: ADR-trained classifier, AMC + M-CPS
/// explainer, per-point decay bookkeeping. Shared by the streaming executor
/// backend, [`StreamingSession`], and the deprecated [`MdpStreaming`] shim.
pub(crate) struct StreamingEngine {
    estimator: EstimatorKind,
    target_percentile: f64,
    reservoir_size: usize,
    decay_rate: f64,
    decay_period: u64,
    retrain_period: u64,
    seed: u64,
    skip_explanation: bool,
    retain_outlier_rows: bool,
    rule: Option<RuleClassifier>,
    unsupervised: bool,
    /// Metric dimensionality locked in by the first accepted point. Later
    /// points are validated against it *before* any engine state mutates, so
    /// a rejected point leaves counters, reservoirs, and explainer state
    /// untouched and the session remains usable.
    dim: Option<usize>,
    model: Option<StreamingModel>,
    explainer: StreamingExplainer,
    encoder: AttributeEncoder,
    /// Reused per-point item buffer: the hot observe loop encodes into this
    /// instead of allocating a fresh `Vec<Item>` per point.
    encode_scratch: Vec<mb_fpgrowth::Item>,
    points_seen: u64,
    outliers_seen: u64,
    outlier_rows: Vec<usize>,
    points_since_decay: u64,
    /// Telemetry switch mirrored from [`AnalysisConfig::obs`]. When off
    /// (the default) the observe loop takes no clock reads and the report
    /// carries `trace: None`.
    obs_enabled: bool,
    /// Engine-owned metric shard: per-tick retrain and decay latency
    /// histograms. Single-threaded here, but the same mergeable shape the
    /// batch engines fold across workers.
    metrics: MetricRegistry,
    /// Accumulated wall time inside [`StreamingEngine::observe`].
    observe_wall_ns: u64,
}

impl StreamingEngine {
    pub(crate) fn new(
        analysis: &AnalysisConfig,
        options: &StreamingOptions,
        rule: Option<RuleClassifier>,
        unsupervised: bool,
    ) -> Self {
        let explainer = StreamingExplainer::new(StreamingExplainerConfig {
            explanation: analysis.explanation,
            decay_rate: options.decay_rate,
            amc_stable_size: options.reservoir_size,
            amc_maintenance_period: options.reservoir_size as u64,
        });
        let encoder = crate::executor::encoder_for(analysis);
        StreamingEngine {
            estimator: analysis.estimator,
            target_percentile: analysis.target_percentile,
            reservoir_size: options.reservoir_size,
            decay_rate: options.decay_rate,
            decay_period: options.decay_period,
            retrain_period: options.retrain_period,
            seed: options.seed,
            skip_explanation: analysis.skip_explanation,
            retain_outlier_rows: analysis.retain_outlier_rows,
            rule,
            unsupervised,
            dim: None,
            model: None,
            explainer,
            encoder,
            encode_scratch: Vec::new(),
            points_seen: 0,
            outliers_seen: 0,
            outlier_rows: Vec::new(),
            points_since_decay: 0,
            obs_enabled: analysis.obs.is_enabled(),
            metrics: MetricRegistry::new(),
            observe_wall_ns: 0,
        }
    }

    fn classifier_config(&self) -> StreamingClassifierConfig {
        StreamingClassifierConfig {
            input_reservoir_size: self.reservoir_size,
            score_reservoir_size: self.reservoir_size,
            decay_rate: self.decay_rate,
            retrain_period: self.retrain_period,
            target_percentile: self.target_percentile,
            threshold_refresh_period: (self.retrain_period / 10).max(1),
            warmup_points: 100,
            seed: self.seed,
        }
    }

    /// Points since the model last (re)trained — 0 right after a retrain,
    /// so a tick ending at 0 is the tick that retrained.
    fn model_staleness(&self) -> u64 {
        match &self.model {
            Some(StreamingModel::Mad(c)) => c.points_since_retrain(),
            Some(StreamingModel::Mcd(c)) => c.points_since_retrain(),
            Some(StreamingModel::ZScore(c)) => c.points_since_retrain(),
            None => 0,
        }
    }

    pub(crate) fn observe(&mut self, point: &Point) -> Result<Label> {
        // Validate before any counter or reservoir mutates: a rejected point
        // must leave the engine exactly as it was.
        let dim = point.dimension();
        match self.dim {
            Some(expected) if expected != dim => {
                return Err(PipelineError::InconsistentDimensions {
                    expected,
                    actual: dim,
                });
            }
            None => {
                if dim == 0 {
                    return Err(PipelineError::InvalidConfiguration(
                        "streaming points need at least one metric".to_string(),
                    ));
                }
                self.dim = Some(dim);
            }
            _ => {}
        }
        let tick_start = StageTimer::start_if(self.obs_enabled);
        self.points_seen += 1;
        self.points_since_decay += 1;

        let mut label = Label::Inlier;
        if self.unsupervised {
            if self.model.is_none() {
                let config = self.classifier_config();
                self.model = Some(match self.estimator.resolve(point.dimension()) {
                    EstimatorKind::Mad => {
                        StreamingModel::Mad(StreamingClassifier::new(MadEstimator::new(), config)?)
                    }
                    EstimatorKind::Mcd => StreamingModel::Mcd(StreamingClassifier::new(
                        McdEstimator::with_defaults(),
                        config,
                    )?),
                    EstimatorKind::ZScore => StreamingModel::ZScore(StreamingClassifier::new(
                        ZScoreEstimator::new(),
                        config,
                    )?),
                    EstimatorKind::Auto => unreachable!("resolve() eliminates Auto"),
                });
            }
            // The branch above guarantees a model; the `if let` (rather than
            // an `expect`) keeps this executor hot path panic-free.
            if let Some(model) = self.model.as_mut() {
                label = match model {
                    StreamingModel::Mad(c) => c.observe(&point.metrics),
                    StreamingModel::Mcd(c) => c.observe(&point.metrics),
                    StreamingModel::ZScore(c) => c.observe(&point.metrics),
                }
                .label;
            }
        }
        if let Some(rule) = &self.rule {
            label = label_or(label, rule.classify(&point.metrics));
        }
        if label == Label::Outlier {
            self.outliers_seen += 1;
            if self.retain_outlier_rows {
                self.outlier_rows.push((self.points_seen - 1) as usize);
            }
        }

        if !self.skip_explanation {
            self.encoder
                .encode_point_into(&point.attributes, &mut self.encode_scratch);
            self.explainer
                .observe(&self.encode_scratch, label == Label::Outlier);
        }

        if self.points_since_decay >= self.decay_period {
            self.points_since_decay = 0;
            self.on_period_boundary();
        }
        if tick_start.is_running() {
            let tick_ns = tick_start.elapsed_ns();
            self.observe_wall_ns = self.observe_wall_ns.saturating_add(tick_ns);
            // The classifier resets its staleness counter inside a retrain,
            // so a tick that ends at staleness 0 is the tick that paid for
            // one — attribute its full latency to the retrain histogram.
            if self.unsupervised && self.model_staleness() == 0 {
                self.metrics.record_ns("retrain_ns", tick_ns);
            }
        }
        Ok(label)
    }

    pub(crate) fn on_period_boundary(&mut self) {
        let decay_start = StageTimer::start_if(self.obs_enabled);
        if let Some(model) = self.model.as_mut() {
            match model {
                StreamingModel::Mad(c) => c.on_period_boundary(),
                StreamingModel::Mcd(c) => c.on_period_boundary(),
                StreamingModel::ZScore(c) => c.on_period_boundary(),
            }
        }
        if !self.skip_explanation {
            self.explainer.on_window_boundary();
        }
        if decay_start.is_running() {
            self.metrics.record_ns("decay_ns", decay_start.elapsed_ns());
        }
    }

    pub(crate) fn points_seen(&self) -> u64 {
        self.points_seen
    }

    pub(crate) fn outliers_seen(&self) -> u64 {
        self.outliers_seen
    }

    pub(crate) fn is_trained(&self) -> bool {
        if !self.unsupervised {
            return true;
        }
        match &self.model {
            Some(StreamingModel::Mad(c)) => c.is_trained(),
            Some(StreamingModel::Mcd(c)) => c.is_trained(),
            Some(StreamingModel::ZScore(c)) => c.is_trained(),
            None => false,
        }
    }

    pub(crate) fn report(&mut self) -> MdpReport {
        let explanations = if self.skip_explanation {
            Vec::new()
        } else {
            let mut explanations = self.explainer.explain();
            rank_explanations(&mut explanations);
            explanations
                .into_iter()
                .map(|e| RenderedExplanation {
                    attributes: self.encoder.describe(&e.items),
                    items: e.items,
                    stats: e.stats,
                })
                .collect()
        };
        let cutoff = match self.model.as_mut() {
            Some(StreamingModel::Mad(c)) => c.current_cutoff(),
            Some(StreamingModel::Mcd(c)) => c.current_cutoff(),
            Some(StreamingModel::ZScore(c)) => c.current_cutoff(),
            None => None,
        };
        MdpReport {
            explanations,
            num_points: self.points_seen as usize,
            num_outliers: self.outliers_seen as usize,
            score_cutoff: cutoff,
            scores: Vec::new(),
            outlier_rows: self.outlier_rows.clone(),
            partition_reports: None,
            trace: self.trace(),
        }
    }

    /// Render the engine's accumulated telemetry as a [`QueryTrace`] —
    /// `None` when telemetry is off. Reports can be rendered mid-stream, so
    /// this snapshots rather than consumes: the engine keeps accumulating.
    fn trace(&self) -> Option<QueryTrace> {
        if !self.obs_enabled {
            return None;
        }
        let mut registry = self.metrics.clone();
        registry.add("points", self.points_seen);
        registry.add("outliers", self.outliers_seen);
        registry.set_gauge("model_staleness", self.model_staleness() as f64);
        Some(QueryTrace {
            executor: "streaming".to_string(),
            partitions: 1,
            // One synthetic span: the streaming engine scores point-at-a-time,
            // so the whole observe loop is its `score` stage.
            stages: vec![StageTrace {
                stage: stage::SCORE.to_string(),
                wall_ns: self.observe_wall_ns,
                rows_in: self.points_seen,
                rows_out: self.outliers_seen,
                batches: 1,
            }],
            counters: registry.counter_entries(),
            gauges: registry.gauge_entries(),
            histograms: registry.histogram_snapshots(),
        })
    }
}

/// An incremental streaming execution of an
/// [`MdpQuery`](crate::query::MdpQuery): observe points one at a time,
/// force decay boundaries, and render reports mid-stream (the continuously
/// maintained view of Section 5.3). Obtain one with
/// [`MdpQuery::into_streaming`](crate::query::MdpQuery::into_streaming);
/// for run-to-completion streaming over an ingestor use
/// [`Executor::Streaming`](crate::query::Executor) instead.
pub struct StreamingSession {
    engine: StreamingEngine,
}

impl StreamingSession {
    pub(crate) fn new(engine: StreamingEngine) -> Self {
        StreamingSession { engine }
    }

    /// Observe one point, returning its label.
    ///
    /// A point whose metric dimensionality disagrees with the first accepted
    /// point is rejected with a typed error *before* any session state
    /// mutates — counters, reservoirs, and explainer state are untouched and
    /// the session remains usable.
    pub fn observe(&mut self, point: &Point) -> Result<Label> {
        self.engine.observe(point)
    }

    /// Observe a batch of points, returning how many of them were labeled
    /// outliers. An empty batch is a no-op and returns `Ok(0)`. On a typed
    /// error the batch stops at the offending point: points observed before
    /// it remain counted, the offending point leaves no state behind, and
    /// the session can keep feeding.
    pub fn feed(&mut self, points: &[Point]) -> Result<u64> {
        let mut outliers = 0;
        for point in points {
            if self.engine.observe(point)? == Label::Outlier {
                outliers += 1;
            }
        }
        Ok(outliers)
    }

    /// Force a decay period boundary (also triggered automatically every
    /// `decay_period` points).
    pub fn on_period_boundary(&mut self) {
        self.engine.on_period_boundary()
    }

    /// Total points observed so far.
    pub fn points_seen(&self) -> u64 {
        self.engine.points_seen()
    }

    /// Total points labeled outlier so far.
    pub fn outliers_seen(&self) -> u64 {
        self.engine.outliers_seen()
    }

    /// Whether the underlying model has completed its warm-up training
    /// (always true for rule-only queries).
    pub fn is_trained(&self) -> bool {
        self.engine.is_trained()
    }

    /// Render the current explanations and counters as a report.
    pub fn report(&mut self) -> MdpReport {
        self.engine.report()
    }
}

/// Configuration of a streaming MDP query (superseded by
/// [`AnalysisConfig`] + [`StreamingOptions`]).
#[deprecated(
    since = "0.5.0",
    note = "use AnalysisConfig + StreamingOptions with MdpQuery and Executor::Streaming"
)]
#[derive(Debug, Clone)]
pub struct StreamingMdpConfig {
    /// Score percentile above which points are outliers.
    pub target_percentile: f64,
    /// Explanation thresholds.
    pub explanation: ExplanationConfig,
    /// Reservoir / sketch sizes (paper default 10K).
    pub reservoir_size: usize,
    /// Decay rate applied at each period boundary (paper default 0.01).
    pub decay_rate: f64,
    /// Number of points between decay period boundaries (paper default 100K).
    pub decay_period: u64,
    /// Number of points between model retrainings.
    pub retrain_period: u64,
    /// Optional attribute column names for rendering.
    pub attribute_names: Vec<String>,
    /// Whether to skip maintaining explanation state (throughput measurements
    /// without explanation, as in Table 2).
    pub skip_explanation: bool,
    /// RNG seed for the reservoirs.
    pub seed: u64,
}

#[allow(deprecated)]
impl Default for StreamingMdpConfig {
    fn default() -> Self {
        StreamingMdpConfig {
            target_percentile: 0.99,
            explanation: ExplanationConfig::default(),
            reservoir_size: 10_000,
            decay_rate: 0.01,
            decay_period: 100_000,
            retrain_period: 10_000,
            attribute_names: Vec::new(),
            skip_explanation: false,
            seed: 0xE75,
        }
    }
}

#[allow(deprecated)]
impl StreamingMdpConfig {
    fn split(&self) -> (AnalysisConfig, StreamingOptions) {
        (
            AnalysisConfig {
                target_percentile: self.target_percentile,
                explanation: self.explanation,
                attribute_names: self.attribute_names.clone(),
                skip_explanation: self.skip_explanation,
                ..AnalysisConfig::default()
            },
            StreamingOptions {
                reservoir_size: self.reservoir_size,
                decay_rate: self.decay_rate,
                decay_period: self.decay_period,
                retrain_period: self.retrain_period,
                seed: self.seed,
            },
        )
    }
}

/// The streaming (EWS) MDP pipeline (superseded by [`StreamingSession`] /
/// [`Executor::Streaming`](crate::query::Executor)).
#[deprecated(
    since = "0.5.0",
    note = "use MdpQuery::into_streaming (incremental) or Executor::Streaming (run-to-completion)"
)]
pub struct MdpStreaming {
    engine: StreamingEngine,
}

#[allow(deprecated)]
impl MdpStreaming {
    /// Create a streaming pipeline.
    pub fn new(config: StreamingMdpConfig) -> Self {
        let (analysis, options) = config.split();
        MdpStreaming {
            engine: StreamingEngine::new(&analysis, &options, None, true),
        }
    }

    /// Create a streaming pipeline with default (paper) parameters.
    pub fn with_defaults() -> Self {
        Self::new(StreamingMdpConfig::default())
    }

    /// Observe one point, returning its label.
    pub fn observe(&mut self, point: &Point) -> Result<Label> {
        self.engine.observe(point)
    }

    /// Force a decay period boundary (also called automatically every
    /// `decay_period` points).
    pub fn on_period_boundary(&mut self) {
        self.engine.on_period_boundary()
    }

    /// Total points observed so far.
    pub fn points_seen(&self) -> u64 {
        self.engine.points_seen()
    }

    /// Total points labeled outlier so far.
    pub fn outliers_seen(&self) -> u64 {
        self.engine.outliers_seen()
    }

    /// Whether the underlying model has completed its warm-up training.
    pub fn is_trained(&self) -> bool {
        self.engine.is_trained()
    }

    /// Produce the current explanations on demand (the streaming explainer is
    /// a continuously maintained view; this renders it).
    pub fn report(&mut self) -> MdpReport {
        self.engine.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Executor, MdpQuery, MdpQueryBuilder};
    use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};

    fn test_options() -> StreamingOptions {
        StreamingOptions {
            reservoir_size: 2_000,
            decay_rate: 0.05,
            decay_period: 10_000,
            retrain_period: 5_000,
            ..StreamingOptions::default()
        }
    }

    fn test_query() -> MdpQueryBuilder {
        MdpQuery::builder()
            .explanation(ExplanationConfig::new(0.01, 3.0))
            .attribute_names(vec!["device_id".to_string()])
    }

    #[test]
    fn streaming_recovers_misbehaving_devices() {
        let workload = device_workload(&DeviceWorkloadConfig {
            num_points: 50_000,
            num_devices: 200,
            outlying_device_fraction: 0.01,
            ..DeviceWorkloadConfig::default()
        });
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&test_options())
            .unwrap();
        for r in &workload.records {
            let point = Point::new(r.record.metrics.clone(), r.record.attributes.clone());
            session.observe(&point).unwrap();
        }
        assert!(session.is_trained());
        assert!(session.outliers_seen() > 0);
        let report = session.report();
        let reported: Vec<String> = report
            .explanations
            .iter()
            .flat_map(|e| e.attributes.clone())
            .collect();
        for device in &workload.outlying_devices {
            assert!(
                reported.iter().any(|r| r.ends_with(device.as_str())),
                "device {device} missing from {reported:?}"
            );
        }
    }

    #[test]
    fn report_before_any_points_is_empty() {
        let mut session = MdpQuery::with_defaults()
            .into_streaming(&StreamingOptions::default())
            .unwrap();
        let report = session.report();
        assert_eq!(report.num_points, 0);
        assert!(report.explanations.is_empty());
        assert!(report.score_cutoff.is_none());
    }

    #[test]
    fn skip_explanation_mode_reports_counts_only() {
        let mut query = test_query().skip_explanation().build().unwrap();
        let points: Vec<Point> = (0..20_000)
            .map(|i| {
                let value = if i % 1_000 == 0 {
                    500.0
                } else {
                    10.0 + (i % 7) as f64
                };
                Point::simple(value, format!("d{}", i % 100))
            })
            .collect();
        let report = query
            .execute(
                &Executor::Streaming {
                    options: test_options(),
                },
                &points,
            )
            .unwrap();
        assert!(report.explanations.is_empty());
        assert!(report.num_outliers > 0);
        assert_eq!(report.num_points, 20_000);
    }

    #[test]
    fn multivariate_streaming_dispatches_to_mcd() {
        let mut options = test_options();
        options.reservoir_size = 500;
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&options)
            .unwrap();
        for i in 0..5_000 {
            let point = Point::new(
                vec![10.0 + (i % 5) as f64 * 0.1, 20.0 + (i % 3) as f64 * 0.1],
                vec![format!("host_{}", i % 10)],
            );
            session.observe(&point).unwrap();
        }
        assert!(session.is_trained());
        // An extreme multivariate point is flagged.
        let label = session
            .observe(&Point::new(
                vec![500.0, 500.0],
                vec!["host_bad".to_string()],
            ))
            .unwrap();
        assert_eq!(label, Label::Outlier);
    }

    #[test]
    fn explanations_favor_recent_behaviour_under_decay() {
        let mut options = test_options();
        options.decay_rate = 0.5;
        options.decay_period = 5_000;
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&options)
            .unwrap();
        // Phase 1: device_old misbehaves.
        for i in 0..20_000 {
            let (value, device) = if i % 100 == 0 {
                (500.0, "device_old".to_string())
            } else {
                (10.0 + (i % 7) as f64 * 0.1, format!("d{}", i % 50))
            };
            session.observe(&Point::simple(value, device)).unwrap();
        }
        // Phase 2: device_new misbehaves instead, for much longer.
        for i in 0..40_000 {
            let (value, device) = if i % 100 == 0 {
                (500.0, "device_new".to_string())
            } else {
                (10.0 + (i % 7) as f64 * 0.1, format!("d{}", i % 50))
            };
            session.observe(&Point::simple(value, device)).unwrap();
        }
        let report = session.report();
        let count_for = |needle: &str| {
            report
                .explanations
                .iter()
                .filter(|e| e.attributes.iter().any(|a| a.contains(needle)))
                .map(|e| e.stats.outlier_count)
                .fold(0.0, f64::max)
        };
        assert!(
            count_for("device_new") > count_for("device_old"),
            "decay should favor the recent offender: {report:?}"
        );
    }

    #[test]
    fn rule_ored_into_streaming_labels() {
        // A value far below the distribution is invisible to the MAD-percentile
        // classifier's upper tail but must be flagged by the rule.
        use mb_classify::rule::{Comparison, RuleClassifier};
        let mut session = test_query()
            .supervised_rule(RuleClassifier::single(0, Comparison::LessThan, 0.0))
            .build()
            .unwrap()
            .into_streaming(&test_options())
            .unwrap();
        for i in 0..2_000 {
            session
                .observe(&Point::simple(10.0 + (i % 7) as f64, "ok"))
                .unwrap();
        }
        let label = session.observe(&Point::simple(-5.0, "neg")).unwrap();
        assert_eq!(label, Label::Outlier);
    }

    #[test]
    fn session_survives_a_typed_error_with_state_untouched() {
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&test_options())
            .unwrap();
        for i in 0..1_000 {
            session
                .observe(&Point::simple(10.0 + (i % 7) as f64, format!("d{}", i % 10)))
                .unwrap();
        }
        let before = session.points_seen();

        // A point of the wrong dimensionality is a typed error...
        let err = session
            .observe(&Point::new(vec![1.0, 2.0], vec!["d0".to_string()]))
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::InconsistentDimensions {
                expected: 1,
                actual: 2
            }
        ));
        // ...that leaves no state behind: the offender was never counted.
        assert_eq!(session.points_seen(), before);

        // Feeding continues as if the bad point never arrived.
        let fed = session
            .feed(&[
                Point::simple(10.0, "d1"),
                Point::simple(11.0, "d2"),
            ])
            .unwrap();
        assert!(fed <= 2);
        assert_eq!(session.points_seen(), before + 2);

        // A mid-batch offender stops the batch but keeps its predecessors.
        let err = session
            .feed(&[
                Point::simple(10.0, "d3"),
                Point::new(Vec::new(), vec!["d4".to_string()]),
                Point::simple(12.0, "d5"),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::InconsistentDimensions {
                expected: 1,
                actual: 0
            }
        ));
        assert_eq!(session.points_seen(), before + 3);
    }

    #[test]
    fn zero_dimensional_first_point_is_rejected() {
        let mut session = MdpQuery::with_defaults()
            .into_streaming(&StreamingOptions::default())
            .unwrap();
        let err = session
            .observe(&Point::new(Vec::new(), vec!["d0".to_string()]))
            .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfiguration(_)));
        assert_eq!(session.points_seen(), 0);
        // The rejected point did not lock in a dimensionality.
        session.observe(&Point::simple(1.0, "d0")).unwrap();
        assert_eq!(session.points_seen(), 1);
    }

    #[test]
    fn empty_batch_feed_is_a_no_op() {
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&test_options())
            .unwrap();
        session.feed(&[]).unwrap();
        assert_eq!(session.points_seen(), 0);
        for i in 0..500 {
            session
                .observe(&Point::simple(10.0 + (i % 5) as f64, format!("d{}", i % 10)))
                .unwrap();
        }
        let before = session.report();
        assert_eq!(session.feed(&[]).unwrap(), 0);
        assert_eq!(session.points_seen(), 500);
        assert_eq!(session.report(), before);
    }

    #[test]
    fn report_is_stable_when_no_points_arrived_since_last_tick() {
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&test_options())
            .unwrap();
        for i in 0..10_000 {
            let value = if i % 200 == 0 { 400.0 } else { 10.0 + (i % 7) as f64 };
            session
                .observe(&Point::simple(value, format!("d{}", i % 20)))
                .unwrap();
        }
        // Rendering is a snapshot of a continuously maintained view, not a
        // consuming drain: back-to-back reports with no intervening points
        // must be identical.
        let first = session.report();
        let second = session.report();
        assert_eq!(first, second);
        assert!(first.num_outliers > 0);
    }

    #[allow(deprecated)]
    #[test]
    fn deprecated_shim_matches_session_behaviour() {
        let config = StreamingMdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            reservoir_size: 2_000,
            decay_rate: 0.05,
            decay_period: 10_000,
            retrain_period: 5_000,
            attribute_names: vec!["device_id".to_string()],
            ..StreamingMdpConfig::default()
        };
        let mut shim = MdpStreaming::new(config);
        let mut session = test_query()
            .build()
            .unwrap()
            .into_streaming(&test_options())
            .unwrap();
        for i in 0..20_000 {
            let value = if i % 500 == 0 { 300.0 } else { 10.0 + (i % 9) as f64 };
            let point = Point::simple(value, format!("d{}", i % 30));
            shim.observe(&point).unwrap();
            session.observe(&point).unwrap();
        }
        assert_eq!(shim.points_seen(), session.points_seen());
        assert_eq!(shim.outliers_seen(), session.outliers_seen());
        assert_eq!(shim.report().num_outliers, session.report().num_outliers);
    }
}
