//! Batch execution engines behind the [`Executor`](crate::query::Executor)
//! backends, built by driving the Table 1 operator traits.
//!
//! All three batch backends share two real operators:
//!
//! * [`MdpClassifier`] — the MDP classification stage as a
//!   [`Classifier`]: robust-estimator scoring at a percentile threshold,
//!   optionally OR-ed with a supervised [`RuleClassifier`] (hybrid
//!   supervision), or rule-only.
//! * [`MdpExplainer`] — the MDP explanation stage as an [`Explainer`]:
//!   dictionary attribute encoding feeding the cardinality-aware risk-ratio
//!   strategy (Algorithm 2), ranked and rendered.
//!
//! `execute_one_shot` composes exactly these two; the naïve partitioned
//! engine runs it per partition; the coordinated engine decomposes the
//! classifier into fit/score/threshold so one model can be broadcast and one
//! threshold cut over merged scores, and swaps the explainer's accumulation
//! for mergeable [`ExplainState`]s — reproducing the one-shot report exactly
//! at any partition count.

use crate::operator::{Classifier, Explainer};
use crate::parallel::{partition_chunks, resolve_num_partitions, scatter};
use crate::query::{AnalysisConfig, EstimatorKind};
use crate::types::{MdpReport, Point, RenderedExplanation};
use crate::{PipelineError, Result};
use mb_classify::batch::{BatchClassifier, BatchClassifierConfig};
use mb_classify::rule::{label_or, RuleClassifier};
use mb_classify::threshold::StaticThreshold;
use mb_classify::{Classification, Label};
use mb_explain::batch::BatchExplainer;
use mb_explain::encoder::{encode_batch_parallel, AttributeEncoder};
use mb_explain::partition::ExplainState;
use mb_explain::risk_ratio::rank_explanations;
use mb_explain::{ItemBatch, Mergeable};
use mb_fpgrowth::Item;
use mb_obs::{stage, MetricRegistry, TraceBuilder};
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::zscore::ZScoreEstimator;
use mb_stats::Estimator;
use std::collections::HashMap;

/// Fold the global pool's activity delta since `before` into a trace's
/// registry (see [`mb_pool::Pool::total_stats`]). `before` is `Some` only
/// for traced top-level executions — per-partition sub-traces skip pool
/// deltas, which would otherwise double-count concurrent partitions.
fn record_pool_delta(trace: &mut TraceBuilder, before: Option<mb_pool::WorkerStats>) {
    let Some(before) = before else { return };
    let pool = mb_pool::global();
    let delta = pool.total_stats().since(&before);
    let registry = trace.registry();
    registry.add("pool_tasks", delta.tasks_executed);
    registry.add("pool_steals", delta.tasks_stolen);
    registry.add("pool_injector_pops", delta.injector_pops);
    registry.add("pool_idle_parks", delta.idle_parks);
    registry.set_gauge("pool_workers", pool.num_threads() as f64);
}

/// Snapshot the global pool's counters when tracing is on.
fn pool_snapshot(trace: &TraceBuilder) -> Option<mb_pool::WorkerStats> {
    trace
        .is_enabled()
        .then(|| mb_pool::global().total_stats())
}

/// The classifier/rule/flags slice of a query, borrowed for an execution.
#[derive(Clone, Copy)]
pub(crate) struct QueryParts<'a> {
    pub analysis: &'a AnalysisConfig,
    pub rule: Option<&'a RuleClassifier>,
    pub unsupervised: bool,
}

/// Validate that all points share one non-zero metric dimensionality;
/// returns it.
pub(crate) fn check_dimensions(points: &[Point]) -> Result<usize> {
    let first = points.first().ok_or(PipelineError::EmptyInput)?;
    let dim = first.dimension();
    if dim == 0 {
        return Err(PipelineError::InvalidConfiguration(
            "points must have at least one metric".to_string(),
        ));
    }
    for p in points {
        if p.dimension() != dim {
            return Err(PipelineError::InconsistentDimensions {
                expected: dim,
                actual: p.dimension(),
            });
        }
    }
    Ok(dim)
}

/// The MDP classification stage as a reusable [`Classifier`] operator:
/// unsupervised robust-estimator scoring cut at a percentile, a supervised
/// rule, or both OR-ed (hybrid supervision).
#[derive(Debug, Clone)]
pub struct MdpClassifier {
    estimator: EstimatorKind,
    config: BatchClassifierConfig,
    rule: Option<RuleClassifier>,
    unsupervised: bool,
    cutoff: Option<f64>,
}

impl MdpClassifier {
    /// An unsupervised classifier from an analysis configuration.
    pub fn from_analysis(analysis: &AnalysisConfig) -> Self {
        Self::with_rule(analysis, None, true)
    }

    /// A classifier with explicit stages; at least one of `rule` /
    /// `unsupervised` must be active (the query builder guarantees this).
    pub fn with_rule(
        analysis: &AnalysisConfig,
        rule: Option<RuleClassifier>,
        unsupervised: bool,
    ) -> Self {
        MdpClassifier {
            estimator: analysis.estimator,
            config: BatchClassifierConfig {
                target_percentile: analysis.target_percentile,
                training_sample_size: analysis.training_sample_size,
            },
            rule,
            unsupervised,
            cutoff: None,
        }
    }

    /// The percentile score cutoff fitted by the last
    /// [`classify`](Classifier::classify) call (`None` for rule-only
    /// classification, which has no score distribution).
    pub fn cutoff(&self) -> Option<f64> {
        self.cutoff
    }

    /// Fit, score, threshold, and label — the exact operation sequence of
    /// [`BatchClassifier::classify_batch_flat`], unrolled here so the train
    /// and score halves can be timed as separate trace stages. Results are
    /// identical to the composite call (same ops in the same order); the
    /// trace builder is inert unless the query enabled telemetry.
    fn classify_unsupervised<E: Estimator>(
        &mut self,
        estimator: E,
        flat: &[f64],
        dim: usize,
        trace: &mut TraceBuilder,
    ) -> Result<Vec<Classification>> {
        let rows = flat.len() / dim.max(1);
        let mut classifier = BatchClassifier::new(estimator, self.config);
        let timer = trace.start();
        classifier.fit_flat(flat, dim)?;
        trace.finish_stage(timer, stage::TRAIN, rows, rows, 1);
        let timer = trace.start();
        let scores = classifier.score_batch_flat(flat, dim)?;
        let threshold = StaticThreshold::from_scores(&scores, self.config.target_percentile)?;
        classifier.set_threshold(threshold);
        let classifications: Vec<Classification> = scores
            .into_iter()
            .map(|score| threshold.classify(score))
            .collect();
        if trace.is_enabled() {
            let outliers = classifications
                .iter()
                .filter(|c| c.label.is_outlier())
                .count();
            trace.finish_stage(timer, stage::SCORE, rows, outliers, 1);
        }
        self.cutoff = classifier.threshold().map(|t| t.cutoff());
        Ok(classifications)
    }
}

/// Copy every point's metrics into one contiguous row-major buffer — the
/// layout the flat classifier/estimator paths consume. One allocation for
/// the whole batch instead of one clone per point.
pub(crate) fn flatten_metrics(points: &[Point], dim: usize) -> Vec<f64> {
    let mut flat = Vec::with_capacity(points.len() * dim);
    for p in points {
        flat.extend_from_slice(&p.metrics);
    }
    flat
}

impl MdpClassifier {
    /// Classify a contiguous row-major metric buffer (`dim` values per row):
    /// the columnar entry every batch path funnels through. Produces exactly
    /// the classifications the row-major [`Classifier::classify`] does.
    pub(crate) fn classify_flat(&mut self, flat: &[f64], dim: usize) -> Result<Vec<Classification>> {
        self.classify_flat_traced(flat, dim, &mut TraceBuilder::disabled())
    }

    /// [`classify_flat`](MdpClassifier::classify_flat) with train/score
    /// stage timing recorded on `trace` (inert when telemetry is off).
    pub(crate) fn classify_flat_traced(
        &mut self,
        flat: &[f64],
        dim: usize,
        trace: &mut TraceBuilder,
    ) -> Result<Vec<Classification>> {
        let mut classifications = if self.unsupervised {
            match self.estimator.resolve(dim) {
                EstimatorKind::Mad => {
                    self.classify_unsupervised(MadEstimator::new(), flat, dim, trace)?
                }
                EstimatorKind::ZScore => {
                    self.classify_unsupervised(ZScoreEstimator::new(), flat, dim, trace)?
                }
                EstimatorKind::Mcd => {
                    self.classify_unsupervised(McdEstimator::with_defaults(), flat, dim, trace)?
                }
                EstimatorKind::Auto => unreachable!("resolve() eliminates Auto"),
            }
        } else {
            self.cutoff = None;
            vec![
                Classification {
                    score: 0.0,
                    label: Label::Inlier,
                };
                flat.len() / dim
            ]
        };
        if let Some(rule) = &self.rule {
            for (classification, row) in classifications.iter_mut().zip(flat.chunks_exact(dim)) {
                classification.label = label_or(classification.label, rule.classify(row));
            }
        }
        Ok(classifications)
    }
}

impl Classifier for MdpClassifier {
    fn classify(&mut self, points: &[Point]) -> Result<Vec<Classification>> {
        let dim = check_dimensions(points)?;
        let flat = flatten_metrics(points, dim);
        self.classify_flat(&flat, dim)
    }
}

/// The MDP explanation stage as a reusable [`Explainer`] operator:
/// dictionary-encode attributes, split transactions by label, and run the
/// cardinality-aware risk-ratio strategy, ranked and rendered.
pub struct MdpExplainer {
    encoder: AttributeEncoder,
    config: mb_explain::ExplanationConfig,
    batch: ItemBatch,
    labels: Vec<bool>,
    scratch: Vec<Item>,
}

impl MdpExplainer {
    /// An explainer from an analysis configuration (thresholds + attribute
    /// column names).
    pub fn from_analysis(analysis: &AnalysisConfig) -> Self {
        MdpExplainer {
            encoder: encoder_for(analysis),
            config: analysis.explanation,
            batch: ItemBatch::new(),
            labels: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl Explainer for MdpExplainer {
    fn consume(&mut self, points: &[Point], classifications: &[Classification]) {
        // Accumulate into the columnar batch: one flat item array + offsets
        // plus a label per row, instead of one Vec per point. The encode
        // order (hence id assignment) is identical to the old per-point
        // push, so rendered explanations cannot drift.
        for (point, classification) in points.iter().zip(classifications) {
            self.encoder
                .encode_point_into(&point.attributes, &mut self.scratch);
            self.batch.push_row(&self.scratch);
            self.labels.push(classification.label.is_outlier());
        }
    }

    fn explanations(&mut self) -> Vec<RenderedExplanation> {
        let explainer = BatchExplainer::new(self.config);
        let labels = &self.labels;
        let mut explanations = explainer.explain_labeled(&self.batch, |r| labels[r]);
        rank_explanations(&mut explanations);
        explanations
            .into_iter()
            .map(|e| RenderedExplanation {
                attributes: self.encoder.describe(&e.items),
                items: e.items,
                stats: e.stats,
            })
            .collect()
    }
}

/// The attribute encoder a query's analysis configuration asks for (named
/// columns when given, anonymous otherwise). Shared by every backend so the
/// selection rule cannot drift between batch and streaming engines.
pub(crate) fn encoder_for(analysis: &AnalysisConfig) -> AttributeEncoder {
    if analysis.attribute_names.is_empty() {
        AttributeEncoder::new()
    } else {
        AttributeEncoder::with_column_names(analysis.attribute_names.clone())
    }
}

/// The one-shot engine: drive [`MdpClassifier`] then [`MdpExplainer`] over
/// the whole batch on the calling thread. Returns the per-point
/// classifications (for callers that need labeled points, e.g. the
/// deprecated `Pipeline::run`) alongside the unified report.
pub(crate) fn execute_one_shot(
    parts: QueryParts<'_>,
    points: &[Point],
) -> Result<(Vec<Classification>, MdpReport)> {
    execute_one_shot_impl(parts, points, true)
}

/// [`execute_one_shot`] with control over pool-counter recording: the naïve
/// engine runs this per partition concurrently, where per-partition global
/// pool deltas would overlap and double-count, so only top-level entries
/// pass `record_pool`.
fn execute_one_shot_impl(
    parts: QueryParts<'_>,
    points: &[Point],
    record_pool: bool,
) -> Result<(Vec<Classification>, MdpReport)> {
    let mut trace = TraceBuilder::new(parts.analysis.obs, "one-shot");
    let pool_before = if record_pool {
        pool_snapshot(&trace)
    } else {
        None
    };
    let dim = check_dimensions(points)?;
    let timer = trace.start();
    let flat = flatten_metrics(points, dim);
    trace.finish_stage(timer, "flatten", points.len(), points.len(), 1);
    let mut classifier =
        MdpClassifier::with_rule(parts.analysis, parts.rule.cloned(), parts.unsupervised);
    let classifications = classifier.classify_flat_traced(&flat, dim, &mut trace)?;
    let num_outliers = classifications
        .iter()
        .filter(|c| c.label.is_outlier())
        .count();

    let explanations = if parts.analysis.skip_explanation {
        Vec::new()
    } else {
        // Columnar explanation path: shard the encode pass across the pool
        // (the first-occurrence-ordered dictionary merge reproduces the ids
        // a serial pass assigns) and explain straight off the ItemBatch —
        // strings stop flowing past this point.
        let analysis = parts.analysis;
        let mut encoder = encoder_for(analysis);
        let attribute_rows: Vec<&[String]> =
            points.iter().map(|p| p.attributes.as_slice()).collect();
        let encode_shards = resolve_num_partitions(0);
        let timer = trace.start();
        let batch = encode_batch_parallel(
            &mut encoder,
            mb_pool::global(),
            &attribute_rows,
            encode_shards,
        );
        trace.finish_stage(timer, stage::ENCODE, points.len(), points.len(), encode_shards);
        let timer = trace.start();
        let explanations = explain_encoded(analysis, &encoder, &batch, &classifications);
        trace.finish_stage(timer, stage::EXPLAIN, points.len(), explanations.len(), 1);
        explanations
    };

    record_pool_delta(&mut trace, pool_before);
    let report = MdpReport {
        explanations,
        num_points: points.len(),
        num_outliers,
        score_cutoff: classifier.cutoff(),
        scores: if parts.analysis.retain_scores {
            classifications.iter().map(|c| c.score).collect()
        } else {
            Vec::new()
        },
        outlier_rows: if parts.analysis.retain_outlier_rows {
            classifications
                .iter()
                .enumerate()
                .filter_map(|(row, c)| c.label.is_outlier().then_some(row))
                .collect()
        } else {
            Vec::new()
        },
        partition_reports: None,
        trace: trace.finish(),
    };
    Ok((classifications, report))
}

/// Dispatch between the concrete fitted batch classifiers a
/// [`FittedModel`] can hold.
#[derive(Debug, Clone)]
enum FittedModelKind {
    Mad(BatchClassifier<MadEstimator>),
    Mcd(BatchClassifier<McdEstimator>),
    ZScore(BatchClassifier<ZScoreEstimator>),
    /// The query declared no unsupervised stage; labels come from the rule
    /// alone and there is no score distribution.
    RuleOnly,
}

/// An immutable fitted classification model: the trained estimator plus the
/// percentile threshold cut over its training scores.
///
/// Produced by [`MdpQuery::train`](crate::query::MdpQuery::train) and
/// consumed by
/// [`MdpQuery::execute_with_model`](crate::query::MdpQuery::execute_with_model),
/// this is the unit a model cache shares across concurrent queries (the
/// `macrobase::serve` epoch-stamped snapshots): training is deterministic,
/// so scoring the training batch against its own fitted model reproduces the
/// one-shot report byte for byte, while the model itself is plain data —
/// `Send + Sync`, safe to publish behind an `Arc` and score from many
/// threads at once.
#[derive(Debug, Clone)]
pub struct FittedModel {
    kind: FittedModelKind,
    cutoff: Option<f64>,
    dim: usize,
}

impl FittedModel {
    /// The percentile score cutoff fitted over the training batch (`None`
    /// for rule-only models, which have no score distribution).
    pub fn cutoff(&self) -> Option<f64> {
        self.cutoff
    }

    /// Metric dimensionality the model was trained on; scoring a batch of
    /// any other dimensionality is a typed error.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the model carries a fitted unsupervised estimator (as opposed
    /// to labeling through a supervised rule alone).
    pub fn is_unsupervised(&self) -> bool {
        !matches!(self.kind, FittedModelKind::RuleOnly)
    }

    /// Score a contiguous row-major metric buffer against the fitted
    /// estimator; `None` for rule-only models.
    fn score_flat(&self, flat: &[f64], dim: usize) -> Result<Option<Vec<f64>>> {
        let scores = match &self.kind {
            FittedModelKind::Mad(c) => c.score_batch_flat(flat, dim)?,
            FittedModelKind::Mcd(c) => c.score_batch_flat(flat, dim)?,
            FittedModelKind::ZScore(c) => c.score_batch_flat(flat, dim)?,
            FittedModelKind::RuleOnly => return Ok(None),
        };
        Ok(Some(scores))
    }
}

/// Fit one estimator and cut its threshold — the exact fit → score →
/// threshold sequence of
/// [`MdpClassifier::classify_unsupervised`], so a model trained here and
/// applied to its own training batch labels every row identically.
fn fit_model<E: Estimator>(
    estimator: E,
    analysis: &AnalysisConfig,
    flat: &[f64],
    dim: usize,
) -> Result<(BatchClassifier<E>, f64)> {
    let mut classifier = BatchClassifier::new(
        estimator,
        BatchClassifierConfig {
            target_percentile: analysis.target_percentile,
            training_sample_size: analysis.training_sample_size,
        },
    );
    classifier.fit_flat(flat, dim)?;
    let scores = classifier.score_batch_flat(flat, dim)?;
    let threshold = StaticThreshold::from_scores(&scores, analysis.target_percentile)?;
    classifier.set_threshold(threshold);
    Ok((classifier, threshold.cutoff()))
}

/// Train a query's classification model over a batch without classifying or
/// explaining anything (the fit half of the one-shot engine).
pub(crate) fn train_model(parts: QueryParts<'_>, points: &[Point]) -> Result<FittedModel> {
    let dim = check_dimensions(points)?;
    if !parts.unsupervised {
        return Ok(FittedModel {
            kind: FittedModelKind::RuleOnly,
            cutoff: None,
            dim,
        });
    }
    let flat = flatten_metrics(points, dim);
    let analysis = parts.analysis;
    let (kind, cutoff) = match analysis.estimator.resolve(dim) {
        EstimatorKind::Mad => {
            let (c, cutoff) = fit_model(MadEstimator::new(), analysis, &flat, dim)?;
            (FittedModelKind::Mad(c), cutoff)
        }
        EstimatorKind::ZScore => {
            let (c, cutoff) = fit_model(ZScoreEstimator::new(), analysis, &flat, dim)?;
            (FittedModelKind::ZScore(c), cutoff)
        }
        EstimatorKind::Mcd => {
            let (c, cutoff) = fit_model(McdEstimator::with_defaults(), analysis, &flat, dim)?;
            (FittedModelKind::Mcd(c), cutoff)
        }
        EstimatorKind::Auto => unreachable!("resolve() eliminates Auto"),
    };
    Ok(FittedModel {
        kind,
        cutoff: Some(cutoff),
        dim,
    })
}

/// The one-shot engine with a pre-trained model: score, threshold, rule-OR,
/// and explain — exactly the operation sequence of [`execute_one_shot`]
/// minus the fit, so running a batch against a model trained on that same
/// batch reproduces the one-shot report byte for byte.
pub(crate) fn execute_one_shot_with_model(
    parts: QueryParts<'_>,
    model: &FittedModel,
    points: &[Point],
) -> Result<MdpReport> {
    let mut trace = TraceBuilder::new(parts.analysis.obs, "one-shot");
    let pool_before = pool_snapshot(&trace);
    let dim = check_dimensions(points)?;
    if dim != model.dim {
        return Err(PipelineError::InconsistentDimensions {
            expected: model.dim,
            actual: dim,
        });
    }
    if model.is_unsupervised() != parts.unsupervised {
        return Err(PipelineError::InvalidConfiguration(
            "model and query disagree on the unsupervised classification stage".to_string(),
        ));
    }
    let timer = trace.start();
    let flat = flatten_metrics(points, dim);
    trace.finish_stage(timer, "flatten", points.len(), points.len(), 1);

    let timer = trace.start();
    let mut classifications = match model.score_flat(&flat, dim)? {
        Some(scores) => {
            let cutoff = model.cutoff.ok_or_else(|| {
                PipelineError::InvalidConfiguration(
                    "fitted model carries no score threshold".to_string(),
                )
            })?;
            let threshold = StaticThreshold::new(cutoff);
            scores
                .into_iter()
                .map(|score| threshold.classify(score))
                .collect()
        }
        None => vec![
            Classification {
                score: 0.0,
                label: Label::Inlier,
            };
            points.len()
        ],
    };
    if let Some(rule) = parts.rule {
        for (classification, row) in classifications.iter_mut().zip(flat.chunks_exact(dim)) {
            classification.label = label_or(classification.label, rule.classify(row));
        }
    }
    let num_outliers = classifications
        .iter()
        .filter(|c| c.label.is_outlier())
        .count();
    trace.finish_stage(timer, stage::SCORE, points.len(), num_outliers, 1);

    let explanations = if parts.analysis.skip_explanation {
        Vec::new()
    } else {
        let analysis = parts.analysis;
        let mut encoder = encoder_for(analysis);
        let attribute_rows: Vec<&[String]> =
            points.iter().map(|p| p.attributes.as_slice()).collect();
        let encode_shards = resolve_num_partitions(0);
        let timer = trace.start();
        let batch = encode_batch_parallel(
            &mut encoder,
            mb_pool::global(),
            &attribute_rows,
            encode_shards,
        );
        trace.finish_stage(timer, stage::ENCODE, points.len(), points.len(), encode_shards);
        let timer = trace.start();
        let explanations = explain_encoded(analysis, &encoder, &batch, &classifications);
        trace.finish_stage(timer, stage::EXPLAIN, points.len(), explanations.len(), 1);
        explanations
    };

    record_pool_delta(&mut trace, pool_before);
    Ok(MdpReport {
        explanations,
        num_points: points.len(),
        num_outliers,
        score_cutoff: if parts.unsupervised { model.cutoff } else { None },
        scores: if parts.analysis.retain_scores {
            classifications.iter().map(|c| c.score).collect()
        } else {
            Vec::new()
        },
        outlier_rows: if parts.analysis.retain_outlier_rows {
            classifications
                .iter()
                .enumerate()
                .filter_map(|(row, c)| c.label.is_outlier().then_some(row))
                .collect()
        } else {
            Vec::new()
        },
        partition_reports: None,
        trace: trace.finish(),
    })
}

/// Explain a labeled columnar batch and render against its encoder — the
/// shared tail of both one-shot entry points.
fn explain_encoded(
    analysis: &AnalysisConfig,
    encoder: &AttributeEncoder,
    batch: &ItemBatch,
    classifications: &[Classification],
) -> Vec<RenderedExplanation> {
    let explainer = BatchExplainer::new(analysis.explanation);
    let mut explanations =
        explainer.explain_labeled(batch, |r| classifications[r].label.is_outlier());
    rank_explanations(&mut explanations);
    explanations
        .into_iter()
        .map(|e| RenderedExplanation {
            attributes: encoder.describe(&e.items),
            items: e.items,
            stats: e.stats,
        })
        .collect()
}

/// The one-shot engine over a pre-encoded columnar batch: contiguous
/// row-major metrics plus the [`ItemBatch`] an ingestor produced against
/// `encoder`. This is the zero-rematerialization fast path of
/// [`MdpQuery::execute_ingest`](crate::query::MdpQuery::execute_ingest) —
/// no `Point`s are ever built, yet the report is exactly what
/// materializing the source and running [`execute_one_shot`] produces
/// (same ids, same scores, same thresholds).
pub(crate) fn execute_one_shot_encoded(
    parts: QueryParts<'_>,
    flat: &[f64],
    dim: usize,
    items: &ItemBatch,
    encoder: &AttributeEncoder,
    mut trace: TraceBuilder,
) -> Result<MdpReport> {
    if items.is_empty() {
        return Err(PipelineError::EmptyInput);
    }
    if dim == 0 {
        return Err(PipelineError::InvalidConfiguration(
            "points must have at least one metric".to_string(),
        ));
    }
    debug_assert_eq!(flat.len(), items.len() * dim);
    let pool_before = pool_snapshot(&trace);
    let mut classifier =
        MdpClassifier::with_rule(parts.analysis, parts.rule.cloned(), parts.unsupervised);
    let classifications = classifier.classify_flat_traced(flat, dim, &mut trace)?;
    let num_outliers = classifications
        .iter()
        .filter(|c| c.label.is_outlier())
        .count();

    let explanations = if parts.analysis.skip_explanation {
        Vec::new()
    } else {
        let timer = trace.start();
        let explanations = explain_encoded(parts.analysis, encoder, items, &classifications);
        trace.finish_stage(timer, stage::EXPLAIN, items.len(), explanations.len(), 1);
        explanations
    };

    record_pool_delta(&mut trace, pool_before);
    Ok(MdpReport {
        explanations,
        num_points: items.len(),
        num_outliers,
        score_cutoff: classifier.cutoff(),
        scores: if parts.analysis.retain_scores {
            classifications.iter().map(|c| c.score).collect()
        } else {
            Vec::new()
        },
        outlier_rows: if parts.analysis.retain_outlier_rows {
            classifications
                .iter()
                .enumerate()
                .filter_map(|(row, c)| c.label.is_outlier().then_some(row))
                .collect()
        } else {
            Vec::new()
        },
        partition_reports: None,
        trace: trace.finish(),
    })
}

/// Fit once on the global batch, scatter the scoring pass, and cut one
/// threshold over the merged score vector.
///
/// The fit itself is no longer a serial section: FastMCD scatters its
/// training restarts as pool tasks (deterministic best-of-restarts merge,
/// so the model is a pure function of the batch and seed at any thread
/// count), and each partition's scoring below goes through the estimator's
/// bulk path — for MCD the parallel Mahalanobis distance pass — which
/// nests on the same pool. Both levels return exactly the per-row scores
/// of a serial loop, preserving coordinated ≡ one-shot byte equality.
fn coordinated_scores<E: Estimator + Sync>(
    estimator: E,
    flat: &[f64],
    dim: usize,
    num_partitions: usize,
    analysis: &AnalysisConfig,
    trace: &mut TraceBuilder,
) -> Result<(Vec<f64>, f64)> {
    let mut classifier = BatchClassifier::new(
        estimator,
        BatchClassifierConfig {
            target_percentile: analysis.target_percentile,
            training_sample_size: analysis.training_sample_size,
        },
    );
    let rows = flat.len() / dim;
    let timer = trace.start();
    classifier.fit_flat(flat, dim)?;
    trace.finish_stage(timer, stage::TRAIN, rows, rows, 1);

    // Scatter: partitions score communication-free against the shared model,
    // each over a row-aligned slice of the contiguous metric buffer. Chunk
    // boundaries cannot perturb results — each row's score is a pure
    // function of the shared model and that row. When tracing, each scatter
    // task carries its own registry shard (rows scored, tasks run) — the
    // thread-local half of the telemetry design, folded below with the same
    // `Mergeable` algebra the explanation states use.
    let chunk_rows = rows.div_ceil(num_partitions).max(1);
    let classifier_ref = &classifier;
    let tracing = trace.is_enabled();
    let timer = trace.start();
    let score_chunks: Vec<(mb_stats::Result<Vec<f64>>, MetricRegistry)> =
        scatter(flat.chunks(chunk_rows * dim).collect(), |chunk| {
            let scored = classifier_ref.score_batch_flat(chunk, dim);
            let mut shard = MetricRegistry::new();
            if tracing {
                shard.add("score_rows", (chunk.len() / dim) as u64);
                shard.add("score_tasks", 1);
            }
            (scored, shard)
        });
    let batches = score_chunks.len();
    let mut scores: Vec<f64> = Vec::with_capacity(rows);
    for (chunk, shard) in score_chunks {
        scores.extend(chunk?);
        trace.merge_registry(shard);
    }

    // Gather: one percentile threshold over the merged score vector.
    let threshold = StaticThreshold::from_scores(&scores, analysis.target_percentile)
        .map_err(PipelineError::from)?;
    trace.finish_stage(timer, stage::SCORE, rows, rows, batches);
    Ok((scores, threshold.cutoff()))
}

/// The coordinated partitioned engine: shared trained model, global score
/// threshold, merged pre-render explanation state. Produces exactly the
/// one-shot report for any partition count (see the module docs of
/// [`crate::coordinated`] for the design rationale).
pub(crate) fn execute_coordinated(
    parts: QueryParts<'_>,
    points: &[Point],
    num_partitions: usize,
) -> Result<MdpReport> {
    let num_partitions = resolve_num_partitions(num_partitions);
    let dim = check_dimensions(points)?;
    let analysis = parts.analysis;
    let mut trace = TraceBuilder::new(analysis.obs, "coordinated");
    trace.set_partitions(num_partitions);
    let pool_before = pool_snapshot(&trace);

    let (scores, cutoff) = if parts.unsupervised {
        let timer = trace.start();
        let flat = flatten_metrics(points, dim);
        trace.finish_stage(timer, "flatten", points.len(), points.len(), 1);
        let (scores, cutoff) = match analysis.estimator.resolve(dim) {
            EstimatorKind::Mad => coordinated_scores(
                MadEstimator::new(),
                &flat,
                dim,
                num_partitions,
                analysis,
                &mut trace,
            )?,
            EstimatorKind::ZScore => coordinated_scores(
                ZScoreEstimator::new(),
                &flat,
                dim,
                num_partitions,
                analysis,
                &mut trace,
            )?,
            EstimatorKind::Mcd => coordinated_scores(
                McdEstimator::with_defaults(),
                &flat,
                dim,
                num_partitions,
                analysis,
                &mut trace,
            )?,
            EstimatorKind::Auto => unreachable!("resolve() eliminates Auto"),
        };
        (scores, Some(cutoff))
    } else {
        (vec![0.0; points.len()], None)
    };

    // Label merge: percentile cutoff OR-ed with the supervised rule (the
    // rule evaluates per point, so it scatters alongside the scores).
    let labels: Vec<bool> = match (parts.rule, cutoff) {
        (None, Some(cutoff)) => scores.iter().map(|&s| s >= cutoff).collect(),
        (None, None) => return Err(PipelineError::MissingClassifier),
        (Some(rule), cutoff) => {
            let point_chunks = partition_chunks(points, num_partitions);
            let score_chunks = partition_chunks(&scores, num_partitions);
            let work: Vec<(&[Point], &[f64])> =
                point_chunks.into_iter().zip(score_chunks).collect();
            let label_chunks: Vec<Vec<bool>> = scatter(work, |(chunk, chunk_scores)| {
                chunk
                    .iter()
                    .zip(chunk_scores)
                    .map(|(point, &score)| {
                        cutoff.is_some_and(|c| score >= c)
                            || rule.classify(&point.metrics).is_outlier()
                    })
                    .collect()
            });
            label_chunks.concat()
        }
    };
    let num_outliers = labels.iter().filter(|&&outlier| outlier).count();

    let explanations = if analysis.skip_explanation {
        Vec::new()
    } else {
        // Encode attributes through one shared dictionary so item ids agree
        // across partitions (the naïve mode's per-partition encoders are why
        // it can only union rendered strings). The encode pass itself shards
        // across the pool; the first-occurrence-ordered dictionary merge
        // keeps the assigned ids identical to a serial pass, so this does
        // not perturb the one-shot-equivalence guarantee.
        let mut encoder = encoder_for(analysis);
        let attribute_rows: Vec<&[String]> =
            points.iter().map(|p| p.attributes.as_slice()).collect();
        let timer = trace.start();
        let batch = encode_batch_parallel(
            &mut encoder,
            mb_pool::global(),
            &attribute_rows,
            num_partitions,
        );
        trace.finish_stage(timer, stage::ENCODE, points.len(), batch.len(), num_partitions);

        // Scatter: per-partition pre-render explanation state over
        // contiguous row ranges of the columnar batch. When tracing, each
        // task also owns a metric-registry shard (rows observed, tasks run),
        // merged below alongside the explanation states themselves — both
        // ride the same coordination-free scatter/merge algebra.
        let chunk_rows = batch.len().div_ceil(num_partitions).max(1);
        let ranges: Vec<(usize, usize)> = (0..batch.len())
            .step_by(chunk_rows)
            .map(|start| (start, (start + chunk_rows).min(batch.len())))
            .collect();
        let (batch_ref, labels_ref) = (&batch, &labels);
        let tracing = trace.is_enabled();
        let timer = trace.start();
        let states: Vec<(ExplainState, MetricRegistry)> = scatter(ranges, |(start, end)| {
            let mut state = ExplainState::new();
            for (r, &label) in labels_ref.iter().enumerate().take(end).skip(start) {
                state.observe(batch_ref.row(r), label);
            }
            let mut shard = MetricRegistry::new();
            if tracing {
                shard.add("explain_rows", (end - start) as u64);
                shard.add("explain_tasks", 1);
            }
            (state, shard)
        });
        let explain_batches = states.len();

        // Gather: merge on items, then threshold on the merged counts.
        let mut merged = ExplainState::new();
        for (state, shard) in states {
            merged.merge(state);
            trace.merge_registry(shard);
        }
        let explainer = BatchExplainer::new(analysis.explanation);
        let mut explanations = explainer.explain_state(&merged);
        rank_explanations(&mut explanations);
        let rendered: Vec<RenderedExplanation> = explanations
            .into_iter()
            .map(|e| RenderedExplanation {
                attributes: encoder.describe(&e.items),
                items: e.items,
                stats: e.stats,
            })
            .collect();
        trace.finish_stage(
            timer,
            stage::EXPLAIN,
            points.len(),
            rendered.len(),
            explain_batches,
        );
        rendered
    };
    record_pool_delta(&mut trace, pool_before);

    Ok(MdpReport {
        explanations,
        num_points: points.len(),
        num_outliers,
        score_cutoff: cutoff,
        scores: if analysis.retain_scores {
            scores
        } else {
            Vec::new()
        },
        outlier_rows: if analysis.retain_outlier_rows {
            labels
                .iter()
                .enumerate()
                .filter_map(|(row, &outlier)| outlier.then_some(row))
                .collect()
        } else {
            Vec::new()
        },
        partition_reports: None,
        trace: trace.finish(),
    })
}

/// Union explanations across partition reports, deduplicating by the
/// rendered attribute combination (keep the highest risk ratio observed for
/// each), sorted by risk ratio.
pub(crate) fn merge_rendered_explanations(
    partition_reports: &[MdpReport],
) -> Vec<RenderedExplanation> {
    let mut merged: Vec<RenderedExplanation> = Vec::new();
    let mut by_combination: HashMap<Vec<String>, usize> = HashMap::new();
    for report in partition_reports {
        for e in &report.explanations {
            match by_combination.get(&e.attributes) {
                Some(&idx) => {
                    if e.stats.risk_ratio > merged[idx].stats.risk_ratio {
                        merged[idx].stats = e.stats.clone();
                    }
                }
                None => {
                    by_combination.insert(e.attributes.clone(), merged.len());
                    merged.push(e.clone());
                }
            }
        }
    }
    merged.sort_by(|a, b| {
        b.stats
            .risk_ratio
            .total_cmp(&a.stats.risk_ratio)
    });
    merged
}

/// The naïve shared-nothing engine (Appendix D, Figure 11): run the
/// one-shot engine independently per partition as pool tasks, union the
/// rendered explanations, and preserve the per-partition reports in
/// [`MdpReport::partition_reports`]. The unified report has no global score
/// cutoff (each partition cut its own — they live in the partition reports).
pub(crate) fn execute_naive(
    parts: QueryParts<'_>,
    points: &[Point],
    num_partitions: usize,
) -> Result<MdpReport> {
    if points.is_empty() {
        return Err(PipelineError::EmptyInput);
    }
    let num_partitions = resolve_num_partitions(num_partitions);
    let mut trace = TraceBuilder::new(parts.analysis.obs, "naive");
    trace.set_partitions(num_partitions);
    let pool_before = pool_snapshot(&trace);
    let chunks = partition_chunks(points, num_partitions);

    // Run each partition as its own pool task (shared-nothing: each gets its
    // own classifier and explainer and sees only its chunk). Sub-executions
    // record their own per-partition traces but skip the global pool delta —
    // only this top-level trace snapshots the pool, so task counts are not
    // double-counted.
    let timer = trace.start();
    let results: Vec<Result<(Vec<Classification>, MdpReport)>> =
        scatter(chunks, |chunk| execute_one_shot_impl(parts, chunk, false));

    let mut partition_reports = Vec::with_capacity(results.len());
    for r in results {
        partition_reports.push(r?.1);
    }
    trace.finish_stage(
        timer,
        "execute",
        points.len(),
        points.len(),
        partition_reports.len(),
    );

    let timer = trace.start();
    let merged = merge_rendered_explanations(&partition_reports);
    let num_outliers = partition_reports.iter().map(|r| r.num_outliers).sum();
    let scores: Vec<f64> = if parts.analysis.retain_scores {
        partition_reports
            .iter()
            .flat_map(|r| r.scores.iter().copied())
            .collect()
    } else {
        Vec::new()
    };
    // Partition reports carry partition-local row indices; the unified
    // report rebases them onto global input order (chunks are contiguous
    // and in order, so the offset is the running point count).
    let outlier_rows: Vec<usize> = if parts.analysis.retain_outlier_rows {
        let mut rows = Vec::new();
        let mut offset = 0usize;
        for report in &partition_reports {
            rows.extend(report.outlier_rows.iter().map(|&row| offset + row));
            offset += report.num_points;
        }
        rows
    } else {
        Vec::new()
    };
    trace.finish_stage(
        timer,
        stage::MERGE,
        partition_reports.iter().map(|r| r.explanations.len()).sum(),
        merged.len(),
        partition_reports.len(),
    );
    record_pool_delta(&mut trace, pool_before);

    Ok(MdpReport {
        explanations: merged,
        num_points: points.len(),
        num_outliers,
        score_cutoff: None,
        scores,
        outlier_rows,
        partition_reports: Some(partition_reports),
        trace: trace.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Executor, MdpQuery};
    use mb_classify::rule::Comparison;
    use mb_explain::ExplanationConfig;

    fn workload(n: usize) -> Vec<Point> {
        let mut points: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 9) as f64 * 0.2],
                    vec![format!("device_{}", i % 60)],
                )
            })
            .collect();
        for i in 0..(n / 100) {
            points[i * 100] = Point::new(vec![400.0], vec!["device_bad".to_string()]);
        }
        points
    }

    fn query() -> MdpQuery {
        MdpQuery::builder()
            .explanation(ExplanationConfig::new(0.01, 3.0))
            .attribute_names(vec!["device_id".to_string()])
            .build()
            .unwrap()
    }

    #[test]
    fn classifier_operator_reports_cutoff_and_labels() {
        let points = workload(5_000);
        let mut classifier = MdpClassifier::from_analysis(query().analysis());
        let classifications = classifier.classify(&points).unwrap();
        assert_eq!(classifications.len(), 5_000);
        let cutoff = classifier.cutoff().unwrap();
        for c in &classifications {
            assert_eq!(c.label.is_outlier(), c.score >= cutoff);
        }
    }

    #[test]
    fn explainer_operator_renders_the_planted_device() {
        let points = workload(5_000);
        let mut classifier = MdpClassifier::from_analysis(query().analysis());
        let classifications = classifier.classify(&points).unwrap();
        let mut explainer = MdpExplainer::from_analysis(query().analysis());
        explainer.consume(&points, &classifications);
        let explanations = explainer.explanations();
        assert!(explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }

    #[test]
    fn hybrid_rule_is_ored_on_every_batch_backend() {
        // 10 rule-only anomalies (value 150) are too few for the percentile
        // classifier; the rule must flag them on every backend.
        let mut points = workload(5_000);
        for i in 0..10 {
            points[i * 37 + 1] = Point::new(vec![150.0], vec!["device_rule".to_string()]);
        }
        let build = || {
            MdpQuery::builder()
                .explanation(ExplanationConfig::new(0.0005, 3.0))
                .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 100.0))
                .build()
                .unwrap()
        };
        let reference = run(build(), &Executor::OneShot, &points).num_outliers;
        for executor in [
            Executor::Coordinated { partitions: 4 },
            Executor::NaivePartitioned { partitions: 4 },
        ] {
            let report = run(build(), &executor, &points);
            assert!(
                report.num_outliers >= 10,
                "{} dropped rule matches",
                executor.name()
            );
            if matches!(executor, Executor::Coordinated { .. }) {
                assert_eq!(report.num_outliers, reference);
            }
        }
    }

    #[test]
    fn naive_report_preserves_partition_detail() {
        let points = workload(8_000);
        let mut q = query();
        let report = q
            .execute(&Executor::NaivePartitioned { partitions: 4 }, &points)
            .unwrap();
        let partitions = report.partition_reports.as_ref().unwrap();
        assert_eq!(partitions.len(), 4);
        assert_eq!(
            partitions.iter().map(|r| r.num_points).sum::<usize>(),
            8_000
        );
        assert_eq!(
            partitions.iter().map(|r| r.num_outliers).sum::<usize>(),
            report.num_outliers
        );
        assert!(report.score_cutoff.is_none());
        assert!(partitions.iter().all(|r| r.score_cutoff.is_some()));
    }

    #[test]
    fn coordinated_matches_one_shot_through_the_new_engines() {
        let points = workload(10_000);
        let reference = run(query(), &Executor::OneShot, &points);
        for partitions in [1, 2, 4, 8] {
            let report = run(query(), &Executor::Coordinated { partitions }, &points);
            assert_eq!(report.num_outliers, reference.num_outliers);
            assert_eq!(report.score_cutoff, reference.score_cutoff);
            assert_eq!(report.explanations.len(), reference.explanations.len());
        }
    }

    fn run(mut query: MdpQuery, executor: &Executor, points: &[Point]) -> MdpReport {
        query.execute(executor, points).unwrap()
    }

    fn traced_query() -> MdpQuery {
        MdpQuery::builder()
            .explanation(ExplanationConfig::new(0.01, 3.0))
            .attribute_names(vec!["device_id".to_string()])
            .traced()
            .build()
            .unwrap()
    }

    #[test]
    fn pretrained_model_reproduces_one_shot_byte_for_byte() {
        let points = workload(5_000);
        let reference = run(query(), &Executor::OneShot, &points);
        let q = query();
        let model = q.train(&points).unwrap();
        let report = q.execute_with_model(&model, &points).unwrap();
        assert_eq!(report, reference);
        assert_eq!(
            crate::wire::report_to_string(&report),
            crate::wire::report_to_string(&reference)
        );
        assert_eq!(model.cutoff(), reference.score_cutoff);
        assert_eq!(model.dim(), 1);
    }

    #[test]
    fn pretrained_model_honors_hybrid_rules_and_rule_only_queries() {
        let mut points = workload(5_000);
        for i in 0..10 {
            points[i * 37 + 1] = Point::new(vec![150.0], vec!["device_rule".to_string()]);
        }
        let hybrid = || {
            MdpQuery::builder()
                .explanation(ExplanationConfig::new(0.0005, 3.0))
                .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 100.0))
                .build()
                .unwrap()
        };
        let reference = run(hybrid(), &Executor::OneShot, &points);
        let q = hybrid();
        let model = q.train(&points).unwrap();
        assert_eq!(q.execute_with_model(&model, &points).unwrap(), reference);

        let rule_only = || {
            MdpQuery::builder()
                .without_unsupervised()
                .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 100.0))
                .build()
                .unwrap()
        };
        let reference = run(rule_only(), &Executor::OneShot, &points);
        let q = rule_only();
        let model = q.train(&points).unwrap();
        assert!(!model.is_unsupervised());
        assert_eq!(model.cutoff(), None);
        assert_eq!(q.execute_with_model(&model, &points).unwrap(), reference);
    }

    #[test]
    fn pretrained_model_rejects_mismatched_batches() {
        let points = workload(2_000);
        let q = query();
        let model = q.train(&points).unwrap();
        let wide: Vec<Point> = (0..100)
            .map(|i| Point::new(vec![i as f64, 1.0], vec!["a".to_string()]))
            .collect();
        assert!(matches!(
            q.execute_with_model(&model, &wide),
            Err(PipelineError::InconsistentDimensions {
                expected: 1,
                actual: 2
            })
        ));
        let rule_only = MdpQuery::builder()
            .without_unsupervised()
            .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 100.0))
            .build()
            .unwrap();
        assert!(matches!(
            rule_only.execute_with_model(&model, &points),
            Err(PipelineError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn untraced_reports_carry_no_trace() {
        let points = workload(4_000);
        for executor in [
            Executor::OneShot,
            Executor::Coordinated { partitions: 2 },
            Executor::NaivePartitioned { partitions: 2 },
            Executor::streaming(),
        ] {
            let report = run(query(), &executor, &points);
            assert!(report.trace.is_none(), "{} traced by default", executor.name());
        }
    }

    #[test]
    fn tracing_populates_every_backend_and_changes_nothing_else() {
        let points = workload(4_000);
        for executor in [
            Executor::OneShot,
            Executor::Coordinated { partitions: 2 },
            Executor::NaivePartitioned { partitions: 2 },
            Executor::streaming(),
        ] {
            let untraced = run(query(), &executor, &points);
            let mut traced = run(traced_query(), &executor, &points);
            let trace = traced.trace.take().expect("trace populated");
            assert!(!trace.stages.is_empty(), "{} recorded no stages", executor.name());
            // Stripped of telemetry, the traced report is the untraced one.
            if let Some(partitions) = traced.partition_reports.as_mut() {
                for p in partitions {
                    assert!(p.trace.is_some(), "naive partition lost its trace");
                    p.trace = None;
                }
            }
            assert_eq!(traced, untraced, "{} result drifted under tracing", executor.name());
        }
    }

    #[test]
    fn coordinated_trace_counters_are_partition_invariant() {
        // The scatter shards' merged row counters must equal the input size
        // at every fan-out — the partition-count analogue of the pool's
        // thread-count sum-equality test.
        let points = workload(6_000);
        for partitions in [1, 2, 4] {
            let report = run(
                traced_query(),
                &Executor::Coordinated { partitions },
                &points,
            );
            let trace = report.trace.expect("trace populated");
            assert_eq!(trace.executor, "coordinated");
            assert_eq!(trace.partitions, partitions as u64);
            assert_eq!(trace.counter("score_rows"), 6_000);
            assert_eq!(trace.counter("explain_rows"), 6_000);
            assert_eq!(trace.counter("score_tasks"), trace.stage("score").unwrap().batches);
            assert!(trace.gauge("pool_workers").is_some());
            for name in ["train", "score", "encode", "explain"] {
                assert!(trace.stage(name).is_some(), "missing stage {name}");
            }
        }
    }

    #[test]
    fn one_shot_trace_records_the_pipeline_stages() {
        let points = workload(4_000);
        let report = run(traced_query(), &Executor::OneShot, &points);
        let trace = report.trace.expect("trace populated");
        assert_eq!(trace.executor, "one-shot");
        for name in ["flatten", "train", "score", "encode", "explain"] {
            assert!(trace.stage(name).is_some(), "missing stage {name}");
        }
        let score = trace.stage("score").unwrap();
        assert_eq!(score.rows_in, 4_000);
        assert_eq!(score.rows_out as usize, report.num_outliers);
    }

    #[test]
    fn streaming_trace_reports_staleness_and_tick_costs() {
        let points = workload(30_000);
        let report = run(traced_query(), &Executor::streaming(), &points);
        let trace = report.trace.expect("trace populated");
        assert_eq!(trace.executor, "streaming");
        assert_eq!(trace.counter("points"), 30_000);
        let score = trace.stage("score").unwrap();
        assert_eq!(score.rows_in, 30_000);
        assert!(score.wall_ns > 0);
        // Warm-up plus periodic retrains all land in the histogram.
        let retrains = trace.histogram("retrain_ns").expect("retrain histogram");
        assert!(retrains.count >= 1);
        assert!(trace.gauge("model_staleness").is_some());
    }
}
