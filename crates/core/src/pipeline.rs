//! Custom pipeline construction (Section 3.2's extensibility story and the
//! Section 6.4 case studies).
//!
//! Superseded by [`MdpQuery::builder`](crate::query::MdpQuery::builder),
//! which carries the same transformer chain, hybrid supervision, and
//! rule-only options but executes on *any*
//! [`Executor`](crate::query::Executor) backend. The deprecated [`Pipeline`]
//! here delegates to the same shared engine, which also fixes a historic
//! inconsistency: `Pipeline::run` used to hard-code `score_cutoff: None,
//! scores: []` in its report, so the same configuration answered differently
//! through `Pipeline` than through `MdpOneShot`. Both now return the
//! identical unified report.

use crate::executor::execute_one_shot;
use crate::operator::Transformer;
use crate::query::{AnalysisConfig, MdpQuery};
use crate::types::{LabeledPoint, MdpReport, Point};
use crate::Result;
use mb_classify::rule::RuleClassifier;

/// Builder for [`Pipeline`] (superseded by
/// [`MdpQueryBuilder`](crate::query::MdpQueryBuilder)).
#[deprecated(since = "0.5.0", note = "use MdpQuery::builder")]
#[derive(Default)]
pub struct PipelineBuilder {
    transformers: Vec<Box<dyn Transformer>>,
    config: AnalysisConfig,
    rule: Option<RuleClassifier>,
    unsupervised_enabled: bool,
}

#[allow(deprecated)]
impl PipelineBuilder {
    /// Start building a pipeline with default MDP parameters and the
    /// unsupervised classifier enabled.
    pub fn new() -> Self {
        PipelineBuilder {
            transformers: Vec::new(),
            config: AnalysisConfig::default(),
            rule: None,
            unsupervised_enabled: true,
        }
    }

    /// Append a feature transformation stage (applied in insertion order).
    pub fn transform(mut self, transformer: Box<dyn Transformer>) -> Self {
        self.transformers.push(transformer);
        self
    }

    /// Replace the MDP configuration (percentile, explanation thresholds,
    /// estimator, attribute names).
    pub fn mdp_config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// Add a supervised rule classifier whose outlier labels are OR-ed with
    /// the unsupervised classifier's (the hybrid supervision pattern).
    pub fn supervised_rule(mut self, rule: RuleClassifier) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Disable the unsupervised classifier entirely (rule-only pipelines).
    pub fn without_unsupervised(mut self) -> Self {
        self.unsupervised_enabled = false;
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<Pipeline> {
        let mut builder = MdpQuery::builder().analysis(self.config);
        for t in self.transformers {
            builder = builder.transform(t);
        }
        if let Some(rule) = self.rule {
            builder = builder.supervised_rule(rule);
        }
        if !self.unsupervised_enabled {
            builder = builder.without_unsupervised();
        }
        Ok(Pipeline {
            query: builder.build()?,
        })
    }
}

/// A configured pipeline ready to execute over batches of points
/// (superseded by [`MdpQuery`]).
#[deprecated(
    since = "0.5.0",
    note = "use MdpQuery::execute with Executor::OneShot"
)]
pub struct Pipeline {
    query: MdpQuery,
}

#[allow(deprecated)]
impl Pipeline {
    /// Start building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// Execute the pipeline over a batch of points, returning the labeled
    /// points and the ranked explanation report.
    pub fn run(&mut self, points: Vec<Point>) -> Result<(Vec<LabeledPoint>, MdpReport)> {
        let mut transformed = points;
        for t in self.query.transformers.iter_mut() {
            transformed = t.transform(transformed);
        }
        let (classifications, report) = execute_one_shot(self.query.parts(), &transformed)?;
        let labeled = transformed
            .into_iter()
            .zip(classifications)
            .map(|(point, c)| LabeledPoint {
                point,
                score: c.score,
                label: c.label,
            })
            .collect();
        Ok((labeled, report))
    }
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MapTransformer;
    use crate::PipelineError;
    use mb_classify::rule::Comparison;
    use mb_explain::ExplanationConfig;

    fn background_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 7) as f64 * 0.3],
                    vec![format!("device_{}", i % 40)],
                )
            })
            .collect()
    }

    #[test]
    fn builder_rejects_classifierless_pipeline() {
        let result = Pipeline::builder().without_unsupervised().build();
        assert!(matches!(result, Err(PipelineError::MissingClassifier)));
    }

    #[test]
    fn default_pipeline_flags_extremes() {
        let mut points = background_points(10_000);
        for i in 0..100 {
            points[i * 100] = Point::new(vec![500.0], vec!["device_bad".to_string()]);
        }
        let mut pipeline = Pipeline::builder()
            .mdp_config(AnalysisConfig {
                explanation: ExplanationConfig::new(0.01, 3.0),
                attribute_names: vec!["device_id".to_string()],
                ..AnalysisConfig::default()
            })
            .build()
            .unwrap();
        let (labeled, report) = pipeline.run(points).unwrap();
        assert_eq!(labeled.len(), 10_000);
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }

    #[test]
    fn transformer_runs_before_classification() {
        // A transform that squares the metric turns modest values (30) into
        // extremes (900) relative to the background (~100): if the transform
        // runs, device_hot must be explained.
        let mut points = background_points(5_000);
        for i in 0..50 {
            points[i * 100] = Point::new(vec![30.0], vec!["device_hot".to_string()]);
        }
        let mut pipeline = Pipeline::builder()
            .transform(Box::new(MapTransformer::new(|mut p: Point| {
                p.metrics[0] = p.metrics[0] * p.metrics[0];
                p
            })))
            .mdp_config(AnalysisConfig {
                explanation: ExplanationConfig::new(0.01, 3.0),
                ..AnalysisConfig::default()
            })
            .build()
            .unwrap();
        let (_, report) = pipeline.run(points).unwrap();
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_hot"))));
    }

    #[test]
    fn hybrid_supervision_ors_rule_with_unsupervised() {
        // The rule flags metric > 100 even though such points are too few for
        // the percentile classifier to catch reliably; the hybrid pipeline
        // must flag both the statistical extremes and the rule matches.
        let mut points = background_points(5_000);
        // 10 rule-only anomalies (value 150, device_rule).
        for i in 0..10 {
            points[i * 37] = Point::new(vec![150.0], vec!["device_rule".to_string()]);
        }
        let mut pipeline = Pipeline::builder()
            .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 100.0))
            .mdp_config(AnalysisConfig {
                explanation: ExplanationConfig::new(0.0005, 3.0),
                ..AnalysisConfig::default()
            })
            .build()
            .unwrap();
        let (labeled, report) = pipeline.run(points).unwrap();
        // Every rule match is an outlier regardless of the percentile cutoff.
        for lp in &labeled {
            if lp.point.metrics[0] > 100.0 {
                assert!(lp.label.is_outlier());
            }
        }
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_rule"))));
    }

    #[test]
    fn rule_only_pipeline_works() {
        let mut points = background_points(1_000);
        points[0] = Point::new(vec![1_000.0], vec!["device_x".to_string()]);
        let mut pipeline = Pipeline::builder()
            .without_unsupervised()
            .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 500.0))
            .build()
            .unwrap();
        let (labeled, _) = pipeline.run(points).unwrap();
        assert_eq!(labeled.iter().filter(|p| p.label.is_outlier()).count(), 1);
    }

    #[test]
    fn empty_after_transform_is_an_error() {
        let mut pipeline = Pipeline::builder()
            .transform(Box::new(crate::operator::BatchTransformer::new(
                |_points: Vec<Point>| Vec::new(),
            )))
            .build()
            .unwrap();
        assert!(matches!(
            pipeline.run(background_points(10)),
            Err(PipelineError::EmptyInput)
        ));
    }

    #[test]
    fn pipeline_report_is_identical_to_one_shot() {
        // Regression: Pipeline::run used to hard-code score_cutoff: None and
        // scores: [] — the same configuration must now answer identically
        // through every batch entry point.
        #[allow(deprecated)]
        use crate::oneshot::MdpOneShot;
        let mut points = background_points(10_000);
        for i in 0..100 {
            points[i * 100] = Point::new(vec![500.0], vec!["device_bad".to_string()]);
        }
        let config = AnalysisConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            retain_scores: true,
            ..AnalysisConfig::default()
        };
        let one_shot = MdpOneShot::new(config.clone()).run(&points).unwrap();
        let mut pipeline = Pipeline::builder().mdp_config(config).build().unwrap();
        let (_, pipeline_report) = pipeline.run(points).unwrap();
        assert_eq!(pipeline_report.num_outliers, one_shot.num_outliers);
        assert_eq!(pipeline_report.score_cutoff, one_shot.score_cutoff);
        assert_eq!(pipeline_report.scores, one_shot.scores);
        assert_eq!(pipeline_report.explanations, one_shot.explanations);
    }
}
