//! Custom pipeline construction (Section 3.2's extensibility story and the
//! Section 6.4 case studies).
//!
//! A [`Pipeline`] is: zero or more domain-specific [`Transformer`]s, an
//! unsupervised MDP classifier and/or a supervised rule classifier (combined
//! with logical OR, as in the hybrid supervision case study), followed by the
//! outlier-aware risk-ratio explainer. The builder enforces the Table 1
//! stage order at compile time simply by only exposing the legal next steps.

use crate::oneshot::{EstimatorKind, MdpConfig};
use crate::operator::Transformer;
use crate::types::{LabeledPoint, MdpReport, Point, RenderedExplanation};
use crate::{PipelineError, Result};
use mb_classify::batch::{BatchClassifier, BatchClassifierConfig};
use mb_classify::rule::{label_or, RuleClassifier};
use mb_classify::Label;
use mb_explain::batch::BatchExplainer;
use mb_explain::encoder::AttributeEncoder;
use mb_explain::risk_ratio::rank_explanations;
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::zscore::ZScoreEstimator;

/// Builder for [`Pipeline`].
#[derive(Default)]
pub struct PipelineBuilder {
    transformers: Vec<Box<dyn Transformer>>,
    config: MdpConfig,
    rule: Option<RuleClassifier>,
    unsupervised_enabled: bool,
}

impl PipelineBuilder {
    /// Start building a pipeline with default MDP parameters and the
    /// unsupervised classifier enabled.
    pub fn new() -> Self {
        PipelineBuilder {
            transformers: Vec::new(),
            config: MdpConfig::default(),
            rule: None,
            unsupervised_enabled: true,
        }
    }

    /// Append a feature transformation stage (applied in insertion order).
    pub fn transform(mut self, transformer: Box<dyn Transformer>) -> Self {
        self.transformers.push(transformer);
        self
    }

    /// Replace the MDP configuration (percentile, explanation thresholds,
    /// estimator, attribute names).
    pub fn mdp_config(mut self, config: MdpConfig) -> Self {
        self.config = config;
        self
    }

    /// Add a supervised rule classifier whose outlier labels are OR-ed with
    /// the unsupervised classifier's (the hybrid supervision pattern).
    pub fn supervised_rule(mut self, rule: RuleClassifier) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Disable the unsupervised classifier entirely (rule-only pipelines).
    pub fn without_unsupervised(mut self) -> Self {
        self.unsupervised_enabled = false;
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<Pipeline> {
        if !self.unsupervised_enabled && self.rule.is_none() {
            return Err(PipelineError::InvalidConfiguration(
                "pipeline needs at least one classifier (unsupervised or rule)".to_string(),
            ));
        }
        Ok(Pipeline {
            transformers: self.transformers,
            config: self.config,
            rule: self.rule,
            unsupervised_enabled: self.unsupervised_enabled,
        })
    }
}

/// A configured pipeline ready to execute over batches of points.
pub struct Pipeline {
    transformers: Vec<Box<dyn Transformer>>,
    config: MdpConfig,
    rule: Option<RuleClassifier>,
    unsupervised_enabled: bool,
}

impl Pipeline {
    /// Start building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    fn unsupervised_classify(
        &self,
        metrics: &[Vec<f64>],
    ) -> Result<Vec<mb_classify::Classification>> {
        let dim = metrics.first().map(|m| m.len()).unwrap_or(0);
        let batch_config = BatchClassifierConfig {
            target_percentile: self.config.target_percentile,
            training_sample_size: self.config.training_sample_size,
        };
        let classifications = match self.config.estimator {
            EstimatorKind::Mad => {
                BatchClassifier::new(MadEstimator::new(), batch_config).classify_batch(metrics)?
            }
            EstimatorKind::ZScore => BatchClassifier::new(ZScoreEstimator::new(), batch_config)
                .classify_batch(metrics)?,
            EstimatorKind::Mcd => BatchClassifier::new(McdEstimator::with_defaults(), batch_config)
                .classify_batch(metrics)?,
            EstimatorKind::Auto => {
                if dim == 1 {
                    BatchClassifier::new(MadEstimator::new(), batch_config)
                        .classify_batch(metrics)?
                } else {
                    BatchClassifier::new(McdEstimator::with_defaults(), batch_config)
                        .classify_batch(metrics)?
                }
            }
        };
        Ok(classifications)
    }

    /// Execute the pipeline over a batch of points, returning the labeled
    /// points and the ranked explanation report.
    pub fn run(&mut self, points: Vec<Point>) -> Result<(Vec<LabeledPoint>, MdpReport)> {
        // Stage 2: feature transformation.
        let mut transformed = points;
        for t in self.transformers.iter_mut() {
            transformed = t.transform(transformed);
        }
        if transformed.is_empty() {
            return Err(PipelineError::EmptyInput);
        }
        let dim = transformed[0].dimension();
        for p in &transformed {
            if p.dimension() != dim {
                return Err(PipelineError::InconsistentDimensions {
                    expected: dim,
                    actual: p.dimension(),
                });
            }
        }

        // Stage 3: classification (unsupervised, rule-based, or both OR-ed).
        let metrics: Vec<Vec<f64>> = transformed.iter().map(|p| p.metrics.clone()).collect();
        let unsupervised = if self.unsupervised_enabled {
            Some(self.unsupervised_classify(&metrics)?)
        } else {
            None
        };
        let labeled: Vec<LabeledPoint> = transformed
            .into_iter()
            .enumerate()
            .map(|(idx, point)| {
                let (mut label, score) = match &unsupervised {
                    Some(c) => (c[idx].label, c[idx].score),
                    None => (Label::Inlier, 0.0),
                };
                if let Some(rule) = &self.rule {
                    label = label_or(label, rule.classify(&point.metrics));
                }
                LabeledPoint {
                    point,
                    score,
                    label,
                }
            })
            .collect();

        // Stage 4: explanation.
        let num_outliers = labeled.iter().filter(|p| p.label.is_outlier()).count();
        let explanations = if self.config.skip_explanation {
            Vec::new()
        } else {
            let mut encoder = if self.config.attribute_names.is_empty() {
                AttributeEncoder::new()
            } else {
                AttributeEncoder::with_column_names(self.config.attribute_names.clone())
            };
            let mut outlier_txns = Vec::new();
            let mut inlier_txns = Vec::new();
            for lp in &labeled {
                let items = encoder.encode_point(&lp.point.attributes);
                if lp.label.is_outlier() {
                    outlier_txns.push(items);
                } else {
                    inlier_txns.push(items);
                }
            }
            let explainer = BatchExplainer::new(self.config.explanation);
            let mut explanations = explainer.explain(&outlier_txns, &inlier_txns);
            rank_explanations(&mut explanations);
            explanations
                .into_iter()
                .map(|e| RenderedExplanation {
                    attributes: encoder.describe(&e.items),
                    items: e.items,
                    stats: e.stats,
                })
                .collect()
        };

        let report = MdpReport {
            explanations,
            num_points: labeled.len(),
            num_outliers,
            score_cutoff: None,
            scores: Vec::new(),
        };
        Ok((labeled, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MapTransformer;
    use mb_classify::rule::Comparison;
    use mb_explain::ExplanationConfig;

    fn background_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 7) as f64 * 0.3],
                    vec![format!("device_{}", i % 40)],
                )
            })
            .collect()
    }

    #[test]
    fn builder_rejects_classifierless_pipeline() {
        let result = Pipeline::builder().without_unsupervised().build();
        assert!(matches!(
            result,
            Err(PipelineError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn default_pipeline_flags_extremes() {
        let mut points = background_points(10_000);
        for i in 0..100 {
            points[i * 100] = Point::new(vec![500.0], vec!["device_bad".to_string()]);
        }
        let mut pipeline = Pipeline::builder()
            .mdp_config(MdpConfig {
                explanation: ExplanationConfig::new(0.01, 3.0),
                attribute_names: vec!["device_id".to_string()],
                ..MdpConfig::default()
            })
            .build()
            .unwrap();
        let (labeled, report) = pipeline.run(points).unwrap();
        assert_eq!(labeled.len(), 10_000);
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }

    #[test]
    fn transformer_runs_before_classification() {
        // A transform that squares the metric turns modest values (30) into
        // extremes (900) relative to the background (~100): if the transform
        // runs, device_hot must be explained.
        let mut points = background_points(5_000);
        for i in 0..50 {
            points[i * 100] = Point::new(vec![30.0], vec!["device_hot".to_string()]);
        }
        let mut pipeline = Pipeline::builder()
            .transform(Box::new(MapTransformer::new(|mut p: Point| {
                p.metrics[0] = p.metrics[0] * p.metrics[0];
                p
            })))
            .mdp_config(MdpConfig {
                explanation: ExplanationConfig::new(0.01, 3.0),
                ..MdpConfig::default()
            })
            .build()
            .unwrap();
        let (_, report) = pipeline.run(points).unwrap();
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_hot"))));
    }

    #[test]
    fn hybrid_supervision_ors_rule_with_unsupervised() {
        // The rule flags metric > 100 even though such points are too few for
        // the percentile classifier to catch reliably; the hybrid pipeline
        // must flag both the statistical extremes and the rule matches.
        let mut points = background_points(5_000);
        // 10 rule-only anomalies (value 150, device_rule).
        for i in 0..10 {
            points[i * 37] = Point::new(vec![150.0], vec!["device_rule".to_string()]);
        }
        let mut pipeline = Pipeline::builder()
            .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 100.0))
            .mdp_config(MdpConfig {
                explanation: ExplanationConfig::new(0.0005, 3.0),
                ..MdpConfig::default()
            })
            .build()
            .unwrap();
        let (labeled, report) = pipeline.run(points).unwrap();
        // Every rule match is an outlier regardless of the percentile cutoff.
        for lp in &labeled {
            if lp.point.metrics[0] > 100.0 {
                assert!(lp.label.is_outlier());
            }
        }
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_rule"))));
    }

    #[test]
    fn rule_only_pipeline_works() {
        let mut points = background_points(1_000);
        points[0] = Point::new(vec![1_000.0], vec!["device_x".to_string()]);
        let mut pipeline = Pipeline::builder()
            .without_unsupervised()
            .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 500.0))
            .build()
            .unwrap();
        let (labeled, _) = pipeline.run(points).unwrap();
        assert_eq!(labeled.iter().filter(|p| p.label.is_outlier()).count(), 1);
    }

    #[test]
    fn empty_after_transform_is_an_error() {
        let mut pipeline = Pipeline::builder()
            .transform(Box::new(crate::operator::BatchTransformer::new(
                |_points: Vec<Point>| Vec::new(),
            )))
            .build()
            .unwrap();
        assert!(matches!(
            pipeline.run(background_points(10)),
            Err(PipelineError::EmptyInput)
        ));
    }
}
