//! Coordinated partitioned execution: the mergeable-state answer to the
//! naïve shared-nothing scale-out of Appendix D.
//!
//! [`run_partitioned`] trades accuracy for cores: every partition trains its
//! own model, cuts its own threshold, prunes by its own local support, and
//! the partitions' *rendered* explanations are unioned after the fact — so
//! accuracy degrades as partitions shrink (the Figure 11 trade-off). In the
//! spirit of coordination-avoiding execution, [`run_coordinated`] keeps the
//! communication-free partition loop but reconciles through mergeable state
//! instead of rendered strings:
//!
//! 1. **One model** — the robust estimator is fitted once on the global
//!    batch (honoring the configured training-sample cap) and broadcast to
//!    partitions by reference; partitions score in parallel against it.
//! 2. **One threshold** — the percentile cutoff is computed over the merged
//!    score vector, not per partition.
//! 3. **Merged explanation state** — each partition builds a pre-render
//!    [`ExplainState`] (encoded itemset counts + class totals); states merge
//!    on items ([`Mergeable`]) and support/risk-ratio thresholds apply to
//!    the *merged* counts.
//!
//! The result is the one-shot report — same explanation set, same counts up
//! to floating-point summation order — for any partition count, while the
//! scoring and counting passes (the bulk of the work) still scale with
//! cores.
//!
//! [`run_partitioned`]: crate::parallel::run_partitioned

use crate::oneshot::{EstimatorKind, MdpConfig, MdpOneShot};
use crate::parallel::{partition_chunks, scatter};
use crate::types::{MdpReport, Point, RenderedExplanation};
use crate::Result;
use mb_classify::batch::{BatchClassifier, BatchClassifierConfig};
use mb_classify::threshold::StaticThreshold;
use mb_explain::batch::BatchExplainer;
use mb_explain::encoder::{encode_rows_parallel, AttributeEncoder};
use mb_explain::partition::ExplainState;
use mb_explain::risk_ratio::rank_explanations;
use mb_explain::Mergeable;
use mb_fpgrowth::Item;
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::zscore::ZScoreEstimator;
use mb_stats::Estimator;

/// Execute `config` over `points` split into `num_partitions` partitions
/// with a shared trained model, a global score threshold, and merged
/// explanation state. Produces exactly the report [`MdpOneShot::run`] would,
/// for any partition count. Pass `0` for `num_partitions` to use one
/// partition per available core
/// ([`crate::parallel::default_num_partitions`]).
pub fn run_coordinated(
    points: &[Point],
    num_partitions: usize,
    config: &MdpConfig,
) -> Result<MdpReport> {
    let num_partitions = crate::parallel::resolve_num_partitions(num_partitions);
    let dim = MdpOneShot::check_dimensions(points)?;
    match config.estimator.resolve(dim) {
        EstimatorKind::Mad => run_with(MadEstimator::new(), points, num_partitions, config),
        EstimatorKind::ZScore => run_with(ZScoreEstimator::new(), points, num_partitions, config),
        EstimatorKind::Mcd => {
            run_with(McdEstimator::with_defaults(), points, num_partitions, config)
        }
        EstimatorKind::Auto => unreachable!("resolve() eliminates Auto"),
    }
}

fn run_with<E: Estimator + Sync>(
    estimator: E,
    points: &[Point],
    num_partitions: usize,
    config: &MdpConfig,
) -> Result<MdpReport> {
    let metrics: Vec<Vec<f64>> = points.iter().map(|p| p.metrics.clone()).collect();

    // Train once on the global batch (or its configured sample) and
    // broadcast the fitted model to partitions by shared reference.
    let mut classifier = BatchClassifier::new(
        estimator,
        BatchClassifierConfig {
            target_percentile: config.target_percentile,
            training_sample_size: config.training_sample_size,
        },
    );
    classifier.fit(&metrics)?;

    // Scatter: partitions score communication-free against the shared model.
    let classifier_ref = &classifier;
    let score_chunks: Vec<mb_stats::Result<Vec<f64>>> =
        scatter(partition_chunks(&metrics, num_partitions), |chunk| {
            chunk.iter().map(|row| classifier_ref.score_point(row)).collect()
        });
    let mut scores: Vec<f64> = Vec::with_capacity(points.len());
    for chunk in score_chunks {
        scores.extend(chunk?);
    }

    // Gather: one percentile threshold over the merged score vector.
    let threshold = StaticThreshold::from_scores(&scores, config.target_percentile)
        .map_err(crate::PipelineError::from)?;
    let cutoff = threshold.cutoff();
    let num_outliers = scores.iter().filter(|&&s| s >= cutoff).count();

    let explanations = if config.skip_explanation {
        Vec::new()
    } else {
        // Encode attributes through one shared dictionary so item ids agree
        // across partitions (the naïve mode's per-partition encoders are why
        // it can only union rendered strings). The encode pass itself shards
        // across the pool; the first-occurrence-ordered dictionary merge
        // keeps the assigned ids identical to a serial pass, so this does
        // not perturb the one-shot-equivalence guarantee.
        let mut encoder = if config.attribute_names.is_empty() {
            AttributeEncoder::new()
        } else {
            AttributeEncoder::with_column_names(config.attribute_names.clone())
        };
        let attribute_rows: Vec<&[String]> =
            points.iter().map(|p| p.attributes.as_slice()).collect();
        let transactions: Vec<Vec<Item>> = encode_rows_parallel(
            &mut encoder,
            mb_pool::global(),
            &attribute_rows,
            num_partitions,
        );

        // Scatter: per-partition pre-render explanation state.
        let txn_chunks = partition_chunks(&transactions, num_partitions);
        let label_chunks = partition_chunks(&scores, num_partitions);
        let work: Vec<(&[Vec<Item>], &[f64])> =
            txn_chunks.into_iter().zip(label_chunks).collect();
        let states: Vec<ExplainState> = scatter(work, |(txns, chunk_scores)| {
            let mut state = ExplainState::new();
            for (items, score) in txns.iter().zip(chunk_scores.iter()) {
                state.observe(items, *score >= cutoff);
            }
            state
        });

        // Gather: merge on items, then threshold on the merged counts.
        let mut merged = ExplainState::new();
        for state in states {
            merged.merge(state);
        }
        let explainer = BatchExplainer::new(config.explanation);
        let mut explanations = explainer.explain_state(&merged);
        rank_explanations(&mut explanations);
        explanations
            .into_iter()
            .map(|e| RenderedExplanation {
                attributes: encoder.describe(&e.items),
                items: e.items,
                stats: e.stats,
            })
            .collect()
    };

    Ok(MdpReport {
        explanations,
        num_points: points.len(),
        num_outliers,
        score_cutoff: Some(cutoff),
        scores: if config.retain_scores {
            scores
        } else {
            Vec::new()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_explain::ExplanationConfig;

    fn workload(n: usize) -> Vec<Point> {
        let mut points: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 9) as f64 * 0.2],
                    vec![format!("device_{}", i % 60)],
                )
            })
            .collect();
        for i in 0..(n / 100) {
            points[i * 100] = Point::new(vec![400.0], vec!["device_bad".to_string()]);
        }
        points
    }

    fn config() -> MdpConfig {
        MdpConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            ..MdpConfig::default()
        }
    }

    fn attribute_sets(report: &MdpReport) -> Vec<Vec<String>> {
        let mut sets: Vec<Vec<String>> = report
            .explanations
            .iter()
            .map(|e| {
                let mut attrs = e.attributes.clone();
                attrs.sort();
                attrs
            })
            .collect();
        sets.sort();
        sets
    }

    #[test]
    fn coordinated_reproduces_one_shot_for_any_partition_count() {
        let points = workload(20_000);
        let one_shot = MdpOneShot::new(config()).run(&points).unwrap();
        for num_partitions in [1, 2, 3, 4, 8] {
            let coordinated = run_coordinated(&points, num_partitions, &config()).unwrap();
            assert_eq!(coordinated.num_outliers, one_shot.num_outliers);
            assert_eq!(coordinated.score_cutoff, one_shot.score_cutoff);
            assert_eq!(
                attribute_sets(&coordinated),
                attribute_sets(&one_shot),
                "explanation sets diverged at {num_partitions} partitions"
            );
        }
    }

    #[test]
    fn coordinated_respects_skip_explanation_and_retain_scores() {
        let points = workload(5_000);
        let report = run_coordinated(
            &points,
            4,
            &MdpConfig {
                skip_explanation: true,
                retain_scores: true,
                ..config()
            },
        )
        .unwrap();
        assert!(report.explanations.is_empty());
        assert_eq!(report.scores.len(), 5_000);
        assert!(report.num_outliers > 0);
    }

    #[test]
    fn coordinated_rejects_empty_input() {
        assert!(run_coordinated(&[], 4, &config()).is_err());
    }

    #[test]
    fn zero_partitions_matches_explicit_partition_count() {
        // 0 = "one partition per core"; coordinated results are partition-
        // count-invariant, so auto must equal the single-partition report.
        let points = workload(5_000);
        let auto = run_coordinated(&points, 0, &config()).unwrap();
        let explicit = run_coordinated(&points, 1, &config()).unwrap();
        assert_eq!(auto.num_outliers, explicit.num_outliers);
        assert_eq!(auto.score_cutoff, explicit.score_cutoff);
        assert_eq!(attribute_sets(&auto), attribute_sets(&explicit));
    }

    #[test]
    fn more_partitions_than_points_still_works() {
        let points = workload(500);
        let report = run_coordinated(&points, 8, &config()).unwrap();
        assert_eq!(report.num_points, 500);
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }
}
