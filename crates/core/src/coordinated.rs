//! Coordinated partitioned execution: the mergeable-state answer to the
//! naïve shared-nothing scale-out of Appendix D.
//!
//! [`Executor::NaivePartitioned`](crate::query::Executor) trades accuracy
//! for cores: every partition trains its own model, cuts its own threshold,
//! prunes by its own local support, and the partitions' *rendered*
//! explanations are unioned after the fact — so accuracy degrades as
//! partitions shrink (the Figure 11 trade-off). In the spirit of
//! coordination-avoiding execution,
//! [`Executor::Coordinated`](crate::query::Executor) keeps the
//! communication-free partition loop but reconciles through mergeable state
//! instead of rendered strings:
//!
//! 1. **One model** — the robust estimator is fitted once on the global
//!    batch (honoring the configured training-sample cap) and broadcast to
//!    partitions by reference; partitions score in parallel against it.
//!    The single fit is itself no longer serial: FastMCD scatters its
//!    training restarts as pool tasks with a deterministic
//!    best-of-restarts merge, so training scales with cores while the
//!    broadcast model stays a pure function of the batch and seed.
//! 2. **One threshold** — the percentile cutoff is computed over the merged
//!    score vector, not per partition.
//! 3. **Merged explanation state** — each partition builds a pre-render
//!    [`ExplainState`](mb_explain::partition::ExplainState) (encoded itemset
//!    counts + class totals); states merge on items
//!    ([`Mergeable`](mb_explain::Mergeable)) and support/risk-ratio
//!    thresholds apply to the *merged* counts.
//!
//! The result is the one-shot report — same explanation set, same counts up
//! to floating-point summation order — for any partition count, while the
//! scoring and counting passes (the bulk of the work) still scale with
//! cores. The engine lives in [`crate::executor`]; this module keeps the
//! deprecated free-function entry point.

use crate::query::{AnalysisConfig, Executor, MdpQuery};
use crate::types::{MdpReport, Point};
use crate::Result;

/// Execute `config` over `points` split into `num_partitions` partitions
/// with a shared trained model, a global score threshold, and merged
/// explanation state (superseded by
/// [`MdpQuery::execute`](crate::query::MdpQuery::execute) with
/// [`Executor::Coordinated`](crate::query::Executor)). Produces exactly the
/// one-shot report for any partition count. Pass `0` for `num_partitions`
/// to use one partition per pool worker
/// ([`crate::parallel::default_num_partitions`]).
#[deprecated(
    since = "0.5.0",
    note = "use MdpQuery::execute with Executor::Coordinated { partitions }"
)]
pub fn run_coordinated(
    points: &[Point],
    num_partitions: usize,
    config: &AnalysisConfig,
) -> Result<MdpReport> {
    MdpQuery::new(config.clone()).execute(
        &Executor::Coordinated {
            partitions: num_partitions,
        },
        points,
    )
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::oneshot::MdpOneShot;
    use mb_explain::ExplanationConfig;

    fn workload(n: usize) -> Vec<Point> {
        let mut points: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    vec![10.0 + (i % 9) as f64 * 0.2],
                    vec![format!("device_{}", i % 60)],
                )
            })
            .collect();
        for i in 0..(n / 100) {
            points[i * 100] = Point::new(vec![400.0], vec!["device_bad".to_string()]);
        }
        points
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            explanation: ExplanationConfig::new(0.01, 3.0),
            attribute_names: vec!["device_id".to_string()],
            ..AnalysisConfig::default()
        }
    }

    fn attribute_sets(report: &MdpReport) -> Vec<Vec<String>> {
        let mut sets: Vec<Vec<String>> = report
            .explanations
            .iter()
            .map(|e| {
                let mut attrs = e.attributes.clone();
                attrs.sort();
                attrs
            })
            .collect();
        sets.sort();
        sets
    }

    #[test]
    fn coordinated_reproduces_one_shot_for_any_partition_count() {
        let points = workload(20_000);
        let one_shot = MdpOneShot::new(config()).run(&points).unwrap();
        for num_partitions in [1, 2, 3, 4, 8] {
            let coordinated = run_coordinated(&points, num_partitions, &config()).unwrap();
            assert_eq!(coordinated.num_outliers, one_shot.num_outliers);
            assert_eq!(coordinated.score_cutoff, one_shot.score_cutoff);
            assert_eq!(
                attribute_sets(&coordinated),
                attribute_sets(&one_shot),
                "explanation sets diverged at {num_partitions} partitions"
            );
        }
    }

    #[test]
    fn coordinated_respects_skip_explanation_and_retain_scores() {
        let points = workload(5_000);
        let report = run_coordinated(
            &points,
            4,
            &AnalysisConfig {
                skip_explanation: true,
                retain_scores: true,
                ..config()
            },
        )
        .unwrap();
        assert!(report.explanations.is_empty());
        assert_eq!(report.scores.len(), 5_000);
        assert!(report.num_outliers > 0);
    }

    #[test]
    fn coordinated_rejects_empty_input() {
        assert!(run_coordinated(&[], 4, &config()).is_err());
    }

    #[test]
    fn zero_partitions_matches_explicit_partition_count() {
        // 0 = "one partition per core"; coordinated results are partition-
        // count-invariant, so auto must equal the single-partition report.
        let points = workload(5_000);
        let auto = run_coordinated(&points, 0, &config()).unwrap();
        let explicit = run_coordinated(&points, 1, &config()).unwrap();
        assert_eq!(auto.num_outliers, explicit.num_outliers);
        assert_eq!(auto.score_cutoff, explicit.score_cutoff);
        assert_eq!(attribute_sets(&auto), attribute_sets(&explicit));
    }

    #[test]
    fn more_partitions_than_points_still_works() {
        let points = workload(500);
        let report = run_coordinated(&points, 8, &config()).unwrap();
        assert_eq!(report.num_points, 500);
        assert!(report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));
    }
}
