//! MacroBase-RS core: data types, the operator trait system, and the default
//! analysis pipeline (MDP) behind one query surface with pluggable
//! execution backends.
//!
//! This crate assembles the substrates (`mb-stats`, `mb-sketch`,
//! `mb-fpgrowth`, `mb-classify`, `mb-explain`, `mb-transform`, `mb-ingest`)
//! into the system described in Sections 3–5 of *MacroBase: Prioritizing
//! Attention in Fast Data*:
//!
//! * [`types`] — [`Point`], labels, and rendered explanation reports.
//! * [`operator`] — the typed operator interfaces of Table 1 (Ingestor,
//!   Transformer, Classifier, Explainer), adapters for closures, and the
//!   batching [`CsvIngestor`](operator::CsvIngestor).
//! * [`query`] — the unified surface: an [`MdpQuery`] (shared
//!   [`AnalysisConfig`] + transformer chain + classifier stages) executed by
//!   any [`Executor`] backend — one-shot, coordinated partitioned, naïve
//!   partitioned, or streaming — over a slice or any ingestor, returning
//!   one unified [`MdpReport`].
//! * [`executor`] — the batch engines behind those backends, built from the
//!   real Table 1 operators ([`MdpClassifier`], [`MdpExplainer`]).
//! * [`streaming`] — the exponentially weighted streaming (EWS) engine and
//!   the incremental [`StreamingSession`].
//! * [`coordinated`] / [`parallel`] / [`oneshot`] / [`pipeline`] —
//!   partitioning utilities plus the deprecated pre-query entry points,
//!   kept as thin shims over the shared engines.
//! * [`presentation`] — ranking and text rendering of explanation reports.
//!
//! ## Example
//!
//! Run the MDP over a batch of points; the planted misbehaving device
//! produces outliers. The same query runs on any backend:
//!
//! ```
//! use macrobase_core::query::{Executor, MdpQuery};
//! use macrobase_core::types::Point;
//!
//! let mut points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 20)))
//!     .collect();
//! for i in 0..20 {
//!     points[i * 100] = Point::simple(90.0, "device_13");
//! }
//!
//! let mut query = MdpQuery::with_defaults();
//! let report = query.execute(&Executor::OneShot, &points).unwrap();
//! assert!(report.num_outliers > 0);
//!
//! // Scale out without changing the answer.
//! let mut query = MdpQuery::with_defaults();
//! let scaled = query
//!     .execute(&Executor::Coordinated { partitions: 4 }, &points)
//!     .unwrap();
//! assert_eq!(scaled.num_outliers, report.num_outliers);
//! ```

#![warn(missing_docs)]

pub mod coordinated;
pub mod executor;
pub mod operator;
pub mod oneshot;
pub mod parallel;
pub mod pipeline;
pub mod presentation;
pub mod query;
pub mod streaming;
pub mod types;
pub mod wire;

pub use executor::{FittedModel, MdpClassifier, MdpExplainer};
pub use mb_classify::{Classification, Label};
pub use mb_obs::{ObsConfig, QueryTrace};
pub use parallel::default_num_partitions;
pub use query::{AnalysisConfig, EstimatorKind, Executor, MdpQuery, MdpQueryBuilder, StreamingOptions};
pub use streaming::StreamingSession;
pub use types::{MdpReport, Point, RenderedExplanation};

#[allow(deprecated)]
pub use coordinated::run_coordinated;
#[allow(deprecated)]
pub use oneshot::{MdpConfig, MdpOneShot};
#[allow(deprecated)]
pub use parallel::run_partitioned;
#[allow(deprecated)]
pub use pipeline::{Pipeline, PipelineBuilder};
#[allow(deprecated)]
pub use streaming::{MdpStreaming, StreamingMdpConfig};

/// Errors surfaced by query construction and execution.
#[derive(Debug)]
pub enum PipelineError {
    /// The input stream/batch was empty.
    EmptyInput,
    /// Points did not have a consistent metric dimensionality.
    InconsistentDimensions {
        /// Dimensionality of the first point.
        expected: usize,
        /// Dimensionality of the offending point.
        actual: usize,
    },
    /// A statistical component failed.
    Stats(mb_stats::StatsError),
    /// Pipeline was misconfigured.
    InvalidConfiguration(String),
    /// The query declares no classification stage (neither the unsupervised
    /// classifier nor a supervised rule).
    MissingClassifier,
    /// A query feature cannot be executed faithfully by the chosen backend
    /// (e.g. score retention on the unbounded streaming backend).
    UnsupportedByBackend {
        /// The query feature that does not fit the backend.
        feature: &'static str,
        /// The backend that rejected it.
        backend: &'static str,
    },
    /// An ingestion source failed mid-stream (e.g. an I/O error while
    /// reading a CSV file); the query fails rather than silently reporting
    /// over truncated data.
    Ingest(Box<dyn std::error::Error + Send + Sync>),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmptyInput => write!(f, "input contains no points"),
            PipelineError::InconsistentDimensions { expected, actual } => write!(
                f,
                "inconsistent metric dimensions: expected {expected}, got {actual}"
            ),
            PipelineError::Stats(e) => write!(f, "statistics error: {e}"),
            PipelineError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::MissingClassifier => write!(
                f,
                "query needs at least one classifier (unsupervised or rule)"
            ),
            PipelineError::UnsupportedByBackend { feature, backend } => {
                write!(f, "{feature} is not supported by the {backend} backend")
            }
            PipelineError::Ingest(e) => write!(f, "ingestion error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<mb_stats::StatsError> for PipelineError {
    fn from(e: mb_stats::StatsError) -> Self {
        PipelineError::Stats(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;
