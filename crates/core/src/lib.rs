//! MacroBase-RS core: data types, the operator trait system, and the default
//! analysis pipeline (MDP) in one-shot, streaming, hybrid, and partitioned
//! forms.
//!
//! This crate assembles the substrates (`mb-stats`, `mb-sketch`,
//! `mb-fpgrowth`, `mb-classify`, `mb-explain`, `mb-transform`) into the
//! system described in Sections 3–5 of *MacroBase: Prioritizing Attention in
//! Fast Data*:
//!
//! * [`types`] — [`Point`], labels, and rendered explanation reports.
//! * [`operator`] — the typed operator interfaces of Table 1 (Transformer,
//!   Classifier, Explainer) and adapters for closures.
//! * [`oneshot`] — one-shot MDP execution over a batch of points.
//! * [`streaming`] — exponentially weighted streaming (EWS) MDP execution.
//! * [`pipeline`] — a builder for custom pipelines: domain-specific
//!   transformers up front, an unsupervised and/or rule-based classifier,
//!   and the risk-ratio explainer (used by the Section 6.4 case studies).
//! * [`parallel`] — the naïve shared-nothing partitioned executor of
//!   Figure 11.
//! * [`coordinated`] — coordinated partitioned execution: shared trained
//!   model, global threshold, merged (mergeable) explanation state;
//!   reproduces the one-shot report at any partition count.
//! * [`presentation`] — ranking and text rendering of explanation reports.
//!
//! ## Example
//!
//! Run the one-shot MDP over a batch of points; the planted misbehaving
//! device produces outliers:
//!
//! ```
//! use macrobase_core::oneshot::MdpOneShot;
//! use macrobase_core::types::Point;
//!
//! let mut points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 20)))
//!     .collect();
//! for i in 0..20 {
//!     points[i * 100] = Point::simple(90.0, "device_13");
//! }
//!
//! let report = MdpOneShot::with_defaults().run(&points).unwrap();
//! assert!(report.num_outliers > 0);
//! ```

#![warn(missing_docs)]

pub mod coordinated;
pub mod operator;
pub mod oneshot;
pub mod parallel;
pub mod pipeline;
pub mod presentation;
pub mod streaming;
pub mod types;

pub use coordinated::run_coordinated;
pub use mb_classify::Label;
pub use parallel::{default_num_partitions, run_partitioned};
pub use oneshot::{EstimatorKind, MdpConfig, MdpOneShot};
pub use pipeline::{Pipeline, PipelineBuilder};
pub use streaming::{MdpStreaming, StreamingMdpConfig};
pub use types::{MdpReport, Point, RenderedExplanation};

/// Errors surfaced by pipeline execution.
#[derive(Debug)]
pub enum PipelineError {
    /// The input stream/batch was empty.
    EmptyInput,
    /// Points did not have a consistent metric dimensionality.
    InconsistentDimensions {
        /// Dimensionality of the first point.
        expected: usize,
        /// Dimensionality of the offending point.
        actual: usize,
    },
    /// A statistical component failed.
    Stats(mb_stats::StatsError),
    /// Pipeline was misconfigured.
    InvalidConfiguration(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmptyInput => write!(f, "input contains no points"),
            PipelineError::InconsistentDimensions { expected, actual } => write!(
                f,
                "inconsistent metric dimensions: expected {expected}, got {actual}"
            ),
            PipelineError::Stats(e) => write!(f, "statistics error: {e}"),
            PipelineError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<mb_stats::StatsError> for PipelineError {
    fn from(e: mb_stats::StatsError) -> Self {
        PipelineError::Stats(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;
