//! Wire (de)serialization of [`MdpReport`] over the vendored `serde_json`.
//!
//! ROADMAP item 4 (process-boundary scale-out) needs query results and
//! mergeable state to cross process boundaries; this module is the report
//! half of that protocol: [`report_to_json`] / [`report_from_json`] convert a
//! full [`MdpReport`] — explanations with items and statistics, counters,
//! retained scores and outlier rows, and recursive partition detail — to and
//! from a [`serde_json::Value`], and [`report_to_string`] /
//! [`report_from_str`] do the same against JSON text.
//!
//! The encoding is loss-free for every representable report: non-finite
//! statistics (an infinite risk ratio is routine when a combination never
//! occurs among inliers) are encoded as the strings `"Infinity"`,
//! `"-Infinity"`, and `"NaN"` because JSON numbers cannot carry them. `NaN`
//! round-trips structurally but compares unequal to itself, as always.
//!
//! ```
//! use macrobase_core::query::{Executor, MdpQuery};
//! use macrobase_core::types::Point;
//! use macrobase_core::wire::{report_from_str, report_to_string};
//!
//! let mut points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("d{}", i % 20)))
//!     .collect();
//! for i in 0..20 {
//!     points[i * 100] = Point::simple(90.0, "d13");
//! }
//! let mut query = MdpQuery::with_defaults();
//! let report = query.execute(&Executor::OneShot, &points).unwrap();
//! let decoded = report_from_str(&report_to_string(&report)).unwrap();
//! assert_eq!(decoded, report);
//! ```

use crate::query::{AnalysisConfig, EstimatorKind, Executor, StreamingOptions};
use crate::types::{MdpReport, Point, RenderedExplanation};
use mb_explain::risk_ratio::ExplanationStats;
use mb_fpgrowth::Item;
use mb_obs::{HistogramSnapshot, QueryTrace, StageTrace};
use serde_json::{Map, Value};

/// Error produced when decoding a report from JSON that does not match the
/// wire schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Dotted path of the field that failed to decode (e.g.
    /// `explanations[2].stats.risk_ratio`).
    pub field: String,
    /// What went wrong.
    pub message: String,
}

impl WireError {
    fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        WireError {
            field: field.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error at {}: {}", self.field, self.message)
    }
}

impl std::error::Error for WireError {}

/// Encode an `f64`, representing non-finite values (JSON has no NaN or
/// infinities) as the strings `"Infinity"` / `"-Infinity"` / `"NaN"`.
fn f64_to_value(v: f64) -> Value {
    if v.is_finite() {
        Value::from(v)
    } else if v.is_nan() {
        Value::String("NaN".to_string())
    } else if v > 0.0 {
        Value::String("Infinity".to_string())
    } else {
        Value::String("-Infinity".to_string())
    }
}

fn f64_from_value(value: &Value, field: &str) -> Result<f64, WireError> {
    if let Some(n) = value.as_f64() {
        return Ok(n);
    }
    match value.as_str() {
        Some("Infinity") => Ok(f64::INFINITY),
        Some("-Infinity") => Ok(f64::NEG_INFINITY),
        Some("NaN") => Ok(f64::NAN),
        _ => Err(WireError::new(field, "expected a number")),
    }
}

fn usize_from_value(value: &Value, field: &str) -> Result<usize, WireError> {
    let n = value
        .as_f64()
        .ok_or_else(|| WireError::new(field, "expected an integer"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(WireError::new(field, "expected a non-negative integer"));
    }
    Ok(n as usize)
}

fn u64_from_value(value: &Value, field: &str) -> Result<u64, WireError> {
    let n = value
        .as_f64()
        .ok_or_else(|| WireError::new(field, "expected an integer"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(WireError::new(field, "expected a non-negative integer"));
    }
    Ok(n as u64)
}

fn string_from_value(value: &Value, field: &str) -> Result<String, WireError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::new(field, "expected a string"))
}

fn array<'a>(value: &'a Value, field: &str) -> Result<&'a [Value], WireError> {
    match value {
        Value::Array(items) => Ok(items),
        _ => Err(WireError::new(field, "expected an array")),
    }
}

fn field<'a>(map: &'a Map, field_name: &str, context: &str) -> Result<&'a Value, WireError> {
    map.get(field_name)
        .ok_or_else(|| WireError::new(format!("{context}{field_name}"), "missing field"))
}

/// Fail loudly on keys outside the schema: a misspelled field would
/// otherwise be silently ignored and its intended value silently replaced
/// by a default, which is exactly the failure mode a wire protocol must
/// surface.
fn reject_unknown_keys(map: &Map, allowed: &[&str], context: &str) -> Result<(), WireError> {
    for (key, _) in map.iter() {
        if !allowed.contains(&key.as_str()) {
            return Err(WireError::new(
                format!("{context}.{key}"),
                "unknown field",
            ));
        }
    }
    Ok(())
}

fn bool_from_value(value: &Value, field: &str) -> Result<bool, WireError> {
    match value {
        Value::Bool(b) => Ok(*b),
        _ => Err(WireError::new(field, "expected a boolean")),
    }
}

fn stats_to_json(stats: &ExplanationStats) -> Value {
    let mut map = Map::new();
    map.insert("outlier_count".to_string(), f64_to_value(stats.outlier_count));
    map.insert("inlier_count".to_string(), f64_to_value(stats.inlier_count));
    map.insert(
        "outlier_support".to_string(),
        f64_to_value(stats.outlier_support),
    );
    map.insert("risk_ratio".to_string(), f64_to_value(stats.risk_ratio));
    map.insert(
        "total_outliers".to_string(),
        f64_to_value(stats.total_outliers),
    );
    map.insert(
        "total_inliers".to_string(),
        f64_to_value(stats.total_inliers),
    );
    Value::Object(map)
}

fn stats_from_json(value: &Value, context: &str) -> Result<ExplanationStats, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a stats object"))?;
    let get = |name: &str| -> Result<f64, WireError> {
        f64_from_value(
            field(map, name, &format!("{context}."))?,
            &format!("{context}.{name}"),
        )
    };
    Ok(ExplanationStats {
        outlier_count: get("outlier_count")?,
        inlier_count: get("inlier_count")?,
        outlier_support: get("outlier_support")?,
        risk_ratio: get("risk_ratio")?,
        total_outliers: get("total_outliers")?,
        total_inliers: get("total_inliers")?,
    })
}

fn explanation_to_json(explanation: &RenderedExplanation) -> Value {
    let mut map = Map::new();
    map.insert(
        "attributes".to_string(),
        Value::Array(
            explanation
                .attributes
                .iter()
                .map(|a| Value::String(a.clone()))
                .collect(),
        ),
    );
    map.insert(
        "items".to_string(),
        Value::Array(explanation.items.iter().map(|&i| Value::from(i)).collect()),
    );
    map.insert("stats".to_string(), stats_to_json(&explanation.stats));
    Value::Object(map)
}

fn explanation_from_json(
    value: &Value,
    context: &str,
) -> Result<RenderedExplanation, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected an explanation object"))?;
    let attributes = array(
        field(map, "attributes", &format!("{context}."))?,
        &format!("{context}.attributes"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| WireError::new(format!("{context}.attributes[{i}]"), "expected a string"))
    })
    .collect::<Result<Vec<String>, WireError>>()?;
    let items = array(
        field(map, "items", &format!("{context}."))?,
        &format!("{context}.items"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        let item_field = format!("{context}.items[{i}]");
        let n = usize_from_value(v, &item_field)?;
        Item::try_from(n).map_err(|_| WireError::new(item_field, "item id out of range"))
    })
    .collect::<Result<Vec<Item>, WireError>>()?;
    let stats = stats_from_json(
        field(map, "stats", &format!("{context}."))?,
        &format!("{context}.stats"),
    )?;
    Ok(RenderedExplanation {
        attributes,
        items,
        stats,
    })
}

fn stage_to_json(stage: &StageTrace) -> Value {
    let mut map = Map::new();
    map.insert("stage".to_string(), Value::String(stage.stage.clone()));
    map.insert("wall_ns".to_string(), Value::from(stage.wall_ns));
    map.insert("rows_in".to_string(), Value::from(stage.rows_in));
    map.insert("rows_out".to_string(), Value::from(stage.rows_out));
    map.insert("batches".to_string(), Value::from(stage.batches));
    Value::Object(map)
}

fn stage_from_json(value: &Value, context: &str) -> Result<StageTrace, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a stage object"))?;
    let prefix = format!("{context}.");
    let get = |name: &str| -> Result<u64, WireError> {
        u64_from_value(field(map, name, &prefix)?, &format!("{context}.{name}"))
    };
    Ok(StageTrace {
        stage: string_from_value(field(map, "stage", &prefix)?, &format!("{context}.stage"))?,
        wall_ns: get("wall_ns")?,
        rows_in: get("rows_in")?,
        rows_out: get("rows_out")?,
        batches: get("batches")?,
    })
}

fn histogram_to_json(snapshot: &HistogramSnapshot) -> Value {
    let mut map = Map::new();
    map.insert("name".to_string(), Value::String(snapshot.name.clone()));
    map.insert("count".to_string(), Value::from(snapshot.count));
    map.insert("sum_ns".to_string(), Value::from(snapshot.sum_ns));
    map.insert("max_ns".to_string(), Value::from(snapshot.max_ns));
    map.insert(
        "buckets".to_string(),
        Value::Array(
            snapshot
                .buckets
                .iter()
                .map(|&(exp, count)| {
                    Value::Array(vec![Value::from(exp), Value::from(count)])
                })
                .collect(),
        ),
    );
    Value::Object(map)
}

fn histogram_from_json(value: &Value, context: &str) -> Result<HistogramSnapshot, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a histogram object"))?;
    let prefix = format!("{context}.");
    let buckets = array(
        field(map, "buckets", &prefix)?,
        &format!("{context}.buckets"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        let bucket_field = format!("{context}.buckets[{i}]");
        let pair = array(v, &bucket_field)?;
        if pair.len() != 2 {
            return Err(WireError::new(bucket_field, "expected an [exponent, count] pair"));
        }
        let exp = u64_from_value(&pair[0], &format!("{bucket_field}[0]"))?;
        let exp = u32::try_from(exp)
            .map_err(|_| WireError::new(format!("{bucket_field}[0]"), "exponent out of range"))?;
        let count = u64_from_value(&pair[1], &format!("{bucket_field}[1]"))?;
        Ok((exp, count))
    })
    .collect::<Result<Vec<(u32, u64)>, WireError>>()?;
    Ok(HistogramSnapshot {
        name: string_from_value(field(map, "name", &prefix)?, &format!("{context}.name"))?,
        count: u64_from_value(field(map, "count", &prefix)?, &format!("{context}.count"))?,
        sum_ns: u64_from_value(field(map, "sum_ns", &prefix)?, &format!("{context}.sum_ns"))?,
        max_ns: u64_from_value(field(map, "max_ns", &prefix)?, &format!("{context}.max_ns"))?,
        buckets,
    })
}

fn trace_to_json(trace: &QueryTrace) -> Value {
    let mut map = Map::new();
    map.insert("executor".to_string(), Value::String(trace.executor.clone()));
    map.insert("partitions".to_string(), Value::from(trace.partitions));
    map.insert(
        "stages".to_string(),
        Value::Array(trace.stages.iter().map(stage_to_json).collect()),
    );
    map.insert(
        "counters".to_string(),
        Value::Array(
            trace
                .counters
                .iter()
                .map(|(name, v)| {
                    Value::Array(vec![Value::String(name.clone()), Value::from(*v)])
                })
                .collect(),
        ),
    );
    map.insert(
        "gauges".to_string(),
        Value::Array(
            trace
                .gauges
                .iter()
                .map(|(name, v)| {
                    Value::Array(vec![Value::String(name.clone()), f64_to_value(*v)])
                })
                .collect(),
        ),
    );
    map.insert(
        "histograms".to_string(),
        Value::Array(trace.histograms.iter().map(histogram_to_json).collect()),
    );
    Value::Object(map)
}

fn trace_from_json(value: &Value, context: &str) -> Result<QueryTrace, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a trace object"))?;
    let prefix = format!("{context}.");
    let stages = array(field(map, "stages", &prefix)?, &format!("{context}.stages"))?
        .iter()
        .enumerate()
        .map(|(i, v)| stage_from_json(v, &format!("{context}.stages[{i}]")))
        .collect::<Result<Vec<StageTrace>, WireError>>()?;
    let counters = array(
        field(map, "counters", &prefix)?,
        &format!("{context}.counters"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        let pair_field = format!("{context}.counters[{i}]");
        let pair = array(v, &pair_field)?;
        if pair.len() != 2 {
            return Err(WireError::new(pair_field, "expected a [name, value] pair"));
        }
        Ok((
            string_from_value(&pair[0], &format!("{pair_field}[0]"))?,
            u64_from_value(&pair[1], &format!("{pair_field}[1]"))?,
        ))
    })
    .collect::<Result<Vec<(String, u64)>, WireError>>()?;
    let gauges = array(field(map, "gauges", &prefix)?, &format!("{context}.gauges"))?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let pair_field = format!("{context}.gauges[{i}]");
            let pair = array(v, &pair_field)?;
            if pair.len() != 2 {
                return Err(WireError::new(pair_field, "expected a [name, value] pair"));
            }
            Ok((
                string_from_value(&pair[0], &format!("{pair_field}[0]"))?,
                f64_from_value(&pair[1], &format!("{pair_field}[1]"))?,
            ))
        })
        .collect::<Result<Vec<(String, f64)>, WireError>>()?;
    let histograms = array(
        field(map, "histograms", &prefix)?,
        &format!("{context}.histograms"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| histogram_from_json(v, &format!("{context}.histograms[{i}]")))
    .collect::<Result<Vec<HistogramSnapshot>, WireError>>()?;
    Ok(QueryTrace {
        executor: string_from_value(
            field(map, "executor", &prefix)?,
            &format!("{context}.executor"),
        )?,
        partitions: u64_from_value(
            field(map, "partitions", &prefix)?,
            &format!("{context}.partitions"),
        )?,
        stages,
        counters,
        gauges,
        histograms,
    })
}

/// Encode a report (including recursive partition detail) as a JSON value.
pub fn report_to_json(report: &MdpReport) -> Value {
    let mut map = Map::new();
    map.insert("num_points".to_string(), Value::from(report.num_points));
    map.insert("num_outliers".to_string(), Value::from(report.num_outliers));
    map.insert(
        "score_cutoff".to_string(),
        match report.score_cutoff {
            Some(cutoff) => f64_to_value(cutoff),
            None => Value::Null,
        },
    );
    map.insert(
        "scores".to_string(),
        Value::Array(report.scores.iter().map(|&s| f64_to_value(s)).collect()),
    );
    map.insert(
        "outlier_rows".to_string(),
        Value::Array(report.outlier_rows.iter().map(|&r| Value::from(r)).collect()),
    );
    map.insert(
        "explanations".to_string(),
        Value::Array(report.explanations.iter().map(explanation_to_json).collect()),
    );
    map.insert(
        "partition_reports".to_string(),
        match &report.partition_reports {
            Some(reports) => Value::Array(reports.iter().map(report_to_json).collect()),
            None => Value::Null,
        },
    );
    map.insert(
        "trace".to_string(),
        match &report.trace {
            Some(trace) => trace_to_json(trace),
            None => Value::Null,
        },
    );
    Value::Object(map)
}

/// Decode a report from a JSON value produced by [`report_to_json`].
pub fn report_from_json(value: &Value) -> Result<MdpReport, WireError> {
    report_from_json_at(value, "report")
}

const REPORT_KEYS: &[&str] = &[
    "num_points",
    "num_outliers",
    "score_cutoff",
    "scores",
    "outlier_rows",
    "explanations",
    "partition_reports",
    "trace",
];

fn report_from_json_at(value: &Value, context: &str) -> Result<MdpReport, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a report object"))?;
    reject_unknown_keys(map, REPORT_KEYS, context)?;
    let prefix = format!("{context}.");
    let num_points = usize_from_value(
        field(map, "num_points", &prefix)?,
        &format!("{context}.num_points"),
    )?;
    let num_outliers = usize_from_value(
        field(map, "num_outliers", &prefix)?,
        &format!("{context}.num_outliers"),
    )?;
    let score_cutoff = match field(map, "score_cutoff", &prefix)? {
        Value::Null => None,
        other => Some(f64_from_value(other, &format!("{context}.score_cutoff"))?),
    };
    let scores = array(field(map, "scores", &prefix)?, &format!("{context}.scores"))?
        .iter()
        .enumerate()
        .map(|(i, v)| f64_from_value(v, &format!("{context}.scores[{i}]")))
        .collect::<Result<Vec<f64>, WireError>>()?;
    let outlier_rows = array(
        field(map, "outlier_rows", &prefix)?,
        &format!("{context}.outlier_rows"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| usize_from_value(v, &format!("{context}.outlier_rows[{i}]")))
    .collect::<Result<Vec<usize>, WireError>>()?;
    let explanations = array(
        field(map, "explanations", &prefix)?,
        &format!("{context}.explanations"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| explanation_from_json(v, &format!("{context}.explanations[{i}]")))
    .collect::<Result<Vec<RenderedExplanation>, WireError>>()?;
    let partition_reports = match field(map, "partition_reports", &prefix)? {
        Value::Null => None,
        other => Some(
            array(other, &format!("{context}.partition_reports"))?
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    report_from_json_at(v, &format!("{context}.partition_reports[{i}]"))
                })
                .collect::<Result<Vec<MdpReport>, WireError>>()?,
        ),
    };
    let trace = match field(map, "trace", &prefix)? {
        Value::Null => None,
        other => Some(trace_from_json(other, &format!("{context}.trace"))?),
    };
    Ok(MdpReport {
        explanations,
        num_points,
        num_outliers,
        score_cutoff,
        scores,
        outlier_rows,
        partition_reports,
        trace,
    })
}

/// Encode a report as JSON text.
pub fn report_to_string(report: &MdpReport) -> String {
    report_to_json(report).to_string()
}

/// Decode a report from JSON text produced by [`report_to_string`].
pub fn report_from_str(text: &str) -> Result<MdpReport, WireError> {
    let value = serde_json::from_str(text)
        .map_err(|e| WireError::new("report", format!("malformed JSON: {e}")))?;
    report_from_json(&value)
}

// ---------------------------------------------------------------------------
// Request half of the protocol: analysis configs, executors, and points.
// These are what a client sends to `mb-serve`; the report codecs above are
// what it gets back.
// ---------------------------------------------------------------------------

/// Encode a [`Point`] as `{"metrics": [...], "attributes": [...]}`.
pub fn point_to_json(point: &Point) -> Value {
    let mut map = Map::new();
    map.insert(
        "metrics".to_string(),
        Value::Array(point.metrics.iter().map(|&m| f64_to_value(m)).collect()),
    );
    map.insert(
        "attributes".to_string(),
        Value::Array(
            point
                .attributes
                .iter()
                .map(|a| Value::String(a.clone()))
                .collect(),
        ),
    );
    Value::Object(map)
}

/// Decode a [`Point`] from the encoding of [`point_to_json`]. Unknown keys
/// are a typed error.
pub fn point_from_json(value: &Value, context: &str) -> Result<Point, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a point object"))?;
    reject_unknown_keys(map, &["metrics", "attributes"], context)?;
    let prefix = format!("{context}.");
    let metrics = array(
        field(map, "metrics", &prefix)?,
        &format!("{context}.metrics"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| f64_from_value(v, &format!("{context}.metrics[{i}]")))
    .collect::<Result<Vec<f64>, WireError>>()?;
    let attributes = array(
        field(map, "attributes", &prefix)?,
        &format!("{context}.attributes"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| WireError::new(format!("{context}.attributes[{i}]"), "expected a string"))
    })
    .collect::<Result<Vec<String>, WireError>>()?;
    Ok(Point::new(metrics, attributes))
}

/// Encode a batch of points as a JSON array.
pub fn points_to_json(points: &[Point]) -> Value {
    Value::Array(points.iter().map(point_to_json).collect())
}

/// Decode a batch of points from a JSON array of point objects.
pub fn points_from_json(value: &Value, context: &str) -> Result<Vec<Point>, WireError> {
    array(value, context)?
        .iter()
        .enumerate()
        .map(|(i, v)| point_from_json(v, &format!("{context}[{i}]")))
        .collect()
}

fn estimator_name(kind: EstimatorKind) -> &'static str {
    match kind {
        EstimatorKind::Auto => "auto",
        EstimatorKind::Mad => "mad",
        EstimatorKind::Mcd => "mcd",
        EstimatorKind::ZScore => "zscore",
    }
}

const ANALYSIS_KEYS: &[&str] = &[
    "estimator",
    "target_percentile",
    "min_support",
    "min_risk_ratio",
    "max_combination_size",
    "training_sample_size",
    "attribute_names",
    "retain_scores",
    "retain_outlier_rows",
    "skip_explanation",
    "traced",
];

/// Encode an [`AnalysisConfig`] as a flat JSON object. Explanation
/// thresholds are flattened (`min_support`, `min_risk_ratio`,
/// `max_combination_size`) and the telemetry switch travels as the boolean
/// `traced`.
pub fn analysis_to_json(analysis: &AnalysisConfig) -> Value {
    let mut map = Map::new();
    map.insert(
        "estimator".to_string(),
        Value::String(estimator_name(analysis.estimator).to_string()),
    );
    map.insert(
        "target_percentile".to_string(),
        f64_to_value(analysis.target_percentile),
    );
    map.insert(
        "min_support".to_string(),
        f64_to_value(analysis.explanation.min_support),
    );
    map.insert(
        "min_risk_ratio".to_string(),
        f64_to_value(analysis.explanation.min_risk_ratio),
    );
    map.insert(
        "max_combination_size".to_string(),
        Value::from(analysis.explanation.max_combination_size),
    );
    map.insert(
        "training_sample_size".to_string(),
        match analysis.training_sample_size {
            Some(n) => Value::from(n),
            None => Value::Null,
        },
    );
    map.insert(
        "attribute_names".to_string(),
        Value::Array(
            analysis
                .attribute_names
                .iter()
                .map(|n| Value::String(n.clone()))
                .collect(),
        ),
    );
    map.insert(
        "retain_scores".to_string(),
        Value::Bool(analysis.retain_scores),
    );
    map.insert(
        "retain_outlier_rows".to_string(),
        Value::Bool(analysis.retain_outlier_rows),
    );
    map.insert(
        "skip_explanation".to_string(),
        Value::Bool(analysis.skip_explanation),
    );
    map.insert("traced".to_string(), Value::Bool(analysis.obs.enabled));
    Value::Object(map)
}

/// Decode an [`AnalysisConfig`] from the encoding of [`analysis_to_json`].
/// Every field is optional and falls back to [`AnalysisConfig::default`];
/// unknown keys are a typed error so a misspelled knob cannot silently
/// leave its default in place.
pub fn analysis_from_json(value: &Value, context: &str) -> Result<AnalysisConfig, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected an analysis object"))?;
    reject_unknown_keys(map, ANALYSIS_KEYS, context)?;
    let mut analysis = AnalysisConfig::default();
    if let Some(v) = map.get("estimator") {
        let name = string_from_value(v, &format!("{context}.estimator"))?;
        analysis.estimator = match name.as_str() {
            "auto" => EstimatorKind::Auto,
            "mad" => EstimatorKind::Mad,
            "mcd" => EstimatorKind::Mcd,
            "zscore" => EstimatorKind::ZScore,
            _ => {
                return Err(WireError::new(
                    format!("{context}.estimator"),
                    "expected one of auto, mad, mcd, zscore",
                ))
            }
        };
    }
    if let Some(v) = map.get("target_percentile") {
        analysis.target_percentile = f64_from_value(v, &format!("{context}.target_percentile"))?;
    }
    if let Some(v) = map.get("min_support") {
        analysis.explanation.min_support = f64_from_value(v, &format!("{context}.min_support"))?;
    }
    if let Some(v) = map.get("min_risk_ratio") {
        analysis.explanation.min_risk_ratio =
            f64_from_value(v, &format!("{context}.min_risk_ratio"))?;
    }
    if let Some(v) = map.get("max_combination_size") {
        analysis.explanation.max_combination_size =
            usize_from_value(v, &format!("{context}.max_combination_size"))?;
    }
    if let Some(v) = map.get("training_sample_size") {
        analysis.training_sample_size = match v {
            Value::Null => None,
            other => Some(usize_from_value(
                other,
                &format!("{context}.training_sample_size"),
            )?),
        };
    }
    if let Some(v) = map.get("attribute_names") {
        analysis.attribute_names = array(v, &format!("{context}.attribute_names"))?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_str().map(str::to_string).ok_or_else(|| {
                    WireError::new(format!("{context}.attribute_names[{i}]"), "expected a string")
                })
            })
            .collect::<Result<Vec<String>, WireError>>()?;
    }
    if let Some(v) = map.get("retain_scores") {
        analysis.retain_scores = bool_from_value(v, &format!("{context}.retain_scores"))?;
    }
    if let Some(v) = map.get("retain_outlier_rows") {
        analysis.retain_outlier_rows =
            bool_from_value(v, &format!("{context}.retain_outlier_rows"))?;
    }
    if let Some(v) = map.get("skip_explanation") {
        analysis.skip_explanation = bool_from_value(v, &format!("{context}.skip_explanation"))?;
    }
    if let Some(v) = map.get("traced") {
        analysis.obs.enabled = bool_from_value(v, &format!("{context}.traced"))?;
    }
    Ok(analysis)
}

/// Encode an [`Executor`] as a JSON object with a `mode` discriminator
/// (`one_shot`, `coordinated`, `naive`, `streaming`) and per-mode knobs.
pub fn executor_to_json(executor: &Executor) -> Value {
    let mut map = Map::new();
    match executor {
        Executor::OneShot => {
            map.insert("mode".to_string(), Value::String("one_shot".to_string()));
        }
        Executor::Coordinated { partitions } => {
            map.insert("mode".to_string(), Value::String("coordinated".to_string()));
            map.insert("partitions".to_string(), Value::from(*partitions));
        }
        Executor::NaivePartitioned { partitions } => {
            map.insert("mode".to_string(), Value::String("naive".to_string()));
            map.insert("partitions".to_string(), Value::from(*partitions));
        }
        Executor::Streaming { options } => {
            map.insert("mode".to_string(), Value::String("streaming".to_string()));
            map.insert(
                "reservoir_size".to_string(),
                Value::from(options.reservoir_size),
            );
            map.insert("decay_rate".to_string(), f64_to_value(options.decay_rate));
            map.insert("decay_period".to_string(), Value::from(options.decay_period));
            map.insert(
                "retrain_period".to_string(),
                Value::from(options.retrain_period),
            );
            map.insert("seed".to_string(), Value::from(options.seed));
        }
    }
    Value::Object(map)
}

/// Decode an [`Executor`] from the encoding of [`executor_to_json`].
/// Knobs are optional (falling back to the mode's defaults), but a knob
/// that does not belong to the declared mode — or any unknown key — is a
/// typed error.
pub fn executor_from_json(value: &Value, context: &str) -> Result<Executor, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected an executor object"))?;
    let prefix = format!("{context}.");
    let mode = string_from_value(field(map, "mode", &prefix)?, &format!("{context}.mode"))?;
    match mode.as_str() {
        "one_shot" => {
            reject_unknown_keys(map, &["mode"], context)?;
            Ok(Executor::OneShot)
        }
        "coordinated" | "naive" => {
            reject_unknown_keys(map, &["mode", "partitions"], context)?;
            let partitions = match map.get("partitions") {
                Some(v) => usize_from_value(v, &format!("{context}.partitions"))?,
                None => 0,
            };
            if mode == "coordinated" {
                Ok(Executor::Coordinated { partitions })
            } else {
                Ok(Executor::NaivePartitioned { partitions })
            }
        }
        "streaming" => {
            reject_unknown_keys(
                map,
                &[
                    "mode",
                    "reservoir_size",
                    "decay_rate",
                    "decay_period",
                    "retrain_period",
                    "seed",
                ],
                context,
            )?;
            let mut options = StreamingOptions::default();
            if let Some(v) = map.get("reservoir_size") {
                options.reservoir_size = usize_from_value(v, &format!("{context}.reservoir_size"))?;
            }
            if let Some(v) = map.get("decay_rate") {
                options.decay_rate = f64_from_value(v, &format!("{context}.decay_rate"))?;
            }
            if let Some(v) = map.get("decay_period") {
                options.decay_period = u64_from_value(v, &format!("{context}.decay_period"))?;
            }
            if let Some(v) = map.get("retrain_period") {
                options.retrain_period = u64_from_value(v, &format!("{context}.retrain_period"))?;
            }
            if let Some(v) = map.get("seed") {
                options.seed = u64_from_value(v, &format!("{context}.seed"))?;
            }
            Ok(Executor::Streaming { options })
        }
        _ => Err(WireError::new(
            format!("{context}.mode"),
            "expected one of one_shot, coordinated, naive, streaming",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MdpReport {
        MdpReport {
            explanations: vec![RenderedExplanation {
                attributes: vec!["device=d\"13\"".to_string(), "version=2.6".to_string()],
                items: vec![0, 7],
                stats: ExplanationStats {
                    outlier_count: 60.0,
                    inlier_count: 0.0,
                    outlier_support: 0.6,
                    risk_ratio: f64::INFINITY,
                    total_outliers: 100.0,
                    total_inliers: 9_900.0,
                },
            }],
            num_points: 10_000,
            num_outliers: 100,
            score_cutoff: Some(3.25),
            scores: vec![0.5, 12.75, 0.125],
            outlier_rows: vec![1, 4_096],
            partition_reports: None,
            trace: None,
        }
    }

    #[test]
    fn report_round_trips_through_text() {
        let report = sample_report();
        let decoded = report_from_str(&report_to_string(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn partition_detail_round_trips_recursively() {
        let mut outer = sample_report();
        let mut inner = sample_report();
        inner.partition_reports = None;
        inner.score_cutoff = None;
        outer.partition_reports = Some(vec![inner.clone(), inner]);
        let decoded = report_from_str(&report_to_string(&outer)).unwrap();
        assert_eq!(decoded, outer);
    }

    #[test]
    fn non_finite_statistics_survive_the_wire() {
        let mut report = sample_report();
        report.explanations[0].stats.risk_ratio = f64::NEG_INFINITY;
        let decoded = report_from_str(&report_to_string(&report)).unwrap();
        assert_eq!(
            decoded.explanations[0].stats.risk_ratio,
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn misspelled_report_field_is_a_typed_error() {
        // Regression: unknown top-level keys used to be silently ignored, so
        // a typo like `num_outlier` produced a decode that dropped the value.
        let mut value = report_to_json(&sample_report());
        let map = value.as_object_mut().unwrap();
        let count = map.get("num_outliers").unwrap().clone();
        map.insert("num_outlier".to_string(), count);
        let err = report_from_json(&value).unwrap_err();
        assert_eq!(err.field, "report.num_outlier");
        assert_eq!(err.message, "unknown field");
    }

    #[test]
    fn analysis_config_round_trips() {
        let analysis = AnalysisConfig {
            estimator: EstimatorKind::Mcd,
            target_percentile: 0.95,
            explanation: mb_explain::ExplanationConfig {
                min_support: 0.01,
                min_risk_ratio: 5.0,
                max_combination_size: 2,
            },
            training_sample_size: Some(1_000),
            attribute_names: vec!["device".to_string()],
            retain_scores: true,
            retain_outlier_rows: true,
            obs: mb_obs::ObsConfig { enabled: true },
            ..AnalysisConfig::default()
        };
        let decoded = analysis_from_json(&analysis_to_json(&analysis), "analysis").unwrap();
        assert_eq!(decoded.estimator, analysis.estimator);
        assert_eq!(decoded.target_percentile, analysis.target_percentile);
        assert_eq!(decoded.explanation.min_support, analysis.explanation.min_support);
        assert_eq!(
            decoded.explanation.max_combination_size,
            analysis.explanation.max_combination_size
        );
        assert_eq!(decoded.training_sample_size, analysis.training_sample_size);
        assert_eq!(decoded.attribute_names, analysis.attribute_names);
        assert!(decoded.retain_scores && decoded.retain_outlier_rows);
        assert!(decoded.obs.enabled);

        // An empty object decodes to the defaults.
        let defaults =
            analysis_from_json(&Value::Object(Map::new()), "analysis").unwrap();
        assert_eq!(defaults.estimator, EstimatorKind::Auto);
        assert_eq!(defaults.target_percentile, 0.99);
        assert!(!defaults.obs.enabled);
    }

    #[test]
    fn misspelled_analysis_knob_is_a_typed_error() {
        let mut map = Map::new();
        map.insert("target_percentil".to_string(), Value::from(0.9));
        let err = analysis_from_json(&Value::Object(map), "analysis").unwrap_err();
        assert_eq!(err.field, "analysis.target_percentil");
        assert_eq!(err.message, "unknown field");
    }

    #[test]
    fn executor_round_trips_and_rejects_foreign_knobs() {
        for executor in [
            Executor::OneShot,
            Executor::Coordinated { partitions: 4 },
            Executor::NaivePartitioned { partitions: 2 },
            Executor::Streaming {
                options: StreamingOptions {
                    reservoir_size: 500,
                    decay_rate: 0.05,
                    decay_period: 1_000,
                    retrain_period: 250,
                    seed: 7,
                },
            },
        ] {
            let decoded =
                executor_from_json(&executor_to_json(&executor), "executor").unwrap();
            assert_eq!(decoded, executor);
        }

        // A streaming knob on a one-shot executor fails loudly.
        let mut map = Map::new();
        map.insert("mode".to_string(), Value::String("one_shot".to_string()));
        map.insert("reservoir_size".to_string(), Value::from(100usize));
        let err = executor_from_json(&Value::Object(map), "executor").unwrap_err();
        assert_eq!(err.field, "executor.reservoir_size");
        assert_eq!(err.message, "unknown field");
    }

    #[test]
    fn points_round_trip_including_non_finite_metrics() {
        let points = vec![
            Point::new(vec![1.0, f64::INFINITY], vec!["a".to_string(), "b".to_string()]),
            Point::new(vec![-2.5, 0.0], vec!["c".to_string(), "d".to_string()]),
        ];
        let decoded = points_from_json(&points_to_json(&points), "points").unwrap();
        assert_eq!(decoded, points);

        let mut map = Map::new();
        map.insert("metric".to_string(), Value::Array(vec![]));
        let err = point_from_json(&Value::Object(map), "points[0]").unwrap_err();
        assert_eq!(err.field, "points[0].metric");
        assert_eq!(err.message, "unknown field");
    }

    #[test]
    fn decode_errors_name_the_failing_field() {
        let mut value = report_to_json(&sample_report());
        value
            .as_object_mut()
            .unwrap()
            .insert("num_outliers".to_string(), Value::String("many".to_string()));
        let err = report_from_json(&value).unwrap_err();
        assert_eq!(err.field, "report.num_outliers");

        let err = report_from_str("{}").unwrap_err();
        assert!(err.field.starts_with("report."), "{err}");
        assert_eq!(err.message, "missing field");
    }
}
