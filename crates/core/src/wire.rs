//! Wire (de)serialization of [`MdpReport`] over the vendored `serde_json`.
//!
//! ROADMAP item 4 (process-boundary scale-out) needs query results and
//! mergeable state to cross process boundaries; this module is the report
//! half of that protocol: [`report_to_json`] / [`report_from_json`] convert a
//! full [`MdpReport`] — explanations with items and statistics, counters,
//! retained scores and outlier rows, and recursive partition detail — to and
//! from a [`serde_json::Value`], and [`report_to_string`] /
//! [`report_from_str`] do the same against JSON text.
//!
//! The encoding is loss-free for every representable report: non-finite
//! statistics (an infinite risk ratio is routine when a combination never
//! occurs among inliers) are encoded as the strings `"Infinity"`,
//! `"-Infinity"`, and `"NaN"` because JSON numbers cannot carry them. `NaN`
//! round-trips structurally but compares unequal to itself, as always.
//!
//! ```
//! use macrobase_core::query::{Executor, MdpQuery};
//! use macrobase_core::types::Point;
//! use macrobase_core::wire::{report_from_str, report_to_string};
//!
//! let mut points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("d{}", i % 20)))
//!     .collect();
//! for i in 0..20 {
//!     points[i * 100] = Point::simple(90.0, "d13");
//! }
//! let mut query = MdpQuery::with_defaults();
//! let report = query.execute(&Executor::OneShot, &points).unwrap();
//! let decoded = report_from_str(&report_to_string(&report)).unwrap();
//! assert_eq!(decoded, report);
//! ```

use crate::types::{MdpReport, RenderedExplanation};
use mb_explain::risk_ratio::ExplanationStats;
use mb_fpgrowth::Item;
use mb_obs::{HistogramSnapshot, QueryTrace, StageTrace};
use serde_json::{Map, Value};

/// Error produced when decoding a report from JSON that does not match the
/// wire schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Dotted path of the field that failed to decode (e.g.
    /// `explanations[2].stats.risk_ratio`).
    pub field: String,
    /// What went wrong.
    pub message: String,
}

impl WireError {
    fn new(field: impl Into<String>, message: impl Into<String>) -> Self {
        WireError {
            field: field.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error at {}: {}", self.field, self.message)
    }
}

impl std::error::Error for WireError {}

/// Encode an `f64`, representing non-finite values (JSON has no NaN or
/// infinities) as the strings `"Infinity"` / `"-Infinity"` / `"NaN"`.
fn f64_to_value(v: f64) -> Value {
    if v.is_finite() {
        Value::from(v)
    } else if v.is_nan() {
        Value::String("NaN".to_string())
    } else if v > 0.0 {
        Value::String("Infinity".to_string())
    } else {
        Value::String("-Infinity".to_string())
    }
}

fn f64_from_value(value: &Value, field: &str) -> Result<f64, WireError> {
    if let Some(n) = value.as_f64() {
        return Ok(n);
    }
    match value.as_str() {
        Some("Infinity") => Ok(f64::INFINITY),
        Some("-Infinity") => Ok(f64::NEG_INFINITY),
        Some("NaN") => Ok(f64::NAN),
        _ => Err(WireError::new(field, "expected a number")),
    }
}

fn usize_from_value(value: &Value, field: &str) -> Result<usize, WireError> {
    let n = value
        .as_f64()
        .ok_or_else(|| WireError::new(field, "expected an integer"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(WireError::new(field, "expected a non-negative integer"));
    }
    Ok(n as usize)
}

fn u64_from_value(value: &Value, field: &str) -> Result<u64, WireError> {
    let n = value
        .as_f64()
        .ok_or_else(|| WireError::new(field, "expected an integer"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(WireError::new(field, "expected a non-negative integer"));
    }
    Ok(n as u64)
}

fn string_from_value(value: &Value, field: &str) -> Result<String, WireError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::new(field, "expected a string"))
}

fn array<'a>(value: &'a Value, field: &str) -> Result<&'a [Value], WireError> {
    match value {
        Value::Array(items) => Ok(items),
        _ => Err(WireError::new(field, "expected an array")),
    }
}

fn field<'a>(map: &'a Map, field_name: &str, context: &str) -> Result<&'a Value, WireError> {
    map.get(field_name)
        .ok_or_else(|| WireError::new(format!("{context}{field_name}"), "missing field"))
}

fn stats_to_json(stats: &ExplanationStats) -> Value {
    let mut map = Map::new();
    map.insert("outlier_count".to_string(), f64_to_value(stats.outlier_count));
    map.insert("inlier_count".to_string(), f64_to_value(stats.inlier_count));
    map.insert(
        "outlier_support".to_string(),
        f64_to_value(stats.outlier_support),
    );
    map.insert("risk_ratio".to_string(), f64_to_value(stats.risk_ratio));
    map.insert(
        "total_outliers".to_string(),
        f64_to_value(stats.total_outliers),
    );
    map.insert(
        "total_inliers".to_string(),
        f64_to_value(stats.total_inliers),
    );
    Value::Object(map)
}

fn stats_from_json(value: &Value, context: &str) -> Result<ExplanationStats, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a stats object"))?;
    let get = |name: &str| -> Result<f64, WireError> {
        f64_from_value(
            field(map, name, &format!("{context}."))?,
            &format!("{context}.{name}"),
        )
    };
    Ok(ExplanationStats {
        outlier_count: get("outlier_count")?,
        inlier_count: get("inlier_count")?,
        outlier_support: get("outlier_support")?,
        risk_ratio: get("risk_ratio")?,
        total_outliers: get("total_outliers")?,
        total_inliers: get("total_inliers")?,
    })
}

fn explanation_to_json(explanation: &RenderedExplanation) -> Value {
    let mut map = Map::new();
    map.insert(
        "attributes".to_string(),
        Value::Array(
            explanation
                .attributes
                .iter()
                .map(|a| Value::String(a.clone()))
                .collect(),
        ),
    );
    map.insert(
        "items".to_string(),
        Value::Array(explanation.items.iter().map(|&i| Value::from(i)).collect()),
    );
    map.insert("stats".to_string(), stats_to_json(&explanation.stats));
    Value::Object(map)
}

fn explanation_from_json(
    value: &Value,
    context: &str,
) -> Result<RenderedExplanation, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected an explanation object"))?;
    let attributes = array(
        field(map, "attributes", &format!("{context}."))?,
        &format!("{context}.attributes"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| WireError::new(format!("{context}.attributes[{i}]"), "expected a string"))
    })
    .collect::<Result<Vec<String>, WireError>>()?;
    let items = array(
        field(map, "items", &format!("{context}."))?,
        &format!("{context}.items"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        let item_field = format!("{context}.items[{i}]");
        let n = usize_from_value(v, &item_field)?;
        Item::try_from(n).map_err(|_| WireError::new(item_field, "item id out of range"))
    })
    .collect::<Result<Vec<Item>, WireError>>()?;
    let stats = stats_from_json(
        field(map, "stats", &format!("{context}."))?,
        &format!("{context}.stats"),
    )?;
    Ok(RenderedExplanation {
        attributes,
        items,
        stats,
    })
}

fn stage_to_json(stage: &StageTrace) -> Value {
    let mut map = Map::new();
    map.insert("stage".to_string(), Value::String(stage.stage.clone()));
    map.insert("wall_ns".to_string(), Value::from(stage.wall_ns));
    map.insert("rows_in".to_string(), Value::from(stage.rows_in));
    map.insert("rows_out".to_string(), Value::from(stage.rows_out));
    map.insert("batches".to_string(), Value::from(stage.batches));
    Value::Object(map)
}

fn stage_from_json(value: &Value, context: &str) -> Result<StageTrace, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a stage object"))?;
    let prefix = format!("{context}.");
    let get = |name: &str| -> Result<u64, WireError> {
        u64_from_value(field(map, name, &prefix)?, &format!("{context}.{name}"))
    };
    Ok(StageTrace {
        stage: string_from_value(field(map, "stage", &prefix)?, &format!("{context}.stage"))?,
        wall_ns: get("wall_ns")?,
        rows_in: get("rows_in")?,
        rows_out: get("rows_out")?,
        batches: get("batches")?,
    })
}

fn histogram_to_json(snapshot: &HistogramSnapshot) -> Value {
    let mut map = Map::new();
    map.insert("name".to_string(), Value::String(snapshot.name.clone()));
    map.insert("count".to_string(), Value::from(snapshot.count));
    map.insert("sum_ns".to_string(), Value::from(snapshot.sum_ns));
    map.insert("max_ns".to_string(), Value::from(snapshot.max_ns));
    map.insert(
        "buckets".to_string(),
        Value::Array(
            snapshot
                .buckets
                .iter()
                .map(|&(exp, count)| {
                    Value::Array(vec![Value::from(exp), Value::from(count)])
                })
                .collect(),
        ),
    );
    Value::Object(map)
}

fn histogram_from_json(value: &Value, context: &str) -> Result<HistogramSnapshot, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a histogram object"))?;
    let prefix = format!("{context}.");
    let buckets = array(
        field(map, "buckets", &prefix)?,
        &format!("{context}.buckets"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        let bucket_field = format!("{context}.buckets[{i}]");
        let pair = array(v, &bucket_field)?;
        if pair.len() != 2 {
            return Err(WireError::new(bucket_field, "expected an [exponent, count] pair"));
        }
        let exp = u64_from_value(&pair[0], &format!("{bucket_field}[0]"))?;
        let exp = u32::try_from(exp)
            .map_err(|_| WireError::new(format!("{bucket_field}[0]"), "exponent out of range"))?;
        let count = u64_from_value(&pair[1], &format!("{bucket_field}[1]"))?;
        Ok((exp, count))
    })
    .collect::<Result<Vec<(u32, u64)>, WireError>>()?;
    Ok(HistogramSnapshot {
        name: string_from_value(field(map, "name", &prefix)?, &format!("{context}.name"))?,
        count: u64_from_value(field(map, "count", &prefix)?, &format!("{context}.count"))?,
        sum_ns: u64_from_value(field(map, "sum_ns", &prefix)?, &format!("{context}.sum_ns"))?,
        max_ns: u64_from_value(field(map, "max_ns", &prefix)?, &format!("{context}.max_ns"))?,
        buckets,
    })
}

fn trace_to_json(trace: &QueryTrace) -> Value {
    let mut map = Map::new();
    map.insert("executor".to_string(), Value::String(trace.executor.clone()));
    map.insert("partitions".to_string(), Value::from(trace.partitions));
    map.insert(
        "stages".to_string(),
        Value::Array(trace.stages.iter().map(stage_to_json).collect()),
    );
    map.insert(
        "counters".to_string(),
        Value::Array(
            trace
                .counters
                .iter()
                .map(|(name, v)| {
                    Value::Array(vec![Value::String(name.clone()), Value::from(*v)])
                })
                .collect(),
        ),
    );
    map.insert(
        "gauges".to_string(),
        Value::Array(
            trace
                .gauges
                .iter()
                .map(|(name, v)| {
                    Value::Array(vec![Value::String(name.clone()), f64_to_value(*v)])
                })
                .collect(),
        ),
    );
    map.insert(
        "histograms".to_string(),
        Value::Array(trace.histograms.iter().map(histogram_to_json).collect()),
    );
    Value::Object(map)
}

fn trace_from_json(value: &Value, context: &str) -> Result<QueryTrace, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a trace object"))?;
    let prefix = format!("{context}.");
    let stages = array(field(map, "stages", &prefix)?, &format!("{context}.stages"))?
        .iter()
        .enumerate()
        .map(|(i, v)| stage_from_json(v, &format!("{context}.stages[{i}]")))
        .collect::<Result<Vec<StageTrace>, WireError>>()?;
    let counters = array(
        field(map, "counters", &prefix)?,
        &format!("{context}.counters"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| {
        let pair_field = format!("{context}.counters[{i}]");
        let pair = array(v, &pair_field)?;
        if pair.len() != 2 {
            return Err(WireError::new(pair_field, "expected a [name, value] pair"));
        }
        Ok((
            string_from_value(&pair[0], &format!("{pair_field}[0]"))?,
            u64_from_value(&pair[1], &format!("{pair_field}[1]"))?,
        ))
    })
    .collect::<Result<Vec<(String, u64)>, WireError>>()?;
    let gauges = array(field(map, "gauges", &prefix)?, &format!("{context}.gauges"))?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let pair_field = format!("{context}.gauges[{i}]");
            let pair = array(v, &pair_field)?;
            if pair.len() != 2 {
                return Err(WireError::new(pair_field, "expected a [name, value] pair"));
            }
            Ok((
                string_from_value(&pair[0], &format!("{pair_field}[0]"))?,
                f64_from_value(&pair[1], &format!("{pair_field}[1]"))?,
            ))
        })
        .collect::<Result<Vec<(String, f64)>, WireError>>()?;
    let histograms = array(
        field(map, "histograms", &prefix)?,
        &format!("{context}.histograms"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| histogram_from_json(v, &format!("{context}.histograms[{i}]")))
    .collect::<Result<Vec<HistogramSnapshot>, WireError>>()?;
    Ok(QueryTrace {
        executor: string_from_value(
            field(map, "executor", &prefix)?,
            &format!("{context}.executor"),
        )?,
        partitions: u64_from_value(
            field(map, "partitions", &prefix)?,
            &format!("{context}.partitions"),
        )?,
        stages,
        counters,
        gauges,
        histograms,
    })
}

/// Encode a report (including recursive partition detail) as a JSON value.
pub fn report_to_json(report: &MdpReport) -> Value {
    let mut map = Map::new();
    map.insert("num_points".to_string(), Value::from(report.num_points));
    map.insert("num_outliers".to_string(), Value::from(report.num_outliers));
    map.insert(
        "score_cutoff".to_string(),
        match report.score_cutoff {
            Some(cutoff) => f64_to_value(cutoff),
            None => Value::Null,
        },
    );
    map.insert(
        "scores".to_string(),
        Value::Array(report.scores.iter().map(|&s| f64_to_value(s)).collect()),
    );
    map.insert(
        "outlier_rows".to_string(),
        Value::Array(report.outlier_rows.iter().map(|&r| Value::from(r)).collect()),
    );
    map.insert(
        "explanations".to_string(),
        Value::Array(report.explanations.iter().map(explanation_to_json).collect()),
    );
    map.insert(
        "partition_reports".to_string(),
        match &report.partition_reports {
            Some(reports) => Value::Array(reports.iter().map(report_to_json).collect()),
            None => Value::Null,
        },
    );
    map.insert(
        "trace".to_string(),
        match &report.trace {
            Some(trace) => trace_to_json(trace),
            None => Value::Null,
        },
    );
    Value::Object(map)
}

/// Decode a report from a JSON value produced by [`report_to_json`].
pub fn report_from_json(value: &Value) -> Result<MdpReport, WireError> {
    report_from_json_at(value, "report")
}

fn report_from_json_at(value: &Value, context: &str) -> Result<MdpReport, WireError> {
    let map = value
        .as_object()
        .ok_or_else(|| WireError::new(context, "expected a report object"))?;
    let prefix = format!("{context}.");
    let num_points = usize_from_value(
        field(map, "num_points", &prefix)?,
        &format!("{context}.num_points"),
    )?;
    let num_outliers = usize_from_value(
        field(map, "num_outliers", &prefix)?,
        &format!("{context}.num_outliers"),
    )?;
    let score_cutoff = match field(map, "score_cutoff", &prefix)? {
        Value::Null => None,
        other => Some(f64_from_value(other, &format!("{context}.score_cutoff"))?),
    };
    let scores = array(field(map, "scores", &prefix)?, &format!("{context}.scores"))?
        .iter()
        .enumerate()
        .map(|(i, v)| f64_from_value(v, &format!("{context}.scores[{i}]")))
        .collect::<Result<Vec<f64>, WireError>>()?;
    let outlier_rows = array(
        field(map, "outlier_rows", &prefix)?,
        &format!("{context}.outlier_rows"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| usize_from_value(v, &format!("{context}.outlier_rows[{i}]")))
    .collect::<Result<Vec<usize>, WireError>>()?;
    let explanations = array(
        field(map, "explanations", &prefix)?,
        &format!("{context}.explanations"),
    )?
    .iter()
    .enumerate()
    .map(|(i, v)| explanation_from_json(v, &format!("{context}.explanations[{i}]")))
    .collect::<Result<Vec<RenderedExplanation>, WireError>>()?;
    let partition_reports = match field(map, "partition_reports", &prefix)? {
        Value::Null => None,
        other => Some(
            array(other, &format!("{context}.partition_reports"))?
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    report_from_json_at(v, &format!("{context}.partition_reports[{i}]"))
                })
                .collect::<Result<Vec<MdpReport>, WireError>>()?,
        ),
    };
    let trace = match field(map, "trace", &prefix)? {
        Value::Null => None,
        other => Some(trace_from_json(other, &format!("{context}.trace"))?),
    };
    Ok(MdpReport {
        explanations,
        num_points,
        num_outliers,
        score_cutoff,
        scores,
        outlier_rows,
        partition_reports,
        trace,
    })
}

/// Encode a report as JSON text.
pub fn report_to_string(report: &MdpReport) -> String {
    report_to_json(report).to_string()
}

/// Decode a report from JSON text produced by [`report_to_string`].
pub fn report_from_str(text: &str) -> Result<MdpReport, WireError> {
    let value = serde_json::from_str(text)
        .map_err(|e| WireError::new("report", format!("malformed JSON: {e}")))?;
    report_from_json(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MdpReport {
        MdpReport {
            explanations: vec![RenderedExplanation {
                attributes: vec!["device=d\"13\"".to_string(), "version=2.6".to_string()],
                items: vec![0, 7],
                stats: ExplanationStats {
                    outlier_count: 60.0,
                    inlier_count: 0.0,
                    outlier_support: 0.6,
                    risk_ratio: f64::INFINITY,
                    total_outliers: 100.0,
                    total_inliers: 9_900.0,
                },
            }],
            num_points: 10_000,
            num_outliers: 100,
            score_cutoff: Some(3.25),
            scores: vec![0.5, 12.75, 0.125],
            outlier_rows: vec![1, 4_096],
            partition_reports: None,
            trace: None,
        }
    }

    #[test]
    fn report_round_trips_through_text() {
        let report = sample_report();
        let decoded = report_from_str(&report_to_string(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn partition_detail_round_trips_recursively() {
        let mut outer = sample_report();
        let mut inner = sample_report();
        inner.partition_reports = None;
        inner.score_cutoff = None;
        outer.partition_reports = Some(vec![inner.clone(), inner]);
        let decoded = report_from_str(&report_to_string(&outer)).unwrap();
        assert_eq!(decoded, outer);
    }

    #[test]
    fn non_finite_statistics_survive_the_wire() {
        let mut report = sample_report();
        report.explanations[0].stats.risk_ratio = f64::NEG_INFINITY;
        let decoded = report_from_str(&report_to_string(&report)).unwrap();
        assert_eq!(
            decoded.explanations[0].stats.risk_ratio,
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn decode_errors_name_the_failing_field() {
        let mut value = report_to_json(&sample_report());
        value
            .as_object_mut()
            .unwrap()
            .insert("num_outliers".to_string(), Value::String("many".to_string()));
        let err = report_from_json(&value).unwrap_err();
        assert_eq!(err.field, "report.num_outliers");

        let err = report_from_str("{}").unwrap_err();
        assert!(err.field.starts_with("report."), "{err}");
        assert_eq!(err.message, "missing field");
    }
}
