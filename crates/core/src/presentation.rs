//! Presentation of MDP reports (Section 3.2, stage 5).
//!
//! MacroBase delivers ranked explanations to downstream consumers via a REST
//! API or GUI; here the equivalent is a plain-text report renderer (for CLI
//! examples and bench output) plus a compact machine-readable summary type.

use crate::types::MdpReport;

/// Render the top `top_k` explanations of a report as an aligned text table.
pub fn render_report(report: &MdpReport, top_k: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "MacroBase report: {} points, {} outliers ({:.3}%), cutoff {}\n",
        report.num_points,
        report.num_outliers,
        100.0 * report.outlier_fraction(),
        report
            .score_cutoff
            .map(|c| format!("{c:.3}"))
            .unwrap_or_else(|| "n/a".to_string())
    ));
    if report.explanations.is_empty() {
        out.push_str("  (no explanations above thresholds)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<55} {:>12} {:>10} {:>10}\n",
        "attributes", "risk ratio", "support", "outliers"
    ));
    for e in report.explanations.iter().take(top_k) {
        let attrs = e.attributes.join(", ");
        let attrs = if attrs.len() > 53 {
            format!("{}…", &attrs[..52])
        } else {
            attrs
        };
        let ratio = if e.stats.risk_ratio.is_infinite() {
            "inf".to_string()
        } else {
            format!("{:.2}", e.stats.risk_ratio)
        };
        out.push_str(&format!(
            "{:<55} {:>12} {:>9.2}% {:>10.0}\n",
            attrs,
            ratio,
            100.0 * e.stats.outlier_support,
            e.stats.outlier_count
        ));
    }
    if report.explanations.len() > top_k {
        out.push_str(&format!(
            "  … and {} more explanations\n",
            report.explanations.len() - top_k
        ));
    }
    out
}

/// A compact, serializable summary row (used by the experiment harness to
/// emit one JSON object per query).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// Number of points processed.
    pub num_points: usize,
    /// Number of outliers.
    pub num_outliers: usize,
    /// Number of explanations produced.
    pub num_explanations: usize,
    /// Highest risk ratio among explanations (0 if none; `f64::MAX` caps
    /// infinite ratios so the value stays representable in JSON).
    pub max_risk_ratio: f64,
}

impl ReportSummary {
    /// Summarize a report.
    pub fn from_report(report: &MdpReport) -> Self {
        let max_risk_ratio = report
            .explanations
            .iter()
            .map(|e| {
                if e.stats.risk_ratio.is_finite() {
                    e.stats.risk_ratio
                } else {
                    f64::MAX
                }
            })
            .fold(0.0, f64::max);
        ReportSummary {
            num_points: report.num_points,
            num_outliers: report.num_outliers,
            num_explanations: report.explanations.len(),
            max_risk_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RenderedExplanation;
    use mb_explain::risk_ratio::ExplanationStats;

    fn sample_report() -> MdpReport {
        MdpReport {
            explanations: vec![
                RenderedExplanation {
                    attributes: vec!["device=B264".to_string(), "version=2.26.3".to_string()],
                    items: vec![0, 1],
                    stats: ExplanationStats::from_counts(60.0, 10.0, 100.0, 10_000.0),
                },
                RenderedExplanation {
                    attributes: vec!["device=X".to_string()],
                    items: vec![2],
                    stats: ExplanationStats::from_counts(5.0, 0.0, 100.0, 10_000.0),
                },
            ],
            num_points: 10_100,
            num_outliers: 100,
            score_cutoff: Some(3.2),
            scores: vec![],
            outlier_rows: vec![],
            partition_reports: None,
            trace: None,
        }
    }

    #[test]
    fn render_contains_key_fields() {
        let text = render_report(&sample_report(), 10);
        assert!(text.contains("10100 points"));
        assert!(text.contains("100 outliers"));
        assert!(text.contains("device=B264"));
        assert!(text.contains("risk ratio"));
    }

    #[test]
    fn render_truncates_to_top_k() {
        let text = render_report(&sample_report(), 1);
        assert!(text.contains("device=B264"));
        assert!(!text.contains("device=X"));
        assert!(text.contains("1 more explanation"));
    }

    #[test]
    fn render_handles_empty_report() {
        let report = MdpReport {
            explanations: vec![],
            num_points: 10,
            num_outliers: 0,
            score_cutoff: None,
            scores: vec![],
            outlier_rows: vec![],
            partition_reports: None,
            trace: None,
        };
        let text = render_report(&report, 5);
        assert!(text.contains("no explanations"));
        assert!(text.contains("n/a"));
    }

    #[test]
    fn summary_caps_infinite_ratios() {
        let report = sample_report();
        let summary = ReportSummary::from_report(&report);
        assert_eq!(summary.num_explanations, 2);
        assert_eq!(summary.num_outliers, 100);
        assert!(summary.max_risk_ratio > 0.0);
        assert!(summary.max_risk_ratio.is_finite());
    }
}
