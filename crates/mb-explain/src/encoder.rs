//! Dictionary encoding of attribute values.
//!
//! MacroBase points carry categorical attributes as strings (device ID,
//! firmware version, ...). The itemset miners work over dense `u32` item
//! ids, so the explanation layer interns each distinct (attribute column,
//! value) pair once and translates back when rendering explanations to users.

use mb_fpgrowth::Item;
use std::collections::HashMap;

/// A decoded attribute: which column it came from and its string value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttributeValue {
    /// Index of the attribute column in the point schema.
    pub column: usize,
    /// The attribute's categorical value.
    pub value: String,
}

impl AttributeValue {
    /// Create an attribute value.
    pub fn new(column: usize, value: impl Into<String>) -> Self {
        AttributeValue {
            column,
            value: value.into(),
        }
    }
}

impl std::fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attr{}={}", self.column, self.value)
    }
}

/// Bidirectional mapping between attribute values and dense item ids.
#[derive(Debug, Clone, Default)]
pub struct AttributeEncoder {
    forward: HashMap<AttributeValue, Item>,
    reverse: Vec<AttributeValue>,
    /// Optional human-readable column names for display.
    column_names: Vec<String>,
}

impl AttributeEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an encoder with named columns (used when rendering).
    pub fn with_column_names(names: Vec<String>) -> Self {
        AttributeEncoder {
            forward: HashMap::new(),
            reverse: Vec::new(),
            column_names: names,
        }
    }

    /// Intern one (column, value) pair, returning its item id.
    pub fn encode(&mut self, column: usize, value: &str) -> Item {
        let key = AttributeValue::new(column, value);
        if let Some(&item) = self.forward.get(&key) {
            return item;
        }
        let item = self.reverse.len() as Item;
        self.forward.insert(key.clone(), item);
        self.reverse.push(key);
        item
    }

    /// Encode all attributes of one point (one value per column, in order).
    pub fn encode_point(&mut self, attributes: &[String]) -> Vec<Item> {
        attributes
            .iter()
            .enumerate()
            .map(|(column, value)| self.encode(column, value))
            .collect()
    }

    /// Look up an item id without interning; `None` if never seen.
    pub fn lookup(&self, column: usize, value: &str) -> Option<Item> {
        self.forward.get(&AttributeValue::new(column, value)).copied()
    }

    /// Decode an item id back to its attribute value.
    pub fn decode(&self, item: Item) -> Option<&AttributeValue> {
        self.reverse.get(item as usize)
    }

    /// Decode a whole itemset into human-readable `column=value` strings.
    pub fn describe(&self, items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|&item| match self.decode(item) {
                Some(av) => {
                    let column_name = self
                        .column_names
                        .get(av.column)
                        .cloned()
                        .unwrap_or_else(|| format!("attr{}", av.column));
                    format!("{}={}", column_name, av.value)
                }
                None => format!("<unknown item {item}>"),
            })
            .collect()
    }

    /// Number of distinct attribute values interned so far.
    pub fn cardinality(&self) -> usize {
        self.reverse.len()
    }

    /// The configured column names (may be empty).
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut enc = AttributeEncoder::new();
        let a = enc.encode(0, "iPhone6");
        let b = enc.encode(0, "iPhone6");
        assert_eq!(a, b);
        assert_eq!(enc.cardinality(), 1);
    }

    #[test]
    fn same_value_different_columns_are_distinct() {
        let mut enc = AttributeEncoder::new();
        let a = enc.encode(0, "42");
        let b = enc.encode(1, "42");
        assert_ne!(a, b);
        assert_eq!(enc.cardinality(), 2);
    }

    #[test]
    fn round_trip_decode() {
        let mut enc = AttributeEncoder::new();
        let item = enc.encode(2, "v2.26.3");
        let decoded = enc.decode(item).unwrap();
        assert_eq!(decoded.column, 2);
        assert_eq!(decoded.value, "v2.26.3");
        assert_eq!(enc.decode(999), None);
    }

    #[test]
    fn encode_point_assigns_columns_in_order() {
        let mut enc = AttributeEncoder::new();
        let items = enc.encode_point(&["B264".to_string(), "2.26.3".to_string()]);
        assert_eq!(items.len(), 2);
        assert_eq!(enc.decode(items[0]).unwrap().column, 0);
        assert_eq!(enc.decode(items[1]).unwrap().column, 1);
    }

    #[test]
    fn describe_uses_column_names() {
        let mut enc = AttributeEncoder::with_column_names(vec![
            "device_type".to_string(),
            "app_version".to_string(),
        ]);
        let items = enc.encode_point(&["B264".to_string(), "2.26.3".to_string()]);
        let described = enc.describe(&items);
        assert_eq!(described, vec!["device_type=B264", "app_version=2.26.3"]);
    }

    #[test]
    fn describe_falls_back_without_names() {
        let mut enc = AttributeEncoder::new();
        let item = enc.encode(3, "x");
        assert_eq!(enc.describe(&[item]), vec!["attr3=x"]);
        assert_eq!(enc.describe(&[57]), vec!["<unknown item 57>"]);
    }

    #[test]
    fn lookup_does_not_intern() {
        let enc = AttributeEncoder::new();
        assert_eq!(enc.lookup(0, "nope"), None);
        assert_eq!(enc.cardinality(), 0);
    }
}
