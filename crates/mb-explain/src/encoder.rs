//! Dictionary encoding of attribute values.
//!
//! MacroBase points carry categorical attributes as strings (device ID,
//! firmware version, ...). The itemset miners work over dense `u32` item
//! ids, so the explanation layer interns each distinct (attribute column,
//! value) pair once and translates back when rendering explanations to users.
//!
//! For large batches, [`encode_rows_parallel`] shards the encode pass across
//! the work-stealing pool: each shard interns misses into a private local
//! dictionary, and the locals merge into the shared [`AttributeEncoder`] the
//! same way the sketches merge — except the merge is ordered by each value's
//! first occurrence in the input, so the assigned item ids (and therefore
//! every downstream count, tree, and explanation) are *identical* to what a
//! serial [`AttributeEncoder::encode_point`] loop would have produced.

use crate::items::ItemBatch;
use mb_fpgrowth::Item;
use std::collections::HashMap;

/// A decoded attribute: which column it came from and its string value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttributeValue {
    /// Index of the attribute column in the point schema.
    pub column: usize,
    /// The attribute's categorical value.
    pub value: String,
}

impl AttributeValue {
    /// Create an attribute value.
    pub fn new(column: usize, value: impl Into<String>) -> Self {
        AttributeValue {
            column,
            value: value.into(),
        }
    }
}

impl std::fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attr{}={}", self.column, self.value)
    }
}

/// FNV-1a over the column index and the value bytes. Fixed constants — the
/// hash is a pure function of the key, so two encoders built from the same
/// stream are identical, thread count notwithstanding.
fn key_hash(column: usize, value: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in (column as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in value.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Open-addressing index from key hash to item id, resolved against the
/// encoder's `reverse` table. Keys are *not* stored here — the interned
/// `AttributeValue` in `reverse` is the single allocation per distinct
/// value, and probes compare the cached hash before touching the strings.
#[derive(Debug, Clone, Default)]
struct IndexTable {
    /// `(hash, item)` slots; `Item::MAX` marks an empty slot. Capacity is a
    /// power of two (zero when empty).
    slots: Vec<(u64, Item)>,
    len: usize,
}

const EMPTY_SLOT: Item = Item::MAX;

impl IndexTable {
    fn find(&self, hash: u64, mut eq: impl FnMut(Item) -> bool) -> Option<Item> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, item) = self.slots[i];
            if item == EMPTY_SLOT {
                return None;
            }
            if h == hash && eq(item) {
                return Some(item);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert a hash/item pair known to be absent, growing at 7/8 load.
    fn insert(&mut self, hash: u64, item: Item) {
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i].1 != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = (hash, item);
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY_SLOT); new_cap]);
        let mask = new_cap - 1;
        for (h, item) in old {
            if item != EMPTY_SLOT {
                let mut i = (h as usize) & mask;
                while self.slots[i].1 != EMPTY_SLOT {
                    i = (i + 1) & mask;
                }
                self.slots[i] = (h, item);
            }
        }
    }
}

/// Bidirectional mapping between attribute values and dense item ids.
///
/// The forward direction is an open-addressing hash index resolved against
/// the `reverse` table, so the hot path — encoding a value already in the
/// dictionary — allocates nothing and never builds a temporary key: it
/// hashes the borrowed `&str`, probes, and compares in place. Each distinct
/// value is allocated exactly once, when first interned.
#[derive(Debug, Clone, Default)]
pub struct AttributeEncoder {
    index: IndexTable,
    reverse: Vec<AttributeValue>,
    /// Optional human-readable column names for display.
    column_names: Vec<String>,
}

impl AttributeEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an encoder with named columns (used when rendering).
    pub fn with_column_names(names: Vec<String>) -> Self {
        AttributeEncoder {
            column_names: names,
            ..Self::default()
        }
    }

    /// Intern one (column, value) pair, returning its item id.
    pub fn encode(&mut self, column: usize, value: &str) -> Item {
        let hash = key_hash(column, value);
        let reverse = &self.reverse;
        if let Some(item) = self.index.find(hash, |item| {
            let av = &reverse[item as usize];
            av.column == column && av.value == value
        }) {
            return item;
        }
        let item = self.reverse.len() as Item;
        self.reverse.push(AttributeValue {
            column,
            value: value.to_owned(),
        });
        self.index.insert(hash, item);
        item
    }

    /// Encode all attributes of one point (one value per column, in order).
    pub fn encode_point(&mut self, attributes: &[String]) -> Vec<Item> {
        attributes
            .iter()
            .enumerate()
            .map(|(column, value)| self.encode(column, value))
            .collect()
    }

    /// Encode one point's attributes into a caller-owned scratch buffer
    /// (cleared first), so per-point streaming paths reuse one allocation.
    pub fn encode_point_into(&mut self, attributes: &[String], out: &mut Vec<Item>) {
        out.clear();
        out.extend(
            attributes
                .iter()
                .enumerate()
                .map(|(column, value)| self.encode(column, value)),
        );
    }

    /// Look up an item id without interning; `None` if never seen.
    pub fn lookup(&self, column: usize, value: &str) -> Option<Item> {
        let hash = key_hash(column, value);
        let reverse = &self.reverse;
        self.index.find(hash, |item| {
            let av = &reverse[item as usize];
            av.column == column && av.value == value
        })
    }

    /// Decode an item id back to its attribute value.
    pub fn decode(&self, item: Item) -> Option<&AttributeValue> {
        self.reverse.get(item as usize)
    }

    /// Decode a whole itemset into human-readable `column=value` strings.
    pub fn describe(&self, items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|&item| match self.decode(item) {
                Some(av) => {
                    let column_name = self
                        .column_names
                        .get(av.column)
                        .cloned()
                        .unwrap_or_else(|| format!("attr{}", av.column));
                    format!("{}={}", column_name, av.value)
                }
                None => format!("<unknown item {item}>"),
            })
            .collect()
    }

    /// Number of distinct attribute values interned so far.
    pub fn cardinality(&self) -> usize {
        self.reverse.len()
    }

    /// The configured column names (may be empty).
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }
}

/// One shard's private output from the parallel encode pass: a columnar
/// transaction batch with provisional item ids, plus the dictionary entries
/// the shard minted (each with the global row index of its first
/// occurrence).
struct ShardEncode {
    batch: ItemBatch,
    /// Minted entries in local-id order; `.1` is the first global row index
    /// at which the shard saw the value.
    minted: Vec<(AttributeValue, usize)>,
}

/// Encode `rows` into one columnar [`ItemBatch`] in parallel shards on
/// `pool`, interning any new attribute values into `encoder`.
///
/// Each shard reads the pre-existing dictionary lock-free (shared
/// reference) and mints provisional ids for misses in a private local
/// dictionary. The shard dictionaries then merge into `encoder` ordered by
/// first occurrence (row, then column), which makes the id assignment —
/// and hence the returned batch — byte-identical to a serial
/// [`AttributeEncoder::encode_point`] loop over `rows`, for any shard count
/// and any thread interleaving. Finally the provisional ids are rewritten
/// to their merged ids, again in parallel, over the flat item arrays.
pub fn encode_batch_parallel<R>(
    encoder: &mut AttributeEncoder,
    pool: &mb_pool::Pool,
    rows: &[R],
    num_shards: usize,
) -> ItemBatch
where
    R: AsRef<[String]> + Sync,
{
    let base = encoder.cardinality() as Item;
    let num_shards = num_shards.clamp(1, rows.len().max(1));
    let shard_size = rows.len().div_ceil(num_shards).max(1);

    // Scatter: encode each shard against the frozen global dictionary plus
    // a private dictionary for misses. Provisional ids for misses start at
    // `base`, so "miss" is recognizable downstream as `id >= base`.
    let shard_inputs: Vec<(usize, &[R])> = rows
        .chunks(shard_size)
        .enumerate()
        .map(|(i, chunk)| (i * shard_size, chunk))
        .collect();
    let frozen = &*encoder;
    let mut shards: Vec<ShardEncode> = pool.map_vec(shard_inputs, |(offset, shard_rows)| {
        let mut local = AttributeEncoder::new();
        let mut first_rows: Vec<usize> = Vec::new();
        let columns = shard_rows.first().map_or(0, |r| r.as_ref().len());
        let mut batch = ItemBatch::with_capacity(shard_rows.len(), columns);
        for (row_in_shard, row) in shard_rows.iter().enumerate() {
            for (column, value) in row.as_ref().iter().enumerate() {
                if let Some(item) = frozen.lookup(column, value) {
                    batch.push_item(item);
                    continue;
                }
                let before = local.cardinality();
                let provisional = local.encode(column, value);
                if local.cardinality() > before {
                    first_rows.push(offset + row_in_shard);
                }
                batch.push_item(base + provisional);
            }
            batch.finish_row();
        }
        // The local dictionary's reverse table is exactly the minted values
        // in provisional-id order.
        let minted = local.reverse.into_iter().zip(first_rows).collect();
        ShardEncode { batch, minted }
    });

    // Merge dictionaries: dedupe the minted values across shards keeping the
    // earliest occurrence, then intern into `encoder` ordered by (first row,
    // column) — exactly the order a serial pass discovers values in. (Two
    // distinct new values can share a row only in distinct columns, so the
    // order is total.)
    let mut first_seen: HashMap<&AttributeValue, usize> = HashMap::new();
    for shard in &shards {
        for (key, row) in &shard.minted {
            first_seen
                .entry(key)
                .and_modify(|earliest| *earliest = (*earliest).min(*row))
                .or_insert(*row);
        }
    }
    let mut ordered: Vec<(&AttributeValue, usize)> =
        first_seen.iter().map(|(&key, &row)| (key, row)).collect(); // mb-lint: allow(hashmap-order-hazard) -- sorted by (first row, column) on the next line, a unique key
    ordered.sort_by_key(|&(key, row)| (row, key.column));
    for (key, _) in &ordered {
        encoder.encode(key.column, &key.value);
    }

    // Gather: rewrite each shard's provisional ids to merged ids in
    // parallel over the flat item arrays, then concatenate the shard
    // batches in shard (= row) order.
    let remaps: Vec<Vec<Item>> = shards
        .iter()
        .map(|shard| {
            shard
                .minted
                .iter()
                .map(|(key, _)| {
                    encoder
                        .lookup(key.column, &key.value)
                        .expect("merged dictionary entry missing")
                })
                .collect()
        })
        .collect();
    let shard_work: Vec<(ShardEncode, &Vec<Item>)> = shards.drain(..).zip(remaps.iter()).collect();
    let rewritten: Vec<ItemBatch> = pool.map_vec(shard_work, |(mut shard, remap)| {
        for item in shard.batch.items_mut() {
            if *item >= base {
                *item = remap[(*item - base) as usize];
            }
        }
        shard.batch
    });
    let mut out = ItemBatch::with_capacity(
        rows.len(),
        rewritten.iter().map(ItemBatch::num_items).sum::<usize>() / rows.len().max(1) + 1,
    );
    for shard in &rewritten {
        out.append(shard);
    }
    out
}

/// [`encode_batch_parallel`] materialized into the row-major
/// `Vec<Vec<Item>>` layout, for callers that still need per-row vectors.
pub fn encode_rows_parallel<R>(
    encoder: &mut AttributeEncoder,
    pool: &mb_pool::Pool,
    rows: &[R],
    num_shards: usize,
) -> Vec<Vec<Item>>
where
    R: AsRef<[String]> + Sync,
{
    encode_batch_parallel(encoder, pool, rows, num_shards).to_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut enc = AttributeEncoder::new();
        let a = enc.encode(0, "iPhone6");
        let b = enc.encode(0, "iPhone6");
        assert_eq!(a, b);
        assert_eq!(enc.cardinality(), 1);
    }

    #[test]
    fn same_value_different_columns_are_distinct() {
        let mut enc = AttributeEncoder::new();
        let a = enc.encode(0, "42");
        let b = enc.encode(1, "42");
        assert_ne!(a, b);
        assert_eq!(enc.cardinality(), 2);
    }

    #[test]
    fn round_trip_decode() {
        let mut enc = AttributeEncoder::new();
        let item = enc.encode(2, "v2.26.3");
        let decoded = enc.decode(item).unwrap();
        assert_eq!(decoded.column, 2);
        assert_eq!(decoded.value, "v2.26.3");
        assert_eq!(enc.decode(999), None);
    }

    #[test]
    fn encode_point_assigns_columns_in_order() {
        let mut enc = AttributeEncoder::new();
        let items = enc.encode_point(&["B264".to_string(), "2.26.3".to_string()]);
        assert_eq!(items.len(), 2);
        assert_eq!(enc.decode(items[0]).unwrap().column, 0);
        assert_eq!(enc.decode(items[1]).unwrap().column, 1);
    }

    #[test]
    fn describe_uses_column_names() {
        let mut enc = AttributeEncoder::with_column_names(vec![
            "device_type".to_string(),
            "app_version".to_string(),
        ]);
        let items = enc.encode_point(&["B264".to_string(), "2.26.3".to_string()]);
        let described = enc.describe(&items);
        assert_eq!(described, vec!["device_type=B264", "app_version=2.26.3"]);
    }

    #[test]
    fn describe_falls_back_without_names() {
        let mut enc = AttributeEncoder::new();
        let item = enc.encode(3, "x");
        assert_eq!(enc.describe(&[item]), vec!["attr3=x"]);
        assert_eq!(enc.describe(&[57]), vec!["<unknown item 57>"]);
    }

    #[test]
    fn lookup_does_not_intern() {
        let enc = AttributeEncoder::new();
        assert_eq!(enc.lookup(0, "nope"), None);
        assert_eq!(enc.cardinality(), 0);
    }

    /// A mixed-cardinality workload where most values recur across shard
    /// boundaries and some are unique to one shard.
    fn attribute_rows(n: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                vec![
                    format!("device_{}", i % 37),
                    format!("version_{}", i % 5),
                    format!("row_tag_{}", i / 50),
                ]
            })
            .collect()
    }

    fn serial_reference(rows: &[Vec<String>]) -> (AttributeEncoder, Vec<Vec<Item>>) {
        let mut enc = AttributeEncoder::new();
        let txns = rows.iter().map(|row| enc.encode_point(row)).collect();
        (enc, txns)
    }

    #[test]
    fn parallel_encode_reproduces_serial_ids_exactly() {
        let rows = attribute_rows(2_000);
        let (serial_enc, serial_txns) = serial_reference(&rows);
        let pool = mb_pool::Pool::new(4);
        for shards in [1usize, 2, 3, 7, 16] {
            let mut enc = AttributeEncoder::new();
            let txns = encode_rows_parallel(&mut enc, &pool, &rows, shards);
            assert_eq!(txns, serial_txns, "transactions diverged at {shards} shards");
            assert_eq!(enc.cardinality(), serial_enc.cardinality());
            for item in 0..enc.cardinality() as Item {
                assert_eq!(
                    enc.decode(item),
                    serial_enc.decode(item),
                    "dictionary diverged at item {item} with {shards} shards"
                );
            }
        }
    }

    #[test]
    fn parallel_encode_respects_preexisting_entries() {
        let rows = attribute_rows(500);
        // Pre-intern a few values (as the streaming path may have done);
        // their ids must survive and the serial/parallel tails must agree.
        let mut serial_enc = AttributeEncoder::new();
        serial_enc.encode(0, "device_3");
        serial_enc.encode(2, "row_tag_0");
        let mut parallel_enc = serial_enc.clone();
        let serial_txns: Vec<Vec<Item>> =
            rows.iter().map(|row| serial_enc.encode_point(row)).collect();
        let pool = mb_pool::Pool::new(3);
        let parallel_txns = encode_rows_parallel(&mut parallel_enc, &pool, &rows, 5);
        assert_eq!(parallel_txns, serial_txns);
        assert_eq!(parallel_enc.cardinality(), serial_enc.cardinality());
        assert_eq!(parallel_enc.lookup(0, "device_3"), Some(0));
    }

    #[test]
    fn parallel_encode_handles_empty_and_tiny_inputs() {
        let pool = mb_pool::Pool::new(2);
        let mut enc = AttributeEncoder::new();
        let empty: Vec<Vec<String>> = Vec::new();
        assert!(encode_rows_parallel(&mut enc, &pool, &empty, 8).is_empty());
        assert_eq!(enc.cardinality(), 0);

        let one = vec![vec!["a".to_string(), "b".to_string()]];
        let txns = encode_rows_parallel(&mut enc, &pool, &one, 8);
        assert_eq!(txns, vec![vec![0, 1]]);
        assert_eq!(enc.cardinality(), 2);
    }

    #[test]
    fn parallel_encode_keeps_column_names() {
        let pool = mb_pool::Pool::new(2);
        let mut enc = AttributeEncoder::with_column_names(vec![
            "device_type".to_string(),
            "app_version".to_string(),
        ]);
        let rows = vec![
            vec!["B264".to_string(), "2.26.3".to_string()],
            vec!["B101".to_string(), "2.26.3".to_string()],
        ];
        let txns = encode_rows_parallel(&mut enc, &pool, &rows, 2);
        assert_eq!(
            enc.describe(&txns[0]),
            vec!["device_type=B264", "app_version=2.26.3"]
        );
    }
}
