//! Pre-render explanation state for coordinated partitioned execution.
//!
//! The naïve scale-out of Appendix D unions *rendered* explanations, which
//! over- or under-reports combinations straddling partitions: each partition
//! prunes by its own local support and risk ratio before any cross-partition
//! reconciliation can happen. [`ExplainState`] fixes this by capturing the
//! explainer's state *before* any thresholding or rendering — the encoded
//! itemset counts of each class (stored as weighted prefix trees) plus the
//! outlier/inlier totals. Partition states merge on items
//! ([`Mergeable::merge`]), and risk ratios are computed once from the merged
//! counts ([`crate::batch::BatchExplainer::explain_state`]), so the
//! coordinated result is exactly the one-shot result.

use mb_fpgrowth::cps::StreamingPrefixTree;
use mb_fpgrowth::Item;
use mb_sketch::Mergeable;

/// Thresholding-free explanation state: per-class itemset counts + totals.
///
/// Feed every classified point's encoded attribute items through
/// [`observe`], merge states across partitions, then hand the merged state
/// to [`crate::batch::BatchExplainer::explain_state`].
///
/// [`observe`]: ExplainState::observe
#[derive(Debug, Clone, Default)]
pub struct ExplainState {
    outlier_tree: StreamingPrefixTree,
    inlier_tree: StreamingPrefixTree,
    total_outliers: f64,
    total_inliers: f64,
}

impl ExplainState {
    /// Create an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one classified point's encoded attribute items.
    pub fn observe(&mut self, items: &[Item], is_outlier: bool) {
        if is_outlier {
            self.total_outliers += 1.0;
            if !items.is_empty() {
                self.outlier_tree.insert(items, 1.0);
            }
        } else {
            self.total_inliers += 1.0;
            if !items.is_empty() {
                self.inlier_tree.insert(items, 1.0);
            }
        }
    }

    /// Total outlier points observed (including attribute-less ones).
    pub fn total_outliers(&self) -> f64 {
        self.total_outliers
    }

    /// Total inlier points observed (including attribute-less ones).
    pub fn total_inliers(&self) -> f64 {
        self.total_inliers
    }

    /// Count of outlier points containing `item`.
    pub fn outlier_item_count(&self, item: Item) -> f64 {
        self.outlier_tree.item_count(item)
    }

    /// Count of inlier points containing `item`.
    pub fn inlier_item_count(&self, item: Item) -> f64 {
        self.inlier_tree.item_count(item)
    }

    /// The outlier class's deduplicated transactions with their weights.
    pub fn outlier_transactions(&self) -> Vec<(Vec<Item>, f64)> {
        self.outlier_tree.to_weighted_transactions()
    }

    /// The inlier class's deduplicated transactions with their weights.
    pub fn inlier_transactions(&self) -> Vec<(Vec<Item>, f64)> {
        self.inlier_tree.to_weighted_transactions()
    }
}

impl Mergeable for ExplainState {
    /// Merge a partition's state into this one: the per-class prefix trees
    /// merge losslessly (union of prefix paths with count addition) and the
    /// class totals add, so explaining the merged state is exactly
    /// explaining the concatenated partitions.
    fn merge(&mut self, other: Self) {
        self.outlier_tree.merge(other.outlier_tree);
        self.inlier_tree.merge(other.inlier_tree);
        self.total_outliers += other.total_outliers;
        self.total_inliers += other.total_inliers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_tracks_totals_and_item_counts() {
        let mut state = ExplainState::new();
        state.observe(&[1, 2], true);
        state.observe(&[1], true);
        state.observe(&[1, 2], false);
        state.observe(&[], false);
        assert_eq!(state.total_outliers(), 2.0);
        assert_eq!(state.total_inliers(), 2.0);
        assert_eq!(state.outlier_item_count(1), 2.0);
        assert_eq!(state.outlier_item_count(2), 1.0);
        assert_eq!(state.inlier_item_count(1), 1.0);
        let outliers = state.outlier_transactions();
        let total: f64 = outliers.iter().map(|(_, w)| w).sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merged_state_equals_single_stream_state() {
        let mut whole = ExplainState::new();
        let mut left = ExplainState::new();
        let mut right = ExplainState::new();
        for i in 0..1_000u32 {
            let items = [i % 5, 10 + (i % 3)];
            let is_outlier = i % 100 == 0;
            whole.observe(&items, is_outlier);
            if i % 2 == 0 {
                left.observe(&items, is_outlier);
            } else {
                right.observe(&items, is_outlier);
            }
        }
        left.merge(right);
        assert_eq!(left.total_outliers(), whole.total_outliers());
        assert_eq!(left.total_inliers(), whole.total_inliers());
        for item in [0, 1, 2, 3, 4, 10, 11, 12] {
            assert!(
                (left.outlier_item_count(item) - whole.outlier_item_count(item)).abs() < 1e-9
            );
            assert!(
                (left.inlier_item_count(item) - whole.inlier_item_count(item)).abs() < 1e-9
            );
        }
    }
}
