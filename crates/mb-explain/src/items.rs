//! Columnar item transactions: the struct-of-arrays batch the encode pass
//! produces and the explainers consume.
//!
//! A row's attributes become a contiguous run of item ids in one flat
//! `Vec<Item>`, delimited by a row-offset table — the classic CSR layout.
//! Compared to `Vec<Vec<Item>>` this removes one heap allocation and one
//! pointer indirection per row, which is most of what the encode→mine hot
//! path used to spend its time on: after ingestion, attribute strings stop
//! flowing through the pipeline entirely and every pass (outlier counting,
//! inlier counting, FP-tree construction) walks dense arrays.

use mb_fpgrowth::Item;

/// A batch of item transactions in struct-of-arrays (CSR) form: a flat item
/// array plus a row-offset table (`offsets.len() == rows + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemBatch {
    items: Vec<Item>,
    /// `offsets[r]..offsets[r + 1]` delimits row `r` in `items`. Always
    /// non-empty; a fresh batch holds the single sentinel `0`.
    offsets: Vec<u32>,
}

impl ItemBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        ItemBatch {
            items: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Create an empty batch with preallocated capacity for `rows` rows of
    /// about `items_per_row` items each.
    pub fn with_capacity(rows: usize, items_per_row: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        ItemBatch {
            items: Vec::with_capacity(rows * items_per_row),
            offsets,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of item occurrences across all rows.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// The items of row `r`.
    pub fn row(&self, r: usize) -> &[Item] {
        &self.items[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// Iterate over rows as item slices.
    pub fn iter(&self) -> impl Iterator<Item = &[Item]> + '_ {
        self.offsets
            .windows(2)
            .map(move |w| &self.items[w[0] as usize..w[1] as usize])
    }

    /// Append one item to the row currently being built (close it with
    /// [`finish_row`](ItemBatch::finish_row)).
    pub fn push_item(&mut self, item: Item) {
        self.items.push(item);
    }

    /// Close the row currently being built (possibly empty).
    pub fn finish_row(&mut self) {
        debug_assert!(self.items.len() <= u32::MAX as usize, "ItemBatch overflow");
        self.offsets.push(self.items.len() as u32);
    }

    /// Append a whole row at once.
    pub fn push_row(&mut self, row: &[Item]) {
        self.items.extend_from_slice(row);
        self.finish_row();
    }

    /// Append all of `other`'s rows after this batch's rows.
    pub fn append(&mut self, other: &ItemBatch) {
        let base = self.items.len() as u32;
        self.items.extend_from_slice(&other.items);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| base + o));
    }

    /// Mutable access to the flat item array (id remapping passes).
    pub fn items_mut(&mut self) -> &mut [Item] {
        &mut self.items
    }

    /// Copy into the row-major `Vec<Vec<Item>>` layout.
    pub fn to_rows(&self) -> Vec<Vec<Item>> {
        self.iter().map(|row| row.to_vec()).collect()
    }
}

impl Default for ItemBatch {
    // Not derived: the offsets table must hold its `0` sentinel even in an
    // empty batch.
    fn default() -> Self {
        ItemBatch::new()
    }
}

impl FromIterator<Vec<Item>> for ItemBatch {
    fn from_iter<T: IntoIterator<Item = Vec<Item>>>(rows: T) -> Self {
        let mut batch = ItemBatch::new();
        for row in rows {
            batch.push_row(&row);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back_rows() {
        let mut batch = ItemBatch::new();
        batch.push_row(&[1, 2, 3]);
        batch.push_row(&[]);
        batch.push_item(7);
        batch.finish_row();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.num_items(), 4);
        assert_eq!(batch.row(0), &[1, 2, 3]);
        assert_eq!(batch.row(1), &[] as &[Item]);
        assert_eq!(batch.row(2), &[7]);
        assert_eq!(batch.to_rows(), vec![vec![1, 2, 3], vec![], vec![7]]);
    }

    #[test]
    fn empty_batch() {
        let batch = ItemBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.iter().count(), 0);
        // Default must uphold the sentinel invariant too.
        assert_eq!(ItemBatch::default(), batch);
        assert_eq!(ItemBatch::default().len(), 0);
    }

    #[test]
    fn append_concatenates_in_row_order() {
        let a: ItemBatch = vec![vec![1, 2], vec![3]].into_iter().collect();
        let b: ItemBatch = vec![vec![], vec![4, 5]].into_iter().collect();
        let mut joined = a.clone();
        joined.append(&b);
        assert_eq!(joined.len(), 4);
        assert_eq!(
            joined.to_rows(),
            vec![vec![1, 2], vec![3], vec![], vec![4, 5]]
        );
    }

    #[test]
    fn iter_matches_indexed_rows() {
        let batch: ItemBatch = vec![vec![9], vec![8, 7], vec![6]].into_iter().collect();
        let via_iter: Vec<&[Item]> = batch.iter().collect();
        for (r, row) in via_iter.iter().enumerate() {
            assert_eq!(*row, batch.row(r));
        }
    }
}
