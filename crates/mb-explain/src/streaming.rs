//! Streaming explanation (Section 5.3, right half of Figure 2).
//!
//! The streaming explainer maintains, for each class (outlier / inlier):
//!
//! * an **AMC sketch** of single attribute-value frequencies, and
//! * an **M-CPS-tree** of attribute combinations restricted to currently
//!   frequent items.
//!
//! When a labeled point arrives, its attribute items are inserted into the
//! structures of its class. At each window boundary all counts are decayed
//! and the trees are pruned/re-sorted. Explanations are produced *on demand*
//! (the operator acts as a streaming view maintainer): the outlier tree is
//! mined with FPGrowth, single-item inlier counts come from the inlier AMC,
//! and combination inlier counts are computed from the (compact) inlier tree.

use crate::risk_ratio::{Explanation, ExplanationStats};
use crate::ExplanationConfig;
use mb_fpgrowth::mcps::{McpsConfig, McpsTree};
use mb_fpgrowth::Item;
use mb_sketch::amc::{AmcSketch, MaintenancePolicy};
use mb_sketch::{HeavyHitterSketch, Mergeable};
use std::collections::{HashMap, HashSet};

/// Configuration for the streaming explainer.
#[derive(Debug, Clone)]
pub struct StreamingExplainerConfig {
    /// Thresholds shared with the batch explainer.
    pub explanation: ExplanationConfig,
    /// Per-window decay rate applied to all sketches and trees.
    pub decay_rate: f64,
    /// Stable size of the AMC sketches (paper default 10K).
    pub amc_stable_size: usize,
    /// AMC maintenance period in observations.
    pub amc_maintenance_period: u64,
}

impl Default for StreamingExplainerConfig {
    fn default() -> Self {
        StreamingExplainerConfig {
            explanation: ExplanationConfig::default(),
            decay_rate: 0.01,
            amc_stable_size: 10_000,
            amc_maintenance_period: 10_000,
        }
    }
}

/// The MDP streaming explanation operator.
#[derive(Debug, Clone)]
pub struct StreamingExplainer {
    config: StreamingExplainerConfig,
    outlier_amc: AmcSketch<Item>,
    inlier_amc: AmcSketch<Item>,
    outlier_tree: McpsTree,
    inlier_tree: McpsTree,
    outlier_count: f64,
    inlier_count: f64,
}

impl StreamingExplainer {
    /// Create a streaming explainer.
    pub fn new(config: StreamingExplainerConfig) -> Self {
        let amc = |seed_offset: u64| {
            let _ = seed_offset;
            AmcSketch::with_policy(
                config.amc_stable_size,
                MaintenancePolicy::EveryNObservations(config.amc_maintenance_period),
            )
        };
        let tree_config = McpsConfig {
            min_support_fraction: config.explanation.min_support,
            decay_rate: config.decay_rate,
            amc_stable_size: config.amc_stable_size,
            amc_maintenance_period: config.amc_maintenance_period,
        };
        StreamingExplainer {
            outlier_amc: amc(0),
            inlier_amc: amc(1),
            outlier_tree: McpsTree::new(tree_config.clone()),
            inlier_tree: McpsTree::new(tree_config),
            outlier_count: 0.0,
            inlier_count: 0.0,
            config,
        }
    }

    /// Create a streaming explainer with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(StreamingExplainerConfig::default())
    }

    /// Observe one labeled point's attribute items.
    pub fn observe(&mut self, items: &[Item], is_outlier: bool) {
        if is_outlier {
            self.outlier_count += 1.0;
            for &item in items {
                self.outlier_amc.observe(item);
            }
            self.outlier_tree.insert(items);
        } else {
            self.inlier_count += 1.0;
            for &item in items {
                self.inlier_amc.observe(item);
            }
            self.inlier_tree.insert(items);
        }
    }

    /// Close the current window: decay every sketch/tree and prune the trees
    /// to currently frequent items.
    pub fn on_window_boundary(&mut self) {
        let keep = 1.0 - self.config.decay_rate;
        self.outlier_amc.decay(keep);
        self.inlier_amc.decay(keep);
        self.outlier_tree.on_window_boundary();
        self.inlier_tree.on_window_boundary();
        self.outlier_count *= keep;
        self.inlier_count *= keep;
    }

    /// Current decayed number of outlier points observed.
    pub fn outlier_count(&self) -> f64 {
        self.outlier_count
    }

    /// Current decayed number of inlier points observed.
    pub fn inlier_count(&self) -> f64 {
        self.inlier_count
    }

    /// Produce the current explanations on demand.
    ///
    /// Single attribute values are explained directly from the AMC sketches
    /// (which adapt immediately to newly frequent items); attribute
    /// *combinations* come from mining the outlier M-CPS-tree, whose item set
    /// lags by one window boundary by design (Appendix B).
    pub fn explain(&self) -> Vec<Explanation> {
        if self.outlier_count <= 0.0 {
            return Vec::new();
        }
        let min_outlier_count =
            (self.config.explanation.min_support * self.outlier_count).max(1.0);

        // Singles straight from the AMC sketches.
        let mut mined: Vec<mb_fpgrowth::FrequentItemset> = self
            .outlier_amc
            .items_above(min_outlier_count)
            .into_iter()
            .map(|(item, count)| mb_fpgrowth::FrequentItemset::new(vec![item], count))
            .collect();
        // Combinations from the outlier M-CPS-tree.
        mined.extend(
            self.outlier_tree
                .mine_with_support(
                    min_outlier_count,
                    self.config.explanation.max_combination_size,
                )
                .into_iter()
                .filter(|m| m.len() >= 2),
        );
        if mined.is_empty() {
            return Vec::new();
        }

        // Inlier counts: singles from the inlier AMC, combinations from the
        // (compact) inlier tree's exported transactions.
        let combos: Vec<&mb_fpgrowth::FrequentItemset> =
            mined.iter().filter(|m| m.len() >= 2).collect();
        let mut combo_inlier_counts: HashMap<&[Item], f64> = HashMap::new();
        if !combos.is_empty() {
            let candidate_items: HashSet<Item> = combos
                .iter()
                .flat_map(|c| c.items.iter().copied())
                .collect();
            let inlier_transactions = self.inlier_tree.mine_with_support(1e-9, usize::MAX);
            // `mine_with_support` returns every itemset with its exact decayed
            // support inside the tree; index the ones we need.
            for itemset in &inlier_transactions {
                if itemset.len() >= 2
                    && itemset.items.iter().all(|i| candidate_items.contains(i))
                {
                    for combo in &combos {
                        if combo.items == itemset.items {
                            combo_inlier_counts
                                .insert(combo.items.as_slice(), itemset.support);
                        }
                    }
                }
            }
        }

        let mut explanations = Vec::new();
        for itemset in &mined {
            let ai = if itemset.len() == 1 {
                self.inlier_amc.estimate(&itemset.items[0])
            } else {
                combo_inlier_counts
                    .get(itemset.items.as_slice())
                    .copied()
                    .unwrap_or(0.0)
            };
            let stats = ExplanationStats::from_counts(
                itemset.support,
                ai,
                self.outlier_count,
                self.inlier_count,
            );
            if stats.risk_ratio >= self.config.explanation.min_risk_ratio {
                explanations.push(Explanation::new(itemset.items.clone(), stats));
            }
        }
        explanations
    }
}

impl Mergeable for StreamingExplainer {
    /// Merge another streaming explainer built over a disjoint sub-stream
    /// with the same configuration: the pre-render state — per-class AMC
    /// sketches, M-CPS-trees, and decayed class totals — merges on items,
    /// so explanations computed from the merged operator reflect combined
    /// counts rather than a union of separately thresholded result sets.
    fn merge(&mut self, other: Self) {
        self.outlier_amc.merge(other.outlier_amc);
        self.inlier_amc.merge(other.inlier_amc);
        self.outlier_tree.merge(other.outlier_tree);
        self.inlier_tree.merge(other.inlier_tree);
        self.outlier_count += other.outlier_count;
        self.inlier_count += other.inlier_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk_ratio::rank_explanations;
    use mb_stats::rand_ext::SplitMix64;

    fn config(min_support: f64, min_risk_ratio: f64, decay: f64) -> StreamingExplainerConfig {
        StreamingExplainerConfig {
            explanation: ExplanationConfig::new(min_support, min_risk_ratio),
            decay_rate: decay,
            amc_stable_size: 1_000,
            amc_maintenance_period: 1_000,
        }
    }

    #[test]
    fn no_outliers_no_explanations() {
        let mut explainer = StreamingExplainer::with_defaults();
        for _ in 0..100 {
            explainer.observe(&[1, 2], false);
        }
        assert!(explainer.explain().is_empty());
    }

    #[test]
    fn finds_streaming_planted_combination() {
        let mut explainer = StreamingExplainer::new(config(0.05, 3.0, 0.0));
        let mut rng = SplitMix64::new(1);
        for i in 0..20_000 {
            if i % 100 == 0 {
                // 1% outliers, 80% of which carry the planted pair (1, 2).
                if rng.next_f64() < 0.8 {
                    explainer.observe(&[1, 2, 100 + ((i / 100) % 10) as Item], true);
                } else {
                    explainer.observe(&[50, 60, 100 + ((i / 100) % 10) as Item], true);
                }
            } else {
                explainer.observe(
                    &[
                        10 + (rng.next_below(5)) as Item,
                        20 + (rng.next_below(7)) as Item,
                        100 + (i % 10) as Item,
                    ],
                    false,
                );
            }
            if i % 5_000 == 4_999 {
                explainer.on_window_boundary();
            }
        }
        let mut explanations = explainer.explain();
        rank_explanations(&mut explanations);
        assert!(explanations.iter().any(|e| e.items == vec![1]));
        assert!(explanations.iter().any(|e| e.items == vec![2]));
        assert!(
            explanations.iter().any(|e| e.items == vec![1, 2]),
            "pair missing from {explanations:?}"
        );
        // Attributes shared by both classes must not be reported.
        assert!(explanations
            .iter()
            .all(|e| e.items.iter().all(|&i| i < 100)));
    }

    #[test]
    fn common_attributes_have_low_risk_ratio_and_are_filtered() {
        let mut explainer = StreamingExplainer::new(config(0.01, 3.0, 0.0));
        for i in 0..10_000 {
            let shared = 7;
            if i % 100 == 0 {
                explainer.observe(&[shared, 1], true);
            } else {
                explainer.observe(&[shared, 2], false);
            }
        }
        let explanations = explainer.explain();
        assert!(explanations.iter().any(|e| e.items == vec![1]));
        assert!(!explanations.iter().any(|e| e.items == vec![7]));
    }

    #[test]
    fn decay_ages_out_old_explanations() {
        let mut explainer = StreamingExplainer::new(config(0.05, 3.0, 0.5));
        // Old behaviour: outliers carry item 1.
        for _ in 0..1_000 {
            explainer.observe(&[1], true);
            for _ in 0..10 {
                explainer.observe(&[30], false);
            }
        }
        // Many boundaries with new behaviour: outliers now carry item 2.
        for _ in 0..8 {
            explainer.on_window_boundary();
            for _ in 0..200 {
                explainer.observe(&[2], true);
                for _ in 0..10 {
                    explainer.observe(&[30], false);
                }
            }
        }
        let explanations = explainer.explain();
        let support_of = |items: &[Item]| {
            explanations
                .iter()
                .find(|e| e.items == items)
                .map(|e| e.stats.outlier_count)
                .unwrap_or(0.0)
        };
        assert!(
            support_of(&[2]) > support_of(&[1]),
            "new explanation should dominate: {explanations:?}"
        );
    }

    #[test]
    fn merged_streaming_explainers_combine_partition_counts() {
        // Each partition alone lacks the support to report the planted item
        // at a high combined support; the merged operator recovers the full
        // counts, unlike a union of separately produced explanations.
        let mut left = StreamingExplainer::new(config(0.05, 3.0, 0.0));
        let mut right = StreamingExplainer::new(config(0.05, 3.0, 0.0));
        for i in 0..10_000 {
            // Alternate blocks of 100 so each side sees half of the outliers
            // (which land on multiples of 100, i.e. always on even indices).
            let target = if (i / 100) % 2 == 0 {
                &mut left
            } else {
                &mut right
            };
            if i % 100 == 0 {
                target.observe(&[1, 2], true);
            } else {
                target.observe(&[10 + (i % 5) as Item, 20 + (i % 7) as Item], false);
            }
        }
        let single_side_count = left
            .explain()
            .iter()
            .find(|e| e.items == vec![1])
            .map(|e| e.stats.outlier_count)
            .unwrap_or(0.0);
        left.merge(right);
        assert!((left.outlier_count() - 100.0).abs() < 1e-9);
        assert!((left.inlier_count() - 9_900.0).abs() < 1e-9);
        let merged = left.explain();
        let merged_count = merged
            .iter()
            .find(|e| e.items == vec![1])
            .map(|e| e.stats.outlier_count)
            .expect("planted item missing after merge");
        assert!((merged_count - 100.0).abs() < 1e-9);
        assert!(merged_count > single_side_count);
        assert!(merged.iter().any(|e| e.items == vec![1, 2]));
    }

    #[test]
    fn counts_decay_at_boundaries() {
        let mut explainer = StreamingExplainer::new(config(0.01, 3.0, 0.5));
        for _ in 0..100 {
            explainer.observe(&[1], true);
            explainer.observe(&[2], false);
        }
        assert!((explainer.outlier_count() - 100.0).abs() < 1e-9);
        explainer.on_window_boundary();
        assert!((explainer.outlier_count() - 50.0).abs() < 1e-9);
        assert!((explainer.inlier_count() - 50.0).abs() < 1e-9);
    }
}
