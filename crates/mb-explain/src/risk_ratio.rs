//! The relative risk ratio and explanation result types (Section 5.1).
//!
//! Given an attribute combination appearing `ao` times among outliers and
//! `ai` times among inliers, with `bo` other outliers and `bi` other inliers,
//! the risk ratio is
//!
//! ```text
//! risk ratio = (ao / (ao + ai)) / (bo / (bo + bi))
//! ```
//!
//! i.e. how much more likely a point carrying the combination is to be an
//! outlier than a point that does not carry it. MDP reports combinations
//! whose support among outliers and risk ratio both exceed user thresholds.

use mb_fpgrowth::Item;
use mb_stats::confidence::{risk_ratio_confidence_interval, ConfidenceInterval};

/// Compute the relative risk ratio from the four contingency counts.
///
/// Edge cases (all arise in practice on small windows):
/// * no outlier occurrences (`ao == 0`) → 0 (nothing to report);
/// * no "unexposed" points at all (`bo + bi == 0`, i.e. every point carries
///   the combination) → 0 — with no comparison group the combination carries
///   no evidence of elevated risk and must not be reported;
/// * unexposed points exist but none of them is an outlier (`bo == 0`,
///   `bi > 0`) → `+∞` (the combination perfectly separates outliers).
pub fn risk_ratio(ao: f64, ai: f64, bo: f64, bi: f64) -> f64 {
    debug_assert!(ao >= 0.0 && ai >= 0.0 && bo >= 0.0 && bi >= 0.0);
    if ao <= 0.0 {
        return 0.0;
    }
    let exposed_rate = ao / (ao + ai);
    if bo + bi <= 0.0 {
        return 0.0;
    }
    if bo <= 0.0 {
        return f64::INFINITY;
    }
    let unexposed_rate = bo / (bo + bi);
    exposed_rate / unexposed_rate
}

/// Compute the risk ratio from total class sizes instead of complements:
/// `outlier_count`/`inlier_count` are the occurrences of the combination, and
/// `total_outliers`/`total_inliers` the class sizes.
pub fn risk_ratio_from_totals(
    outlier_count: f64,
    inlier_count: f64,
    total_outliers: f64,
    total_inliers: f64,
) -> f64 {
    let bo = (total_outliers - outlier_count).max(0.0);
    let bi = (total_inliers - inlier_count).max(0.0);
    risk_ratio(outlier_count, inlier_count, bo, bi)
}

/// Statistics attached to a reported explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationStats {
    /// Number of outlier points containing the combination (decayed count in
    /// streaming mode).
    pub outlier_count: f64,
    /// Number of inlier points containing the combination.
    pub inlier_count: f64,
    /// Support among outliers: `outlier_count / total_outliers`.
    pub outlier_support: f64,
    /// The relative risk ratio.
    pub risk_ratio: f64,
    /// Total outliers / inliers the counts are relative to.
    pub total_outliers: f64,
    /// Total inlier count the explanation was computed against.
    pub total_inliers: f64,
}

impl ExplanationStats {
    /// Compute stats from counts and totals.
    pub fn from_counts(
        outlier_count: f64,
        inlier_count: f64,
        total_outliers: f64,
        total_inliers: f64,
    ) -> Self {
        ExplanationStats {
            outlier_count,
            inlier_count,
            outlier_support: if total_outliers > 0.0 {
                outlier_count / total_outliers
            } else {
                0.0
            },
            risk_ratio: risk_ratio_from_totals(
                outlier_count,
                inlier_count,
                total_outliers,
                total_inliers,
            ),
            total_outliers,
            total_inliers,
        }
    }

    /// Confidence interval on the risk ratio (Appendix B); `level` e.g. 0.95.
    pub fn confidence_interval(&self, level: f64) -> Option<ConfidenceInterval> {
        let bo = (self.total_outliers - self.outlier_count).max(0.0);
        let bi = (self.total_inliers - self.inlier_count).max(0.0);
        if !self.risk_ratio.is_finite() {
            return None;
        }
        risk_ratio_confidence_interval(
            self.risk_ratio,
            self.outlier_count,
            self.inlier_count,
            bo,
            bi,
            level,
        )
        .ok()
    }
}

/// One explanation: an attribute-value combination plus its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The attribute-value items in the combination (sorted ascending).
    pub items: Vec<Item>,
    /// Statistics supporting the explanation.
    pub stats: ExplanationStats,
}

impl Explanation {
    /// Create an explanation, normalizing item order.
    pub fn new(mut items: Vec<Item>, stats: ExplanationStats) -> Self {
        items.sort_unstable();
        Explanation { items, stats }
    }
}

/// Rank explanations for presentation (Section 3.2, stage 5): by descending
/// risk ratio, breaking ties by descending outlier support, then by items for
/// determinism.
pub fn rank_explanations(explanations: &mut [Explanation]) {
    explanations.sort_by(|a, b| {
        b.stats
            .risk_ratio
            .total_cmp(&a.stats.risk_ratio)
            .then_with(|| {
                b.stats
                    .outlier_support
                    .total_cmp(&a.stats.outlier_support)
            })
            .then_with(|| a.items.cmp(&b.items))
    });
}

/// Jaccard similarity between two explanation sets (used in Table 2 to
/// compare one-shot and streaming results): |A ∩ B| / |A ∪ B| over the sets
/// of reported item combinations.
pub fn jaccard_similarity(a: &[Explanation], b: &[Explanation]) -> f64 {
    use std::collections::HashSet;
    let set_a: HashSet<&[Item]> = a.iter().map(|e| e.items.as_slice()).collect();
    let set_b: HashSet<&[Item]> = b.iter().map(|e| e.items.as_slice()).collect();
    if set_a.is_empty() && set_b.is_empty() {
        return 1.0;
    }
    let intersection = set_a.intersection(&set_b).count() as f64;
    let union = set_a.union(&set_b).count() as f64;
    intersection / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_iphone_example() {
        // Section 5.1: 500 of 890 outliers are iPhone 6 (support 56.2%) but
        // 80191 of 90922 inliers are too -> risk ratio 0.1767.
        let ao = 500.0;
        let ai = 80191.0;
        let bo = 890.0 - 500.0;
        let bi = 90922.0 - 80191.0;
        let rr = risk_ratio(ao, ai, bo, bi);
        assert!((rr - 0.1767).abs() < 0.001, "risk ratio was {rr}");
        let stats = ExplanationStats::from_counts(500.0, 80191.0, 890.0, 90922.0);
        assert!((stats.outlier_support - 0.5618).abs() < 0.001);
        assert!((stats.risk_ratio - 0.1767).abs() < 0.001);
    }

    #[test]
    fn systemic_combination_has_high_ratio() {
        // A combination present in 60% of outliers but only 1% of inliers.
        let stats = ExplanationStats::from_counts(600.0, 1_000.0, 1_000.0, 100_000.0);
        assert!(stats.risk_ratio > 50.0);
        assert!((stats.outlier_support - 0.6).abs() < 1e-12);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(risk_ratio(0.0, 0.0, 10.0, 10.0), 0.0);
        assert_eq!(risk_ratio(0.0, 5.0, 10.0, 10.0), 0.0);
        assert_eq!(risk_ratio(5.0, 0.0, 0.0, 10.0), f64::INFINITY);
        // Every point carries the combination: no comparison group, no evidence.
        assert_eq!(risk_ratio(5.0, 5.0, 0.0, 0.0), 0.0);
        // Plain 2x enrichment.
        let rr = risk_ratio(10.0, 10.0, 10.0, 30.0);
        assert!((rr - 2.0).abs() < 1e-12);
    }

    #[test]
    fn risk_ratio_from_totals_matches_direct() {
        let direct = risk_ratio(30.0, 70.0, 70.0, 930.0);
        let from_totals = risk_ratio_from_totals(30.0, 70.0, 100.0, 1000.0);
        assert!((direct - from_totals).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_present_for_finite_ratio() {
        let stats = ExplanationStats::from_counts(500.0, 500.0, 1_000.0, 100_000.0);
        let ci = stats.confidence_interval(0.95).unwrap();
        assert!(ci.lower < stats.risk_ratio);
        assert!(ci.upper > stats.risk_ratio);
        // Infinite ratios have no CI.
        let perfect = ExplanationStats::from_counts(10.0, 0.0, 10.0, 100.0);
        assert!(perfect.risk_ratio.is_infinite());
        assert!(perfect.confidence_interval(0.95).is_none());
    }

    #[test]
    fn ranking_orders_by_ratio_then_support() {
        let mut explanations = vec![
            Explanation::new(
                vec![1],
                ExplanationStats::from_counts(10.0, 100.0, 100.0, 10_000.0),
            ),
            Explanation::new(
                vec![2],
                ExplanationStats::from_counts(90.0, 10.0, 100.0, 10_000.0),
            ),
            Explanation::new(
                vec![3],
                ExplanationStats::from_counts(50.0, 10.0, 100.0, 10_000.0),
            ),
        ];
        rank_explanations(&mut explanations);
        assert_eq!(explanations[0].items, vec![2]);
        assert_eq!(explanations[1].items, vec![3]);
        assert_eq!(explanations[2].items, vec![1]);
    }

    #[test]
    fn jaccard_of_identical_and_disjoint_sets() {
        let stats = ExplanationStats::from_counts(1.0, 0.0, 10.0, 100.0);
        let a = vec![
            Explanation::new(vec![1], stats.clone()),
            Explanation::new(vec![2], stats.clone()),
        ];
        let b = vec![
            Explanation::new(vec![1], stats.clone()),
            Explanation::new(vec![2], stats.clone()),
        ];
        assert_eq!(jaccard_similarity(&a, &b), 1.0);
        let c = vec![Explanation::new(vec![3], stats.clone())];
        assert_eq!(jaccard_similarity(&a, &c), 0.0);
        let partial = vec![Explanation::new(vec![1], stats)];
        assert!((jaccard_similarity(&a, &partial) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_similarity(&[], &[]), 1.0);
    }

    #[test]
    fn explanation_normalizes_item_order() {
        let stats = ExplanationStats::from_counts(1.0, 0.0, 10.0, 100.0);
        let e = Explanation::new(vec![5, 1, 3], stats);
        assert_eq!(e.items, vec![1, 3, 5]);
    }
}
