//! Batch explanation: MacroBase's outlier-aware strategy (Algorithm 2) and
//! the naïve two-sided FPGrowth baseline it is compared against (Section 6.3).
//!
//! The optimized strategy exploits the cardinality imbalance between classes:
//! outliers are (by construction) ~1% of the stream, so it first finds
//! attribute values supported *in the outliers*, prunes them by risk ratio
//! using a single counting pass over the inliers restricted to those
//! candidates, mines combinations only over the outliers, and finally makes
//! one more restricted pass over the inliers to compute combination risk
//! ratios. The naïve baseline instead mines both classes in full.

use crate::items::ItemBatch;
use crate::partition::ExplainState;
use crate::risk_ratio::{risk_ratio_from_totals, Explanation, ExplanationStats};
use crate::ExplanationConfig;
use mb_fpgrowth::fptree::FpTree;
use mb_fpgrowth::{FrequentItemset, Item};
use std::collections::HashMap;

/// The outlier-aware batch explainer (Algorithm 2).
#[derive(Debug, Clone)]
pub struct BatchExplainer {
    config: ExplanationConfig,
}

impl BatchExplainer {
    /// Create an explainer with the given thresholds.
    pub fn new(config: ExplanationConfig) -> Self {
        BatchExplainer { config }
    }

    /// Produce explanations for a batch of outlier and inlier transactions
    /// (each transaction is one point's encoded attribute items).
    pub fn explain(&self, outliers: &[Vec<Item>], inliers: &[Vec<Item>]) -> Vec<Explanation> {
        let weighted_outliers: Vec<(&[Item], f64)> =
            outliers.iter().map(|t| (t.as_slice(), 1.0)).collect();
        let weighted_inliers: Vec<(&[Item], f64)> =
            inliers.iter().map(|t| (t.as_slice(), 1.0)).collect();
        self.explain_weighted(
            &weighted_outliers,
            &weighted_inliers,
            outliers.len() as f64,
            inliers.len() as f64,
        )
    }

    /// Produce explanations for one columnar batch of encoded rows, where
    /// `outlier(r)` says whether row `r` was labeled an outlier. Every row
    /// counts toward its class total (attribute-less rows included), exactly
    /// as [`explain`](BatchExplainer::explain) over split transaction lists.
    pub fn explain_labeled(
        &self,
        rows: &ItemBatch,
        outlier: impl Fn(usize) -> bool,
    ) -> Vec<Explanation> {
        let mut outliers: Vec<(&[Item], f64)> = Vec::new();
        let mut inliers: Vec<(&[Item], f64)> = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            if outlier(r) {
                outliers.push((row, 1.0));
            } else {
                inliers.push((row, 1.0));
            }
        }
        self.explain_weighted(
            &outliers,
            &inliers,
            outliers.len() as f64,
            inliers.len() as f64,
        )
    }

    /// Produce explanations from pre-render state — typically the merge of
    /// per-partition [`ExplainState`]s. Support and risk-ratio thresholds
    /// are applied to the *merged* counts, so the result is identical to
    /// explaining the concatenated partitions in one shot (no string-level
    /// union, no per-partition pruning).
    pub fn explain_state(&self, state: &ExplainState) -> Vec<Explanation> {
        let outliers = state.outlier_transactions();
        let inliers = state.inlier_transactions();
        let weighted_outliers: Vec<(&[Item], f64)> =
            outliers.iter().map(|(t, w)| (t.as_slice(), *w)).collect();
        let weighted_inliers: Vec<(&[Item], f64)> =
            inliers.iter().map(|(t, w)| (t.as_slice(), *w)).collect();
        self.explain_weighted(
            &weighted_outliers,
            &weighted_inliers,
            state.total_outliers(),
            state.total_inliers(),
        )
    }

    /// The outlier-aware strategy over weighted, possibly pre-aggregated
    /// transactions. `total_outliers`/`total_inliers` are passed explicitly
    /// because attribute-less points count toward class totals without
    /// appearing as transactions.
    fn explain_weighted(
        &self,
        outliers: &[(&[Item], f64)],
        inliers: &[(&[Item], f64)],
        total_outliers: f64,
        total_inliers: f64,
    ) -> Vec<Explanation> {
        self.explain_weighted_impl(outliers, inliers, total_outliers, total_inliers, true)
    }

    /// `explain_weighted` with the risk-ratio-ceiling pruning made optional so
    /// tests can pin pruned ≡ unpruned. The ceiling for a (combination of)
    /// attribute value(s) with outlier support `s` is its risk ratio assuming
    /// zero inlier occurrences — `risk_ratio_from_totals(s, 0, to, ti)` —
    /// which bounds the actual ratio from above and is nondecreasing in `s`.
    /// Anything whose ceiling misses `min_risk_ratio` would be discarded by
    /// the final actual-ratio filter anyway, so pruning on the ceiling (at
    /// candidate selection and inside FP-growth, where extension support can
    /// only shrink) is output-identical by construction.
    fn explain_weighted_impl(
        &self,
        outliers: &[(&[Item], f64)],
        inliers: &[(&[Item], f64)],
        total_outliers: f64,
        total_inliers: f64,
        prune: bool,
    ) -> Vec<Explanation> {
        if total_outliers <= 0.0 {
            return Vec::new();
        }
        let min_outlier_count = (self.config.min_support * total_outliers).max(1.0);
        let min_risk_ratio = self.config.min_risk_ratio;
        let ceiling = |support: f64| {
            risk_ratio_from_totals(support, 0.0, total_outliers, total_inliers) >= min_risk_ratio
        };

        // Stage 1a: count single attribute values over the (small) outlier
        // set. Per-item occurrences are gathered and aggregated by a stable
        // sort over (item, weight) pairs — within one item, weights still sum
        // in transaction order, so weighted totals are bit-identical to a
        // map-based accumulation.
        let mut outlier_pairs: Vec<(Item, f64)> = Vec::new();
        let mut seen: Vec<Item> = Vec::new();
        for (transaction, weight) in outliers {
            seen.clear();
            seen.extend_from_slice(transaction);
            seen.sort_unstable();
            seen.dedup();
            for &item in &seen {
                outlier_pairs.push((item, *weight));
            }
        }
        outlier_pairs.sort_by_key(|&(item, _)| item);
        let mut outlier_singles: Vec<(Item, f64)> = Vec::new();
        for (item, weight) in outlier_pairs {
            match outlier_singles.last_mut() {
                Some(last) if last.0 == item => last.1 += weight,
                _ => outlier_singles.push((item, weight)),
            }
        }
        // Candidates stay sorted by item id, so every later membership test
        // is a binary search over this small vector — no hashing anywhere on
        // the inlier-scan hot path.
        let candidates: Vec<(Item, f64)> = outlier_singles
            .iter()
            .copied()
            .filter(|&(_, count)| count >= min_outlier_count && (!prune || ceiling(count)))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let candidate_items: Vec<Item> = candidates.iter().map(|&(item, _)| item).collect();

        // Stage 1b: one pass over the inliers counting ONLY the supported
        // candidates (this is the cardinality-aware pruning).
        let mut candidate_inlier_counts: Vec<f64> = vec![0.0; candidates.len()];
        let mut seen_pos: Vec<usize> = Vec::new();
        for (transaction, weight) in inliers {
            seen_pos.clear();
            seen_pos.extend(
                transaction
                    .iter()
                    .filter_map(|item| candidate_items.binary_search(item).ok()),
            );
            seen_pos.sort_unstable();
            seen_pos.dedup();
            for &pos in &seen_pos {
                candidate_inlier_counts[pos] += weight;
            }
        }

        // Stage 1c: filter candidates by single-item risk ratio (sorted
        // order is preserved).
        let surviving: Vec<Item> = candidates
            .iter()
            .enumerate()
            .filter(|&(pos, &(_, ao))| {
                risk_ratio_from_totals(
                    ao,
                    candidate_inlier_counts[pos],
                    total_outliers,
                    total_inliers,
                ) >= self.config.min_risk_ratio
            })
            .map(|(_, &(item, _))| item)
            .collect();
        if surviving.is_empty() {
            return Vec::new();
        }

        // Stage 2: mine combinations over the outliers restricted to the
        // surviving attribute values.
        let filtered_outliers: Vec<(Vec<Item>, f64)> = outliers
            .iter()
            .map(|(t, weight)| {
                (
                    t.iter()
                        .copied()
                        .filter(|item| surviving.binary_search(item).is_ok())
                        .collect::<Vec<Item>>(),
                    *weight,
                )
            })
            .filter(|(items, _)| !items.is_empty())
            .collect();
        let tree = FpTree::from_weighted_transactions(&filtered_outliers, min_outlier_count);
        let mined: Vec<FrequentItemset> = if prune {
            tree.mine_with_bound(min_outlier_count, self.config.max_combination_size, ceiling)
        } else {
            tree.mine(min_outlier_count, self.config.max_combination_size)
        };

        // Stage 3: compute risk ratios; combinations (size >= 2) need one more
        // restricted pass over the inliers to obtain their inlier counts,
        // accumulated positionally alongside `combos`.
        let combos: Vec<&FrequentItemset> = mined.iter().filter(|m| m.len() >= 2).collect();
        let mut combo_inlier_counts: Vec<f64> = vec![0.0; combos.len()];
        if !combos.is_empty() {
            let mut present: Vec<Item> = Vec::new();
            for (transaction, weight) in inliers {
                present.clear();
                present.extend(
                    transaction
                        .iter()
                        .copied()
                        .filter(|item| surviving.binary_search(item).is_ok()),
                );
                if present.is_empty() {
                    continue;
                }
                present.sort_unstable();
                for (pos, combo) in combos.iter().enumerate() {
                    if combo
                        .items
                        .iter()
                        .all(|item| present.binary_search(item).is_ok())
                    {
                        combo_inlier_counts[pos] += weight;
                    }
                }
            }
        }

        let mut explanations = Vec::new();
        let mut combo_pos = 0;
        for itemset in &mined {
            let ai = if itemset.len() == 1 {
                candidate_items
                    .binary_search(&itemset.items[0])
                    .map(|pos| candidate_inlier_counts[pos])
                    .unwrap_or(0.0)
            } else {
                let count = combo_inlier_counts[combo_pos];
                combo_pos += 1;
                count
            };
            let stats = ExplanationStats::from_counts(
                itemset.support,
                ai,
                total_outliers,
                total_inliers,
            );
            if stats.risk_ratio >= self.config.min_risk_ratio {
                explanations.push(Explanation::new(itemset.items.clone(), stats));
            }
        }
        explanations
    }
}

/// The naïve baseline: mine outliers AND inliers in full with FPGrowth, then
/// join the results to compute risk ratios (Section 6.3 / "FP" in Table 5).
/// Functionally it reports the same high-risk-ratio combinations, but it
/// spends most of its time mining inlier patterns that are discarded.
pub fn naive_fpgrowth_explain(
    outliers: &[Vec<Item>],
    inliers: &[Vec<Item>],
    config: &ExplanationConfig,
) -> Vec<Explanation> {
    let total_outliers = outliers.len() as f64;
    let total_inliers = inliers.len() as f64;
    if outliers.is_empty() {
        return Vec::new();
    }
    let min_outlier_count = (config.min_support * total_outliers).max(1.0);

    // Mine the outlier side.
    let outlier_tree = FpTree::from_transactions(outliers, min_outlier_count);
    let outlier_sets = outlier_tree.mine(min_outlier_count, config.max_combination_size);

    // Mine the inlier side in full at the same *relative* support — the
    // wasted work the optimized strategy avoids.
    let min_inlier_count = (config.min_support * total_inliers).max(1.0);
    let inlier_tree = FpTree::from_transactions(inliers, min_inlier_count);
    let inlier_sets = inlier_tree.mine(min_inlier_count, config.max_combination_size);
    let inlier_counts: HashMap<Vec<Item>, f64> = inlier_sets
        .into_iter()
        .map(|s| (s.items, s.support))
        .collect();

    let mut explanations = Vec::new();
    for itemset in outlier_sets {
        let ai = inlier_counts.get(&itemset.items).copied().unwrap_or(0.0);
        let stats =
            ExplanationStats::from_counts(itemset.support, ai, total_outliers, total_inliers);
        if stats.risk_ratio >= config.min_risk_ratio {
            explanations.push(Explanation::new(itemset.items, stats));
        }
    }
    explanations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk_ratio::rank_explanations;

    /// Build a synthetic workload where outliers are dominated by the
    /// attribute pair (1, 2) (e.g. device type B264 + app version 2.26.3)
    /// while inliers draw attributes from a wide pool.
    fn planted_workload(
        n_outliers: usize,
        n_inliers: usize,
        planted_fraction: f64,
    ) -> (Vec<Vec<Item>>, Vec<Vec<Item>>) {
        let planted = (n_outliers as f64 * planted_fraction) as usize;
        let mut outliers = Vec::with_capacity(n_outliers);
        for i in 0..n_outliers {
            if i < planted {
                outliers.push(vec![1, 2, 100 + (i % 10) as Item]);
            } else {
                outliers.push(vec![
                    10 + (i % 5) as Item,
                    20 + (i % 7) as Item,
                    100 + (i % 10) as Item,
                ]);
            }
        }
        let mut inliers = Vec::with_capacity(n_inliers);
        for i in 0..n_inliers {
            inliers.push(vec![
                10 + (i % 5) as Item,
                20 + (i % 7) as Item,
                100 + (i % 10) as Item,
            ]);
        }
        (outliers, inliers)
    }

    #[test]
    fn empty_outliers_yield_no_explanations() {
        let explainer = BatchExplainer::new(ExplanationConfig::default());
        assert!(explainer.explain(&[], &[vec![1, 2]]).is_empty());
    }

    #[test]
    fn finds_planted_combination() {
        let (outliers, inliers) = planted_workload(1_000, 50_000, 0.8);
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        let mut explanations = explainer.explain(&outliers, &inliers);
        rank_explanations(&mut explanations);
        assert!(!explanations.is_empty());
        // The planted pair must be reported with a very high risk ratio (it
        // never occurs among inliers, but 20% of outliers lack it, so the
        // ratio is large and finite).
        let pair = explanations.iter().find(|e| e.items == vec![1, 2]);
        assert!(pair.is_some(), "pair not found in {explanations:?}");
        let pair = pair.unwrap();
        assert!(pair.stats.risk_ratio > 100.0);
        assert!((pair.stats.outlier_support - 0.8).abs() < 0.01);
        // Common attributes (100..110 appear in both classes equally) must NOT
        // be reported.
        assert!(explanations
            .iter()
            .all(|e| e.items.iter().all(|&i| i < 100)));
    }

    #[test]
    fn risk_ratio_threshold_filters_common_attributes() {
        // Attribute 7 occurs in 100% of outliers but also 100% of inliers: it
        // has overwhelming support yet a risk ratio near 1 and must be pruned.
        let outliers: Vec<Vec<Item>> = (0..100).map(|_| vec![7, 1]).collect();
        let inliers: Vec<Vec<Item>> = (0..10_000).map(|i| vec![7, (i % 50 + 10) as Item]).collect();
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        let explanations = explainer.explain(&outliers, &inliers);
        assert!(explanations.iter().any(|e| e.items == vec![1]));
        assert!(!explanations.iter().any(|e| e.items == vec![7]));
        // And the pair {1, 7} is only reported if every subset passes; item 7
        // fails the single-item ratio test, so the pair is not explored.
        assert!(!explanations.iter().any(|e| e.items == vec![1, 7]));
    }

    #[test]
    fn support_threshold_filters_rare_combinations() {
        let mut outliers: Vec<Vec<Item>> = (0..1_000).map(|_| vec![1]).collect();
        outliers.push(vec![55]); // a single occurrence, below 1% support
        let inliers: Vec<Vec<Item>> = (0..10_000).map(|i| vec![(i % 50 + 100) as Item]).collect();
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        let explanations = explainer.explain(&outliers, &inliers);
        assert!(explanations.iter().any(|e| e.items == vec![1]));
        assert!(!explanations.iter().any(|e| e.items == vec![55]));
    }

    #[test]
    fn max_combination_size_is_respected() {
        let outliers: Vec<Vec<Item>> = (0..100).map(|_| vec![1, 2, 3, 4]).collect();
        let inliers: Vec<Vec<Item>> = (0..1_000).map(|i| vec![(i % 20 + 10) as Item]).collect();
        let explainer =
            BatchExplainer::new(ExplanationConfig::new(0.01, 3.0).with_max_combination_size(2));
        let explanations = explainer.explain(&outliers, &inliers);
        assert!(explanations.iter().all(|e| e.items.len() <= 2));
        assert!(explanations.iter().any(|e| e.items.len() == 2));
    }

    #[test]
    fn agrees_with_naive_baseline_on_planted_workload() {
        let (outliers, inliers) = planted_workload(500, 5_000, 0.6);
        let config = ExplanationConfig::new(0.05, 3.0);
        let explainer = BatchExplainer::new(config);
        let mut optimized = explainer.explain(&outliers, &inliers);
        let mut naive = naive_fpgrowth_explain(&outliers, &inliers, &config);
        rank_explanations(&mut optimized);
        rank_explanations(&mut naive);
        // Both must report the planted pair and its two members at the top.
        for explanations in [&optimized, &naive] {
            assert!(explanations.iter().any(|e| e.items == vec![1]));
            assert!(explanations.iter().any(|e| e.items == vec![2]));
            assert!(explanations.iter().any(|e| e.items == vec![1, 2]));
        }
        // And the optimized strategy reports no combination the naive one
        // misses (it may legitimately report a superset because the naive
        // baseline only counts inlier combinations above the inlier support
        // threshold).
        let naive_keys: std::collections::HashSet<&Vec<Item>> =
            naive.iter().map(|e| &e.items).collect();
        let optimized_with_finite_rr = optimized
            .iter()
            .filter(|e| e.stats.risk_ratio.is_finite())
            .count();
        let overlap = optimized
            .iter()
            .filter(|e| naive_keys.contains(&e.items))
            .count();
        assert!(overlap >= optimized_with_finite_rr.min(naive.len()));
    }

    fn assert_same_explanations(mut a: Vec<Explanation>, mut b: Vec<Explanation>) {
        rank_explanations(&mut a);
        rank_explanations(&mut b);
        assert_eq!(
            a.len(),
            b.len(),
            "explanation sets differ in size: {a:?} vs {b:?}"
        );
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.items, y.items);
            assert!((x.stats.outlier_count - y.stats.outlier_count).abs() < 1e-9);
            assert!((x.stats.inlier_count - y.stats.inlier_count).abs() < 1e-9);
            let same_ratio = (x.stats.risk_ratio - y.stats.risk_ratio).abs() < 1e-9
                || (x.stats.risk_ratio.is_infinite() && y.stats.risk_ratio.is_infinite());
            assert!(same_ratio, "risk ratios differ: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn explain_state_is_exactly_explain() {
        let (outliers, inliers) = planted_workload(1_000, 20_000, 0.8);
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        let mut state = ExplainState::new();
        for t in &outliers {
            state.observe(t, true);
        }
        for t in &inliers {
            state.observe(t, false);
        }
        assert_same_explanations(
            explainer.explain_state(&state),
            explainer.explain(&outliers, &inliers),
        );
    }

    #[test]
    fn merged_partition_states_reproduce_one_shot_explanations() {
        use mb_sketch::Mergeable;
        let (outliers, inliers) = planted_workload(1_000, 20_000, 0.7);
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        // Scatter the classified stream over 4 partition states round-robin,
        // so per-partition supports are well below the global threshold.
        let mut states: Vec<ExplainState> = (0..4).map(|_| ExplainState::new()).collect();
        for (i, t) in outliers.iter().enumerate() {
            states[i % 4].observe(t, true);
        }
        for (i, t) in inliers.iter().enumerate() {
            states[i % 4].observe(t, false);
        }
        let mut merged = states.remove(0);
        for state in states {
            merged.merge(state);
        }
        assert_same_explanations(
            explainer.explain_state(&merged),
            explainer.explain(&outliers, &inliers),
        );
    }

    #[test]
    fn explain_state_on_empty_state_is_empty() {
        let explainer = BatchExplainer::new(ExplanationConfig::default());
        assert!(explainer.explain_state(&ExplainState::new()).is_empty());
    }

    #[test]
    fn degenerate_all_points_identical_reports_nothing() {
        // Every point (and there are no inliers) carries the same attributes:
        // there is no comparison group, so nothing is reportable.
        let outliers: Vec<Vec<Item>> = (0..100).map(|_| vec![1, 2]).collect();
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.1, 3.0));
        let explanations = explainer.explain(&outliers, &[]);
        assert!(explanations.is_empty());
    }

    #[test]
    fn explain_labeled_is_exactly_explain() {
        let (outliers, inliers) = planted_workload(1_000, 20_000, 0.8);
        // Interleave the classes into one columnar batch the way an executor
        // would see them, with a label predicate recovering the class.
        let mut batch = ItemBatch::new();
        let mut labels = Vec::new();
        let (mut oi, mut ii) = (0usize, 0usize);
        while oi < outliers.len() || ii < inliers.len() {
            if oi < outliers.len() {
                batch.push_row(&outliers[oi]);
                labels.push(true);
                oi += 1;
            }
            for _ in 0..20 {
                if ii < inliers.len() {
                    batch.push_row(&inliers[ii]);
                    labels.push(false);
                    ii += 1;
                }
            }
        }
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        assert_same_explanations(
            explainer.explain_labeled(&batch, |r| labels[r]),
            explainer.explain(&outliers, &inliers),
        );
    }

    #[test]
    fn pruned_equals_unpruned_on_planted_workload() {
        let (outliers, inliers) = planted_workload(1_000, 50_000, 0.8);
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.01, 3.0));
        let wo: Vec<(&[Item], f64)> = outliers.iter().map(|t| (t.as_slice(), 1.0)).collect();
        let wi: Vec<(&[Item], f64)> = inliers.iter().map(|t| (t.as_slice(), 1.0)).collect();
        let (to, ti) = (outliers.len() as f64, inliers.len() as f64);
        assert_same_explanations(
            explainer.explain_weighted_impl(&wo, &wi, to, ti, true),
            explainer.explain_weighted_impl(&wo, &wi, to, ti, false),
        );
    }

    mod pruning_props {
        use super::*;
        use proptest::prelude::*;

        fn transactions(
            max_len: usize,
            universe: Item,
            max_txns: usize,
        ) -> impl Strategy<Value = Vec<Vec<Item>>> {
            prop::collection::vec(
                prop::collection::vec(0..universe, 0..max_len + 1),
                0..max_txns + 1,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The risk-ratio-ceiling pruning (candidate pre-filter + bounded
            // FP-growth descent) must be output-identical to the unpruned
            // pipeline on arbitrary transaction sets and thresholds.
            #[test]
            fn pruned_explanations_equal_unpruned(
                outliers in transactions(5, 12, 40),
                inliers in transactions(5, 12, 200),
                min_support in 0.01f64..0.5,
                min_risk_ratio in 1.0f64..10.0,
            ) {
                let explainer = BatchExplainer::new(
                    ExplanationConfig::new(min_support, min_risk_ratio),
                );
                let wo: Vec<(&[Item], f64)> =
                    outliers.iter().map(|t| (t.as_slice(), 1.0)).collect();
                let wi: Vec<(&[Item], f64)> =
                    inliers.iter().map(|t| (t.as_slice(), 1.0)).collect();
                let (to, ti) = (outliers.len() as f64, inliers.len() as f64);
                let pruned = explainer.explain_weighted_impl(&wo, &wi, to, ti, true);
                let unpruned = explainer.explain_weighted_impl(&wo, &wi, to, ti, false);
                assert_same_explanations(pruned, unpruned);
            }
        }
    }

    #[test]
    fn outliers_without_inliers_partial_support_is_reported() {
        // Half the outliers carry item 1; with no inliers the unexposed group
        // is the other outliers, so the risk ratio is finite but > 1 only if
        // the exposed rate exceeds the unexposed rate - here every exposed
        // point is an outlier and so is every unexposed one, giving ratio 1
        // and therefore no explanation. Add inliers lacking the item to get a
        // reportable ratio.
        let mut outliers: Vec<Vec<Item>> = (0..50).map(|_| vec![1, 2]).collect();
        outliers.extend((0..50).map(|_| vec![3, 4]));
        let inliers: Vec<Vec<Item>> = (0..1000).map(|_| vec![3, 4]).collect();
        let explainer = BatchExplainer::new(ExplanationConfig::new(0.1, 3.0));
        let explanations = explainer.explain(&outliers, &inliers);
        assert!(explanations.iter().any(|e| e.items == vec![1, 2]));
        assert!(!explanations.iter().any(|e| e.items == vec![3, 4]));
    }
}
