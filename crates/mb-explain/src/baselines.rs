//! Alternative explanation strategies used as baselines in the Table 5
//! runtime comparison: data cubing, decision trees, and Apriori.
//!
//! These are deliberately faithful-but-unoptimized reimplementations of the
//! approaches the paper compares against ("Cube" after Roy & Suciu's data
//! cube enumeration, "DT10"/"DT100" decision trees after Chen et al., and
//! "AP" Apriori itemset mining). They produce risk-ratio-filtered attribute
//! combinations like MacroBase does, but each spends time the cardinality-
//! aware strategy avoids: cubing enumerates every value combination, the
//! decision tree repeatedly rescans both classes while splitting, and Apriori
//! rescans the transactions once per itemset size on both classes.

use crate::risk_ratio::{Explanation, ExplanationStats};
use crate::ExplanationConfig;
use mb_fpgrowth::apriori::apriori;
use mb_fpgrowth::Item;
use std::collections::{HashMap, HashSet};

/// Data-cube explanation: enumerate every combination of up to
/// `config.max_combination_size` attribute *columns*, group both classes by
/// the projected value tuple, and report groups passing the support and
/// risk-ratio thresholds.
///
/// Transactions must be column-aligned: `transaction[c]` is the item encoding
/// the value of attribute column `c` (which is how
/// [`crate::encoder::AttributeEncoder::encode_point`] produces them).
pub fn cube_explain(
    outliers: &[Vec<Item>],
    inliers: &[Vec<Item>],
    config: &ExplanationConfig,
) -> Vec<Explanation> {
    let total_outliers = outliers.len() as f64;
    let total_inliers = inliers.len() as f64;
    if outliers.is_empty() {
        return Vec::new();
    }
    let num_columns = outliers.iter().map(|t| t.len()).max().unwrap_or(0);
    let min_outlier_count = (config.min_support * total_outliers).max(1.0);

    // Enumerate all non-empty column subsets up to the size bound.
    let mut column_subsets: Vec<Vec<usize>> = Vec::new();
    for mask in 1u64..(1 << num_columns.min(20)) {
        let subset: Vec<usize> = (0..num_columns)
            .filter(|c| mask & (1 << c) != 0)
            .collect();
        if subset.len() <= config.max_combination_size {
            column_subsets.push(subset);
        }
    }

    let mut explanations = Vec::new();
    for subset in &column_subsets {
        // Group both classes by the projected value tuple.
        let mut outlier_groups: HashMap<Vec<Item>, f64> = HashMap::new();
        for t in outliers {
            if let Some(key) = project(t, subset) {
                *outlier_groups.entry(key).or_insert(0.0) += 1.0;
            }
        }
        let mut inlier_groups: HashMap<Vec<Item>, f64> = HashMap::new();
        for t in inliers {
            if let Some(key) = project(t, subset) {
                *inlier_groups.entry(key).or_insert(0.0) += 1.0;
            }
        }
        // Emit groups in canonical key order so the baseline's output is
        // deterministic even though the grouping pass hashed.
        let mut groups: Vec<(Vec<Item>, f64)> = outlier_groups.into_iter().collect(); // mb-lint: allow(hashmap-order-hazard) -- drained to a Vec and sorted by key on the next line
        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, ao) in groups {
            if ao < min_outlier_count {
                continue;
            }
            let ai = inlier_groups.get(&key).copied().unwrap_or(0.0);
            let stats = ExplanationStats::from_counts(ao, ai, total_outliers, total_inliers);
            if stats.risk_ratio >= config.min_risk_ratio {
                explanations.push(Explanation::new(key, stats));
            }
        }
    }
    explanations
}

fn project(transaction: &[Item], columns: &[usize]) -> Option<Vec<Item>> {
    let mut key = Vec::with_capacity(columns.len());
    for &c in columns {
        key.push(*transaction.get(c)?);
    }
    Some(key)
}

/// A node of the explanation decision tree.
#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        outliers: f64,
        inliers: f64,
    },
    Split {
        item: Item,
        /// Subtree for transactions containing `item`.
        present: Box<TreeNode>,
        /// Subtree for transactions not containing `item`.
        absent: Box<TreeNode>,
    },
}

/// Decision-tree explanation ("DTx" in Table 5): greedily build a tree of
/// item-presence splits (maximizing information gain on the outlier/inlier
/// labels) up to `max_depth`, then report the item sets along root-to-leaf
/// paths whose leaves pass the support and risk-ratio thresholds.
pub fn decision_tree_explain(
    outliers: &[Vec<Item>],
    inliers: &[Vec<Item>],
    max_depth: usize,
    config: &ExplanationConfig,
) -> Vec<Explanation> {
    let total_outliers = outliers.len() as f64;
    let total_inliers = inliers.len() as f64;
    if outliers.is_empty() {
        return Vec::new();
    }
    let outlier_sets: Vec<HashSet<Item>> = outliers
        .iter()
        .map(|t| t.iter().copied().collect())
        .collect();
    let inlier_sets: Vec<HashSet<Item>> = inliers
        .iter()
        .map(|t| t.iter().copied().collect())
        .collect();
    let candidate_set: HashSet<Item> = outliers.iter().flatten().copied().collect();
    let mut candidates: Vec<Item> = candidate_set.into_iter().collect(); // mb-lint: allow(hashmap-order-hazard) -- deduplicated set is sorted on the next line
    // Sorted candidate order makes gain-tie splits (and thus the whole
    // tree) deterministic.
    candidates.sort_unstable();

    let tree = build_tree(
        &outlier_sets.iter().collect::<Vec<_>>(),
        &inlier_sets.iter().collect::<Vec<_>>(),
        &candidates,
        max_depth,
    );

    let min_outlier_count = (config.min_support * total_outliers).max(1.0);
    let mut explanations = Vec::new();
    collect_paths(
        &tree,
        &mut Vec::new(),
        min_outlier_count,
        config.min_risk_ratio,
        total_outliers,
        total_inliers,
        &mut explanations,
    );
    explanations
}

fn entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

fn build_tree(
    outliers: &[&HashSet<Item>],
    inliers: &[&HashSet<Item>],
    candidates: &[Item],
    depth_remaining: usize,
) -> TreeNode {
    let no = outliers.len() as f64;
    let ni = inliers.len() as f64;
    if depth_remaining == 0 || no == 0.0 || ni == 0.0 || candidates.is_empty() {
        return TreeNode::Leaf {
            outliers: no,
            inliers: ni,
        };
    }
    let parent_entropy = entropy(no / (no + ni));
    let mut best: Option<(f64, Item)> = None;
    for &item in candidates {
        let o_with = outliers.iter().filter(|s| s.contains(&item)).count() as f64;
        let i_with = inliers.iter().filter(|s| s.contains(&item)).count() as f64;
        let o_without = no - o_with;
        let i_without = ni - i_with;
        let n_with = o_with + i_with;
        let n_without = o_without + i_without;
        if n_with == 0.0 || n_without == 0.0 {
            continue;
        }
        let gain = parent_entropy
            - (n_with / (no + ni)) * entropy(o_with / n_with)
            - (n_without / (no + ni)) * entropy(o_without / n_without);
        if best.map(|(g, _)| gain > g).unwrap_or(gain > 1e-9) {
            best = Some((gain, item));
        }
    }
    let Some((_, split_item)) = best else {
        return TreeNode::Leaf {
            outliers: no,
            inliers: ni,
        };
    };
    let o_present: Vec<&HashSet<Item>> = outliers
        .iter()
        .copied()
        .filter(|s| s.contains(&split_item))
        .collect();
    let o_absent: Vec<&HashSet<Item>> = outliers
        .iter()
        .copied()
        .filter(|s| !s.contains(&split_item))
        .collect();
    let i_present: Vec<&HashSet<Item>> = inliers
        .iter()
        .copied()
        .filter(|s| s.contains(&split_item))
        .collect();
    let i_absent: Vec<&HashSet<Item>> = inliers
        .iter()
        .copied()
        .filter(|s| !s.contains(&split_item))
        .collect();
    let remaining: Vec<Item> = candidates
        .iter()
        .copied()
        .filter(|&c| c != split_item)
        .collect();
    TreeNode::Split {
        item: split_item,
        present: Box::new(build_tree(
            &o_present,
            &i_present,
            &remaining,
            depth_remaining - 1,
        )),
        absent: Box::new(build_tree(
            &o_absent,
            &i_absent,
            &remaining,
            depth_remaining - 1,
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_paths(
    node: &TreeNode,
    path: &mut Vec<Item>,
    min_outlier_count: f64,
    min_risk_ratio: f64,
    total_outliers: f64,
    total_inliers: f64,
    out: &mut Vec<Explanation>,
) {
    match node {
        TreeNode::Leaf { outliers, inliers } => {
            if path.is_empty() || *outliers < min_outlier_count {
                return;
            }
            let stats = ExplanationStats::from_counts(
                *outliers,
                *inliers,
                total_outliers,
                total_inliers,
            );
            if stats.risk_ratio >= min_risk_ratio {
                out.push(Explanation::new(path.clone(), stats));
            }
        }
        TreeNode::Split {
            item,
            present,
            absent,
        } => {
            path.push(*item);
            collect_paths(
                present,
                path,
                min_outlier_count,
                min_risk_ratio,
                total_outliers,
                total_inliers,
                out,
            );
            path.pop();
            // The "absent" branch describes points *lacking* the item; those
            // paths are not attribute combinations, so only recurse to find
            // further positive splits beneath it.
            collect_paths(
                absent,
                path,
                min_outlier_count,
                min_risk_ratio,
                total_outliers,
                total_inliers,
                out,
            );
        }
    }
}

/// Apriori-based explanation ("AP" in Table 5): mine the outlier transactions
/// with Apriori, mine the inlier transactions with Apriori at the same
/// relative support (the wasted work), join, and filter by risk ratio.
pub fn apriori_explain(
    outliers: &[Vec<Item>],
    inliers: &[Vec<Item>],
    config: &ExplanationConfig,
) -> Vec<Explanation> {
    let total_outliers = outliers.len() as f64;
    let total_inliers = inliers.len() as f64;
    if outliers.is_empty() {
        return Vec::new();
    }
    let min_outlier_count = (config.min_support * total_outliers).max(1.0);
    let outlier_sets = apriori(outliers, min_outlier_count, config.max_combination_size);
    let min_inlier_count = (config.min_support * total_inliers).max(1.0);
    let inlier_sets = apriori(inliers, min_inlier_count, config.max_combination_size);
    let inlier_counts: HashMap<Vec<Item>, f64> = inlier_sets
        .into_iter()
        .map(|s| (s.items, s.support))
        .collect();
    let mut explanations = Vec::new();
    for itemset in outlier_sets {
        let ai = inlier_counts.get(&itemset.items).copied().unwrap_or(0.0);
        let stats =
            ExplanationStats::from_counts(itemset.support, ai, total_outliers, total_inliers);
        if stats.risk_ratio >= config.min_risk_ratio {
            explanations.push(Explanation::new(itemset.items, stats));
        }
    }
    explanations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchExplainer;

    /// Column-aligned workload: column 0 is a device type, column 1 an app
    /// version, column 2 a user id bucket. Outliers are dominated by the
    /// (device=1, version=2) combination.
    fn planted_workload() -> (Vec<Vec<Item>>, Vec<Vec<Item>>) {
        let mut outliers = Vec::new();
        for i in 0..400 {
            if i % 5 != 0 {
                outliers.push(vec![1, 2, 100 + (i % 10) as Item]);
            } else {
                outliers.push(vec![10 + (i % 3) as Item, 20 + (i % 4) as Item, 100 + (i % 10) as Item]);
            }
        }
        let mut inliers = Vec::new();
        for i in 0..4_000 {
            inliers.push(vec![
                10 + (i % 3) as Item,
                20 + (i % 4) as Item,
                100 + (i % 10) as Item,
            ]);
        }
        (outliers, inliers)
    }

    #[test]
    fn cube_finds_planted_combination() {
        let (outliers, inliers) = planted_workload();
        let config = ExplanationConfig::new(0.05, 3.0);
        let explanations = cube_explain(&outliers, &inliers, &config);
        assert!(explanations.iter().any(|e| e.items == vec![1]));
        assert!(explanations.iter().any(|e| e.items == vec![1, 2]));
        // Shared user-id buckets must not be reported on their own.
        assert!(!explanations
            .iter()
            .any(|e| e.items.len() == 1 && e.items[0] >= 100));
    }

    #[test]
    fn cube_handles_empty_outliers() {
        let config = ExplanationConfig::default();
        assert!(cube_explain(&[], &[vec![1, 2]], &config).is_empty());
    }

    #[test]
    fn decision_tree_finds_planted_combination() {
        let (outliers, inliers) = planted_workload();
        let config = ExplanationConfig::new(0.05, 3.0);
        let explanations = decision_tree_explain(&outliers, &inliers, 10, &config);
        assert!(!explanations.is_empty());
        // The tree should split on the planted attributes; the top path must
        // contain item 1 and/or 2.
        assert!(explanations
            .iter()
            .any(|e| e.items.contains(&1) || e.items.contains(&2)));
        // Every reported path meets the risk ratio threshold.
        assert!(explanations
            .iter()
            .all(|e| e.stats.risk_ratio >= 3.0 || e.stats.risk_ratio.is_infinite()));
    }

    #[test]
    fn decision_tree_depth_zero_returns_nothing() {
        let (outliers, inliers) = planted_workload();
        let config = ExplanationConfig::new(0.05, 3.0);
        let explanations = decision_tree_explain(&outliers, &inliers, 0, &config);
        assert!(explanations.is_empty());
    }

    #[test]
    fn apriori_explainer_matches_macrobase_on_planted_workload() {
        let (outliers, inliers) = planted_workload();
        let config = ExplanationConfig::new(0.05, 3.0);
        let ap = apriori_explain(&outliers, &inliers, &config);
        let mb = BatchExplainer::new(config).explain(&outliers, &inliers);
        // Both must find the planted pair.
        assert!(ap.iter().any(|e| e.items == vec![1, 2]));
        assert!(mb.iter().any(|e| e.items == vec![1, 2]));
        // Support counts of the pair agree.
        let ap_pair = ap.iter().find(|e| e.items == vec![1, 2]).unwrap();
        let mb_pair = mb.iter().find(|e| e.items == vec![1, 2]).unwrap();
        assert!((ap_pair.stats.outlier_count - mb_pair.stats.outlier_count).abs() < 1e-9);
    }

    #[test]
    fn all_baselines_respect_risk_ratio_threshold() {
        let (outliers, inliers) = planted_workload();
        let config = ExplanationConfig::new(0.05, 3.0);
        for explanations in [
            cube_explain(&outliers, &inliers, &config),
            decision_tree_explain(&outliers, &inliers, 10, &config),
            apriori_explain(&outliers, &inliers, &config),
        ] {
            for e in &explanations {
                assert!(
                    e.stats.risk_ratio >= 3.0 || e.stats.risk_ratio.is_infinite(),
                    "explanation below threshold: {e:?}"
                );
            }
        }
    }
}
