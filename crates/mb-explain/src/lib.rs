//! Explanation operators for MacroBase-RS (Section 5 of the paper).
//!
//! Explanations are combinations of attribute values that are common among
//! outlier points but uncommon among inliers, measured by **support** (the
//! fraction of outliers containing the combination) and the **relative risk
//! ratio** (how much more likely a point with the combination is to be an
//! outlier than one without it).
//!
//! * [`encoder`] — dictionary encoding of (attribute column, value) pairs
//!   into dense item ids used by the itemset miners.
//! * [`items`] — the columnar [`ItemBatch`] transaction layout (flat item
//!   array + row offsets) the encode pass produces and the batch pipeline
//!   consumes, so strings stop flowing past ingestion.
//! * [`mod@risk_ratio`] — the risk-ratio statistic and explanation types.
//! * [`batch`] — the outlier-aware batch explanation strategy (Algorithm 2)
//!   plus the naïve "mine both sides with FPGrowth" baseline it is compared
//!   against in Section 6.3.
//! * [`streaming`] — the streaming explainer built from AMC sketches and
//!   M-CPS-trees (Figure 2, right half).
//! * [`partition`] — pre-render explanation state ([`ExplainState`]) that
//!   merges across partitions ([`Mergeable`]), enabling coordinated
//!   scale-out: per-partition counts merge on items and risk ratios are
//!   computed from the merged counts.
//! * [`baselines`] — data cubing, decision-tree, and Apriori explainers used
//!   in the Table 5 runtime comparison.
//!
//! ## Example
//!
//! Explain a set of outlier transactions against the inlier background; item
//! `7` dominates the outliers but never appears among inliers, so it is
//! reported:
//!
//! ```
//! use mb_explain::batch::BatchExplainer;
//! use mb_explain::ExplanationConfig;
//!
//! let outliers: Vec<Vec<u32>> = (0..50)
//!     .map(|i| if i % 10 == 0 { vec![1] } else { vec![7] })
//!     .collect();
//! let inliers: Vec<Vec<u32>> = (0..1_000).map(|i| vec![(i % 5) as u32 + 1]).collect();
//!
//! let explainer = BatchExplainer::new(ExplanationConfig::new(0.2, 3.0));
//! let explanations = explainer.explain(&outliers, &inliers);
//! assert!(explanations.iter().any(|e| e.items == vec![7]));
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod batch;
pub mod encoder;
pub mod items;
pub mod partition;
pub mod risk_ratio;
pub mod streaming;

pub use encoder::AttributeEncoder;
pub use items::ItemBatch;
pub use mb_sketch::Mergeable;
pub use partition::ExplainState;
pub use risk_ratio::{risk_ratio, Explanation, ExplanationStats};

/// Parameters shared by every explanation strategy.
#[derive(Debug, Clone, Copy)]
pub struct ExplanationConfig {
    /// Minimum support: the fraction of *outlier* points that must contain an
    /// attribute combination for it to be reported (paper default 0.001,
    /// i.e. 0.1%).
    pub min_support: f64,
    /// Minimum relative risk ratio for a combination to be reported (paper
    /// default 3.0).
    pub min_risk_ratio: f64,
    /// Maximum number of attribute values per reported combination.
    pub max_combination_size: usize,
}

impl Default for ExplanationConfig {
    fn default() -> Self {
        ExplanationConfig {
            min_support: 0.001,
            min_risk_ratio: 3.0,
            max_combination_size: 3,
        }
    }
}

impl ExplanationConfig {
    /// Create a config with explicit support and risk-ratio thresholds.
    pub fn new(min_support: f64, min_risk_ratio: f64) -> Self {
        ExplanationConfig {
            min_support,
            min_risk_ratio,
            max_combination_size: 3,
        }
    }

    /// Builder-style setter for the maximum combination size.
    pub fn with_max_combination_size(mut self, size: usize) -> Self {
        self.max_combination_size = size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let cfg = ExplanationConfig::default();
        assert_eq!(cfg.min_support, 0.001);
        assert_eq!(cfg.min_risk_ratio, 3.0);
    }

    #[test]
    fn builder_setters() {
        let cfg = ExplanationConfig::new(0.01, 5.0).with_max_combination_size(2);
        assert_eq!(cfg.min_support, 0.01);
        assert_eq!(cfg.min_risk_ratio, 5.0);
        assert_eq!(cfg.max_combination_size, 2);
    }
}
