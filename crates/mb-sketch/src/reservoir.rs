//! Classic uniform reservoir sampling (Vitter's Algorithm R).
//!
//! This is the non-adaptive baseline compared against the ADR in Figure 5:
//! it converges to a uniform sample over the *entire* history of the stream,
//! so it cannot track distribution shifts.

use crate::{weighted_subsample_union, Mergeable, StreamSampler};
use mb_stats::rand_ext::SplitMix64;

/// Uniform reservoir sampler of fixed capacity.
#[derive(Debug, Clone)]
pub struct UniformReservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: SplitMix64,
}

impl<T> UniformReservoir<T> {
    /// Create a reservoir holding at most `capacity` items, with a seed for
    /// reproducible sampling decisions.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        UniformReservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: SplitMix64::new(seed),
        }
    }

    /// Total number of items observed so far.
    pub fn observed(&self) -> u64 {
        self.seen
    }

    /// Drain the reservoir, returning its contents and resetting state.
    pub fn drain(&mut self) -> Vec<T> {
        self.seen = 0;
        std::mem::take(&mut self.items)
    }
}

impl<T> Mergeable for UniformReservoir<T> {
    /// Merge two uniform reservoirs over disjoint streams: subsample the
    /// union of both samples, drawing from each side proportionally to how
    /// many stream items it observed, so the result remains (approximately)
    /// a uniform sample over the concatenated stream.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "cannot merge reservoirs of different capacities"
        );
        let items = std::mem::take(&mut self.items);
        self.items = weighted_subsample_union(
            items,
            self.seen as f64,
            other.items,
            other.seen as f64,
            self.capacity,
            &mut self.rng,
        );
        self.seen += other.seen;
    }
}

impl<T> StreamSampler<T> for UniformReservoir<T> {
    fn observe_weighted(&mut self, item: T, _weight: f64) {
        // Uniform reservoirs ignore weights: every observation counts once.
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        // Keep each observed item with probability capacity / seen.
        let j = (self.rng.next_u64() % self.seen) as usize;
        if j < self.capacity {
            self.items[j] = item;
        }
    }

    fn decay(&mut self) {
        // Uniform sampling has no decay; this is intentionally a no-op so the
        // baseline can be driven by the same harness as the ADR.
    }

    fn sample(&self) -> &[T] {
        &self.items
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_up_to_capacity_then_stays_bounded() {
        let mut r = UniformReservoir::new(10, 1);
        for i in 0..5 {
            r.observe(i);
        }
        assert_eq!(r.len(), 5);
        for i in 5..1000 {
            r.observe(i);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.observed(), 1000);
    }

    #[test]
    fn sample_is_subset_of_stream() {
        let mut r = UniformReservoir::new(20, 7);
        for i in 0..500u32 {
            r.observe(i);
        }
        for &x in r.sample() {
            assert!(x < 500);
        }
    }

    #[test]
    fn is_approximately_uniform() {
        // Insert 0..1000 into many independent reservoirs and check the mean
        // of retained values is near the stream mean (≈ 499.5): a uniform
        // sample has no recency bias.
        let mut total = 0.0;
        let mut count = 0usize;
        for seed in 0..200 {
            let mut r = UniformReservoir::new(10, seed);
            for i in 0..1000 {
                r.observe(i as f64);
            }
            total += r.sample().iter().sum::<f64>();
            count += r.len();
        }
        let mean = total / count as f64;
        assert!((mean - 499.5).abs() < 30.0, "mean was {mean}");
    }

    #[test]
    fn drain_resets_state() {
        let mut r = UniformReservoir::new(5, 3);
        for i in 0..100 {
            r.observe(i);
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 5);
        assert!(r.is_empty());
        assert_eq!(r.observed(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = UniformReservoir::<u32>::new(0, 1);
    }

    #[test]
    fn decay_is_noop() {
        let mut r = UniformReservoir::new(5, 3);
        for i in 0..5 {
            r.observe(i);
        }
        let before = r.sample().to_vec();
        r.decay();
        assert_eq!(r.sample(), &before[..]);
    }

    #[test]
    fn merge_is_weighted_by_observed_counts() {
        // Side A saw 10k items of value 0, side B saw 30k of value 100: the
        // merged sample should be ~25% zeros / ~75% hundreds across many
        // independent merges.
        let mut from_b = 0usize;
        let mut total = 0usize;
        for seed in 0..100 {
            let mut a = UniformReservoir::new(40, seed);
            let mut b = UniformReservoir::new(40, seed + 1000);
            for _ in 0..10_000 {
                a.observe(0.0f64);
            }
            for _ in 0..30_000 {
                b.observe(100.0f64);
            }
            a.merge(b);
            assert_eq!(a.len(), 40);
            assert_eq!(a.observed(), 40_000);
            from_b += a.sample().iter().filter(|&&x| x == 100.0).count();
            total += a.len();
        }
        let fraction = from_b as f64 / total as f64;
        assert!(
            (0.70..0.80).contains(&fraction),
            "fraction from the heavier side was {fraction}"
        );
    }

    #[test]
    fn merge_with_underfull_sides_keeps_everything() {
        let mut a = UniformReservoir::new(20, 1);
        let mut b = UniformReservoir::new(20, 2);
        for i in 0..5 {
            a.observe(i);
        }
        for i in 5..12 {
            b.observe(i);
        }
        a.merge(b);
        let mut sample = a.sample().to_vec();
        sample.sort_unstable();
        assert_eq!(sample, (0..12).collect::<Vec<_>>());
        assert_eq!(a.observed(), 12);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn merge_rejects_mismatched_capacities() {
        let mut a = UniformReservoir::<u32>::new(5, 1);
        let b = UniformReservoir::<u32>::new(6, 1);
        a.merge(b);
    }

    proptest! {
        #[test]
        fn merged_sample_is_bounded_union_subset(
            capacity in 1usize..32,
            n_a in 0usize..500,
            n_b in 0usize..500,
            seed in 0u64..50,
        ) {
            let mut a = UniformReservoir::new(capacity, seed);
            let mut b = UniformReservoir::new(capacity, seed + 7);
            for i in 0..n_a {
                a.observe(i as i64);
            }
            for i in 0..n_b {
                b.observe(-(i as i64) - 1);
            }
            a.merge(b);
            prop_assert_eq!(a.observed(), (n_a + n_b) as u64);
            prop_assert_eq!(a.len(), (n_a + n_b).min(capacity));
            for &x in a.sample() {
                let from_a = x >= 0 && (x as usize) < n_a;
                let from_b = x < 0 && ((-x - 1) as usize) < n_b;
                prop_assert!(from_a || from_b, "item {} not from either stream", x);
            }
        }
    }

    proptest! {
        #[test]
        fn never_exceeds_capacity(capacity in 1usize..50, n in 0usize..2000, seed in 0u64..100) {
            let mut r = UniformReservoir::new(capacity, seed);
            for i in 0..n {
                r.observe(i);
            }
            prop_assert!(r.len() <= capacity);
            prop_assert_eq!(r.len(), n.min(capacity));
        }
    }
}
