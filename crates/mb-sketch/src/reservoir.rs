//! Classic uniform reservoir sampling (Vitter's Algorithm R).
//!
//! This is the non-adaptive baseline compared against the ADR in Figure 5:
//! it converges to a uniform sample over the *entire* history of the stream,
//! so it cannot track distribution shifts.

use crate::StreamSampler;
use mb_stats::rand_ext::SplitMix64;

/// Uniform reservoir sampler of fixed capacity.
#[derive(Debug, Clone)]
pub struct UniformReservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: SplitMix64,
}

impl<T> UniformReservoir<T> {
    /// Create a reservoir holding at most `capacity` items, with a seed for
    /// reproducible sampling decisions.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        UniformReservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: SplitMix64::new(seed),
        }
    }

    /// Total number of items observed so far.
    pub fn observed(&self) -> u64 {
        self.seen
    }

    /// Drain the reservoir, returning its contents and resetting state.
    pub fn drain(&mut self) -> Vec<T> {
        self.seen = 0;
        std::mem::take(&mut self.items)
    }
}

impl<T> StreamSampler<T> for UniformReservoir<T> {
    fn observe_weighted(&mut self, item: T, _weight: f64) {
        // Uniform reservoirs ignore weights: every observation counts once.
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        // Keep each observed item with probability capacity / seen.
        let j = (self.rng.next_u64() % self.seen) as usize;
        if j < self.capacity {
            self.items[j] = item;
        }
    }

    fn decay(&mut self) {
        // Uniform sampling has no decay; this is intentionally a no-op so the
        // baseline can be driven by the same harness as the ADR.
    }

    fn sample(&self) -> &[T] {
        &self.items
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_up_to_capacity_then_stays_bounded() {
        let mut r = UniformReservoir::new(10, 1);
        for i in 0..5 {
            r.observe(i);
        }
        assert_eq!(r.len(), 5);
        for i in 5..1000 {
            r.observe(i);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.observed(), 1000);
    }

    #[test]
    fn sample_is_subset_of_stream() {
        let mut r = UniformReservoir::new(20, 7);
        for i in 0..500u32 {
            r.observe(i);
        }
        for &x in r.sample() {
            assert!(x < 500);
        }
    }

    #[test]
    fn is_approximately_uniform() {
        // Insert 0..1000 into many independent reservoirs and check the mean
        // of retained values is near the stream mean (≈ 499.5): a uniform
        // sample has no recency bias.
        let mut total = 0.0;
        let mut count = 0usize;
        for seed in 0..200 {
            let mut r = UniformReservoir::new(10, seed);
            for i in 0..1000 {
                r.observe(i as f64);
            }
            total += r.sample().iter().sum::<f64>();
            count += r.len();
        }
        let mean = total / count as f64;
        assert!((mean - 499.5).abs() < 30.0, "mean was {mean}");
    }

    #[test]
    fn drain_resets_state() {
        let mut r = UniformReservoir::new(5, 3);
        for i in 0..100 {
            r.observe(i);
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 5);
        assert!(r.is_empty());
        assert_eq!(r.observed(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = UniformReservoir::<u32>::new(0, 1);
    }

    #[test]
    fn decay_is_noop() {
        let mut r = UniformReservoir::new(5, 3);
        for i in 0..5 {
            r.observe(i);
        }
        let before = r.sample().to_vec();
        r.decay();
        assert_eq!(r.sample(), &before[..]);
    }

    proptest! {
        #[test]
        fn never_exceeds_capacity(capacity in 1usize..50, n in 0usize..2000, seed in 0u64..100) {
            let mut r = UniformReservoir::new(capacity, seed);
            for i in 0..n {
                r.observe(i);
            }
            prop_assert!(r.len() <= capacity);
            prop_assert_eq!(r.len(), n.min(capacity));
        }
    }
}
