//! Streaming quantile estimation via the ADR (Section 4.2).
//!
//! MDP classifies the points whose outlier scores exceed a target percentile
//! (e.g. the 99th). Rather than maintaining an exact streaming quantile
//! structure under exponential decay, MacroBase samples the *score stream*
//! into an ADR and periodically recomputes the quantile from the sample: an
//! ADR of ~20K scores gives a 1%-approximate quantile with 99% probability
//! (`O(1/ε² · log(1/δ))` sample complexity).

use crate::adr::{AdaptableDampedReservoir, DecayPolicy};
use crate::StreamSampler;
use mb_stats::univariate::quantile_in_place;
use mb_stats::{Result, StatsError};

/// Streaming quantile estimator backed by an Adaptable Damped Reservoir.
#[derive(Debug, Clone)]
pub struct AdrQuantileEstimator {
    reservoir: AdaptableDampedReservoir<f64>,
    quantile: f64,
    cached_threshold: Option<f64>,
    observations_since_refresh: u64,
    refresh_period: u64,
}

impl AdrQuantileEstimator {
    /// Create an estimator for the given `quantile ∈ [0, 1]`.
    ///
    /// * `capacity` — reservoir size (the paper uses 10K–20K).
    /// * `decay_rate` — exponential decay applied by [`decay`].
    /// * `refresh_period` — number of observations between automatic
    ///   recomputations of the cached threshold.
    ///
    /// [`decay`]: AdrQuantileEstimator::decay
    pub fn new(
        quantile: f64,
        capacity: usize,
        decay_rate: f64,
        refresh_period: u64,
        seed: u64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&quantile) {
            return Err(StatsError::InvalidParameter(format!(
                "quantile must be in [0, 1], got {quantile}"
            )));
        }
        if refresh_period == 0 {
            return Err(StatsError::InvalidParameter(
                "refresh period must be positive".to_string(),
            ));
        }
        Ok(AdrQuantileEstimator {
            reservoir: AdaptableDampedReservoir::new(
                capacity,
                decay_rate,
                DecayPolicy::Manual,
                seed,
            ),
            quantile,
            cached_threshold: None,
            observations_since_refresh: 0,
            refresh_period,
        })
    }

    /// Observe one score.
    pub fn observe(&mut self, score: f64) {
        if !score.is_finite() {
            // Non-finite scores (e.g. from degenerate models) are dropped
            // rather than poisoning the threshold.
            return;
        }
        self.reservoir.observe(score);
        self.observations_since_refresh += 1;
        if self.observations_since_refresh >= self.refresh_period {
            self.refresh();
        }
    }

    /// Apply one decay step to the underlying reservoir.
    pub fn decay(&mut self) {
        self.reservoir.decay();
    }

    /// Recompute the cached threshold from the current reservoir contents.
    pub fn refresh(&mut self) {
        self.observations_since_refresh = 0;
        if self.reservoir.is_empty() {
            self.cached_threshold = None;
            return;
        }
        let mut sample = self.reservoir.snapshot();
        self.cached_threshold = quantile_in_place(&mut sample, self.quantile).ok();
    }

    /// The current threshold estimate (refreshing lazily if none is cached).
    pub fn threshold(&mut self) -> Result<f64> {
        if self.cached_threshold.is_none() {
            self.refresh();
        }
        self.cached_threshold.ok_or(StatsError::EmptyInput)
    }

    /// The threshold computed at the last refresh, if any (non-mutating).
    pub fn cached_threshold(&self) -> Option<f64> {
        self.cached_threshold
    }

    /// The configured quantile.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// Number of scores currently retained in the reservoir.
    pub fn sample_size(&self) -> usize {
        self.reservoir.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_stats::rand_ext::{normal, SplitMix64};

    #[test]
    fn rejects_invalid_parameters() {
        assert!(AdrQuantileEstimator::new(1.5, 100, 0.01, 10, 1).is_err());
        assert!(AdrQuantileEstimator::new(0.5, 100, 0.01, 0, 1).is_err());
    }

    #[test]
    fn empty_estimator_errors() {
        let mut est = AdrQuantileEstimator::new(0.99, 100, 0.01, 10, 1).unwrap();
        assert_eq!(est.threshold(), Err(StatsError::EmptyInput));
    }

    #[test]
    fn estimates_quantile_of_uniform_stream() {
        let mut est = AdrQuantileEstimator::new(0.99, 20_000, 0.0, 1_000, 1).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..100_000 {
            est.observe(rng.next_f64());
        }
        let t = est.threshold().unwrap();
        assert!((t - 0.99).abs() < 0.01, "threshold was {t}");
    }

    #[test]
    fn estimates_quantile_of_gaussian_scores() {
        // 99th percentile of |N(0,1)| scores is ~2.576 (two-sided) — here we
        // use one-sided N(0,1), whose 99th percentile is ~2.326.
        let mut est = AdrQuantileEstimator::new(0.99, 20_000, 0.0, 5_000, 2).unwrap();
        let mut rng = SplitMix64::new(7);
        for _ in 0..200_000 {
            est.observe(normal(&mut rng, 0.0, 1.0));
        }
        let t = est.threshold().unwrap();
        assert!((t - 2.326).abs() < 0.15, "threshold was {t}");
    }

    #[test]
    fn ignores_non_finite_scores() {
        let mut est = AdrQuantileEstimator::new(0.5, 100, 0.0, 10, 3).unwrap();
        for i in 0..100 {
            est.observe(i as f64);
            est.observe(f64::NAN);
            est.observe(f64::INFINITY);
        }
        let t = est.threshold().unwrap();
        assert!(t.is_finite());
        assert!((t - 49.5).abs() < 10.0);
    }

    #[test]
    fn adapts_to_score_distribution_shift_with_decay() {
        let mut est = AdrQuantileEstimator::new(0.9, 2_000, 0.5, 500, 4).unwrap();
        let mut rng = SplitMix64::new(9);
        // Initial regime: scores around 1.
        for _ in 0..20_000 {
            est.observe(normal(&mut rng, 1.0, 0.1));
        }
        est.decay();
        let before = est.threshold().unwrap();
        // Shifted regime: scores around 10, with periodic decay.
        for i in 0..20_000 {
            est.observe(normal(&mut rng, 10.0, 0.1));
            if i % 2_000 == 0 {
                est.decay();
            }
        }
        est.refresh();
        let after = est.threshold().unwrap();
        assert!(before < 2.0, "before = {before}");
        assert!(after > 8.0, "after = {after}");
    }

    #[test]
    fn refresh_period_controls_staleness() {
        let mut est = AdrQuantileEstimator::new(0.5, 1_000, 0.0, 1_000_000, 5).unwrap();
        for i in 0..100 {
            est.observe(i as f64);
        }
        // Lazy refresh on first call...
        let t1 = est.threshold().unwrap();
        // ...then the cache does not move until refresh() even as new data arrives.
        for i in 1_000..2_000 {
            est.observe(i as f64);
        }
        assert_eq!(est.cached_threshold(), Some(t1));
        est.refresh();
        assert!(est.cached_threshold().unwrap() > t1);
    }
}
