//! The Adaptable Damped Reservoir (ADR) — Algorithm 1 of the paper.
//!
//! The ADR is an exponentially damped reservoir sampler that decays over
//! *arbitrary* windows instead of per tuple. It keeps a running weight `cw`
//! of everything inserted so far; each new item is admitted with probability
//! `k / cw` (evicting a random resident), and a decay step simply multiplies
//! `cw` by `(1 − α)`. Because decay is decoupled from insertion, the caller
//! chooses the decay policy — per real-time period, per batch of tuples, or
//! anything else — which is what makes the sampler resilient to arrival-rate
//! spikes (Figure 5): a burst of tuples does not flush the reservoir the way
//! per-tuple damped samplers do.

use crate::{weighted_subsample_union, Mergeable, StreamSampler};
use mb_stats::rand_ext::SplitMix64;

/// When to trigger an automatic decay step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayPolicy {
    /// The caller invokes [`AdaptableDampedReservoir::decay`] manually (e.g.
    /// from a real-time timer). This is the paper's "time-based decay".
    Manual,
    /// Decay automatically after every `n` observed items ("batch-based
    /// decay" in the paper / Appendix A).
    EveryNItems(u64),
}

/// The Adaptable Damped Reservoir (Algorithm 1).
#[derive(Debug, Clone)]
pub struct AdaptableDampedReservoir<T> {
    capacity: usize,
    decay_rate: f64,
    policy: DecayPolicy,
    current_weight: f64,
    items: Vec<T>,
    items_since_decay: u64,
    total_observed: u64,
    rng: SplitMix64,
}

impl<T> AdaptableDampedReservoir<T> {
    /// Create an ADR with reservoir size `capacity` and decay rate
    /// `decay_rate ∈ [0, 1)`; each decay step multiplies the running weight
    /// by `1 − decay_rate`.
    pub fn new(capacity: usize, decay_rate: f64, policy: DecayPolicy, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert!(
            (0.0..1.0).contains(&decay_rate),
            "decay rate must be in [0, 1)"
        );
        if let DecayPolicy::EveryNItems(n) = policy {
            assert!(n > 0, "batch decay period must be positive");
        }
        AdaptableDampedReservoir {
            capacity,
            decay_rate,
            policy,
            current_weight: 0.0,
            items: Vec::with_capacity(capacity),
            items_since_decay: 0,
            total_observed: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Current running weight `cw` (sum of inserted weights after decay).
    pub fn current_weight(&self) -> f64 {
        self.current_weight
    }

    /// Total number of observations (ignoring decay).
    pub fn observed(&self) -> u64 {
        self.total_observed
    }

    /// Clone the current sample out of the reservoir.
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.items.clone()
    }
}

impl<T> Mergeable for AdaptableDampedReservoir<T> {
    /// Merge two ADRs over disjoint sub-streams by weighted subsample union:
    /// the merged reservoir draws from each side proportionally to its
    /// decayed running weight `cw`, so a partition that has seen (or still
    /// retains, post-decay) more stream weight contributes proportionally
    /// more of the merged sample. The merged running weight is the sum —
    /// the `cw` a single ADR would carry after ingesting both sub-streams,
    /// assuming the operands applied the same decay steps (both sides must
    /// share capacity, decay rate, and decay policy). Under batch-based
    /// decay the operands' since-last-decay counters add, and an overdue
    /// decay step fires immediately, as it would have on the combined
    /// stream.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "cannot merge reservoirs of different capacities"
        );
        assert!(
            (self.decay_rate - other.decay_rate).abs() < 1e-12,
            "cannot merge ADRs with different decay rates"
        );
        assert_eq!(
            self.policy, other.policy,
            "cannot merge ADRs with different decay policies"
        );
        let items = std::mem::take(&mut self.items);
        self.items = weighted_subsample_union(
            items,
            self.current_weight,
            other.items,
            other.current_weight,
            self.capacity,
            &mut self.rng,
        );
        self.current_weight += other.current_weight;
        self.total_observed += other.total_observed;
        if let DecayPolicy::EveryNItems(n) = self.policy {
            self.items_since_decay += other.items_since_decay;
            // Fire every decay the combined stream would have fired, keeping
            // the remainder so the next period ends where it would have.
            while self.items_since_decay >= n {
                self.items_since_decay -= n;
                self.decay();
            }
        }
    }
}

impl<T> StreamSampler<T> for AdaptableDampedReservoir<T> {
    fn observe_weighted(&mut self, item: T, weight: f64) {
        assert!(weight > 0.0, "observation weight must be positive");
        self.total_observed += 1;
        self.current_weight += weight;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Insert with probability k / cw, evicting a random resident.
            // "Overweight" items (k/cw > 1) are always retained — the min()
            // below keeps the probability well-formed in that regime.
            let p = (self.capacity as f64 / self.current_weight).min(1.0);
            if self.rng.next_f64() < p {
                let victim = self.rng.next_below(self.capacity);
                self.items[victim] = item;
            }
        }
        if let DecayPolicy::EveryNItems(n) = self.policy {
            self.items_since_decay += 1;
            if self.items_since_decay >= n {
                self.items_since_decay = 0;
                self.decay();
            }
        }
    }

    fn decay(&mut self) {
        self.current_weight *= 1.0 - self.decay_rate;
    }

    fn sample(&self) -> &[T] {
        &self.items
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn fills_then_stays_bounded() {
        let mut adr = AdaptableDampedReservoir::new(50, 0.01, DecayPolicy::Manual, 1);
        for i in 0..1000 {
            adr.observe(i);
        }
        assert_eq!(adr.len(), 50);
        assert_eq!(adr.observed(), 1000);
    }

    #[test]
    fn decay_reduces_running_weight() {
        let mut adr = AdaptableDampedReservoir::new(10, 0.5, DecayPolicy::Manual, 1);
        for i in 0..100 {
            adr.observe(i);
        }
        let before = adr.current_weight();
        adr.decay();
        assert!((adr.current_weight() - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn batch_policy_decays_automatically() {
        let mut manual = AdaptableDampedReservoir::new(10, 0.2, DecayPolicy::Manual, 1);
        let mut auto = AdaptableDampedReservoir::new(10, 0.2, DecayPolicy::EveryNItems(100), 1);
        for i in 0..1000 {
            manual.observe(i);
            auto.observe(i);
        }
        // The automatic policy has decayed 10 times; the manual one never.
        assert!(auto.current_weight() < manual.current_weight());
    }

    #[test]
    fn adapts_to_distribution_shift_while_uniform_does_not() {
        // Core adaptivity property behind Figure 5: after a shift from values
        // ~0 to values ~100 with periodic decay, the ADR's reservoir mean
        // tracks the new regime much faster than a uniform reservoir.
        use crate::reservoir::UniformReservoir;
        let mut adr = AdaptableDampedReservoir::new(100, 0.5, DecayPolicy::EveryNItems(1000), 3);
        let mut uni = UniformReservoir::new(100, 3);
        for _ in 0..20_000 {
            adr.observe(0.0);
            uni.observe(0.0);
        }
        for _ in 0..20_000 {
            adr.observe(100.0);
            uni.observe(100.0);
        }
        let adr_mean = mean(adr.sample());
        let uni_mean = mean(uni.sample());
        assert!(adr_mean > 80.0, "ADR mean was {adr_mean}");
        assert!(uni_mean < 70.0, "uniform mean was {uni_mean}");
    }

    #[test]
    fn resists_arrival_rate_spike_better_than_per_tuple_decay() {
        // Second half of the Figure 5 story: a short 10x burst of noise
        // values should not take over the ADR sample (its decay is per
        // batch/time, not per tuple), while a per-tuple damped sampler
        // absorbs the burst almost completely.
        use crate::biased::PerTupleBiasedReservoir;
        // Steady state: 10k points of value 40, decaying every 1000 points
        // (simulating a time period at the normal arrival rate).
        let mut adr = AdaptableDampedReservoir::new(100, 0.1, DecayPolicy::Manual, 5);
        let mut biased = PerTupleBiasedReservoir::new(100, 0.001, 5);
        for _ in 0..10_000 {
            adr.observe(40.0);
            biased.observe(40.0);
        }
        adr.decay();
        // Burst: 20k noise points arriving within ONE decay period — the ADR
        // decays once (time-based), the per-tuple sampler decays 20k times.
        for _ in 0..20_000 {
            adr.observe(85.0);
            biased.observe(85.0);
        }
        adr.decay();
        let adr_mean = mean(adr.sample());
        let biased_mean = mean(biased.sample());
        assert!(
            biased_mean > 80.0,
            "per-tuple sampler should absorb the burst, mean was {biased_mean}"
        );
        assert!(
            adr_mean < biased_mean,
            "ADR ({adr_mean}) should retain more history than per-tuple ({biased_mean})"
        );
    }

    #[test]
    fn overweight_items_are_retained_under_extreme_decay() {
        // After extreme decay cw can fall below k; subsequent items must
        // still be inserted (probability clamps at 1) without panicking.
        let mut adr = AdaptableDampedReservoir::new(10, 0.99, DecayPolicy::Manual, 7);
        for i in 0..100 {
            adr.observe(i);
        }
        for _ in 0..10 {
            adr.decay();
        }
        assert!(adr.current_weight() < 1.0);
        for i in 100..200 {
            adr.observe(i);
        }
        assert_eq!(adr.len(), 10);
        assert!(adr.current_weight() > 0.0);
    }

    #[test]
    #[should_panic(expected = "decay rate must be in [0, 1)")]
    fn rejects_invalid_decay_rate() {
        let _ = AdaptableDampedReservoir::<f64>::new(10, 1.5, DecayPolicy::Manual, 1);
    }

    #[test]
    #[should_panic(expected = "observation weight must be positive")]
    fn rejects_nonpositive_weight() {
        let mut adr = AdaptableDampedReservoir::new(10, 0.1, DecayPolicy::Manual, 1);
        adr.observe_weighted(1.0, 0.0);
    }

    #[test]
    fn weighted_observations_accumulate_weight() {
        let mut adr = AdaptableDampedReservoir::new(10, 0.1, DecayPolicy::Manual, 1);
        adr.observe_weighted("a", 5.0);
        adr.observe_weighted("b", 2.5);
        assert!((adr.current_weight() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_weights_and_respects_capacity() {
        let mut a = AdaptableDampedReservoir::new(50, 0.1, DecayPolicy::Manual, 1);
        let mut b = AdaptableDampedReservoir::new(50, 0.1, DecayPolicy::Manual, 2);
        for i in 0..1_000 {
            a.observe(i as f64);
            b.observe(10_000.0 + i as f64);
        }
        let (wa, wb) = (a.current_weight(), b.current_weight());
        a.merge(b);
        assert_eq!(a.len(), 50);
        assert_eq!(a.observed(), 2_000);
        assert!((a.current_weight() - (wa + wb)).abs() < 1e-9);
    }

    #[test]
    fn merge_draws_proportionally_to_decayed_weight() {
        // Side B decays heavily before the merge, so its (large) sample
        // represents far less current stream weight and the merged sample is
        // dominated by side A.
        let mut from_a = 0usize;
        let mut total = 0usize;
        for seed in 0..100 {
            let mut a = AdaptableDampedReservoir::new(40, 0.5, DecayPolicy::Manual, seed);
            let mut b = AdaptableDampedReservoir::new(40, 0.5, DecayPolicy::Manual, seed + 500);
            for _ in 0..10_000 {
                a.observe(1.0f64);
                b.observe(2.0f64);
            }
            for _ in 0..5 {
                b.decay(); // b's weight drops to ~3% of a's
            }
            a.merge(b);
            from_a += a.sample().iter().filter(|&&x| x == 1.0).count();
            total += a.len();
        }
        let fraction = from_a as f64 / total as f64;
        assert!(
            fraction > 0.9,
            "undecayed side should dominate, got {fraction}"
        );
    }

    #[test]
    #[should_panic(expected = "different decay rates")]
    fn merge_rejects_mismatched_decay_rates() {
        let mut a = AdaptableDampedReservoir::<f64>::new(10, 0.1, DecayPolicy::Manual, 1);
        let b = AdaptableDampedReservoir::<f64>::new(10, 0.2, DecayPolicy::Manual, 1);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "different decay policies")]
    fn merge_rejects_mismatched_decay_policies() {
        let mut a = AdaptableDampedReservoir::<f64>::new(10, 0.1, DecayPolicy::Manual, 1);
        let b = AdaptableDampedReservoir::<f64>::new(10, 0.1, DecayPolicy::EveryNItems(10), 1);
        a.merge(b);
    }

    #[test]
    fn merge_fires_overdue_batch_decay_and_keeps_the_remainder() {
        // Each side is 60 items into a 100-item decay period; the combined
        // stream would have decayed at item 100 and carried 20 items toward
        // the next period, so the merge fires the overdue step and the next
        // decay lands 80 items later — not 100.
        let mut a = AdaptableDampedReservoir::new(10, 0.5, DecayPolicy::EveryNItems(100), 1);
        let mut b = AdaptableDampedReservoir::new(10, 0.5, DecayPolicy::EveryNItems(100), 2);
        for i in 0..60 {
            a.observe(i as f64);
            b.observe(i as f64);
        }
        a.merge(b);
        // 120 combined weight, decayed once: 60.
        assert!((a.current_weight() - 60.0).abs() < 1e-9);
        // 79 more items: still inside the carried-over period (20 + 79 = 99).
        for i in 0..79 {
            a.observe(i as f64);
        }
        assert!((a.current_weight() - 139.0).abs() < 1e-9);
        // The 80th item completes the period and decays: (139 + 1) * 0.5.
        a.observe(0.0);
        assert!((a.current_weight() - 70.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn merged_adr_keeps_invariants(
            capacity in 1usize..32,
            n_a in 0usize..500,
            n_b in 0usize..500,
            decay_rate in 0.0f64..0.9,
            seed in 0u64..50,
        ) {
            let mut a = AdaptableDampedReservoir::new(
                capacity, decay_rate, DecayPolicy::Manual, seed);
            let mut b = AdaptableDampedReservoir::new(
                capacity, decay_rate, DecayPolicy::Manual, seed + 13);
            for i in 0..n_a {
                a.observe(i as f64);
            }
            for i in 0..n_b {
                b.observe(1_000_000.0 + i as f64);
            }
            let expected_weight = a.current_weight() + b.current_weight();
            a.merge(b);
            prop_assert_eq!(a.len(), (n_a + n_b).min(capacity));
            prop_assert!((a.current_weight() - expected_weight).abs() < 1e-9);
            prop_assert_eq!(a.observed(), (n_a + n_b) as u64);
            for &x in a.sample() {
                prop_assert!(
                    (x >= 0.0 && x < n_a as f64)
                        || (x >= 1_000_000.0 && x < 1_000_000.0 + n_b as f64)
                );
            }
        }
    }

    proptest! {
        #[test]
        fn capacity_invariant_and_weight_positive(
            capacity in 1usize..64,
            n in 1usize..2000,
            decay_rate in 0.0f64..0.99,
            decay_every in 1u64..500,
            seed in 0u64..50,
        ) {
            let mut adr = AdaptableDampedReservoir::new(
                capacity, decay_rate, DecayPolicy::EveryNItems(decay_every), seed);
            for i in 0..n {
                adr.observe(i as f64);
            }
            prop_assert!(adr.len() <= capacity);
            prop_assert_eq!(adr.len(), n.min(capacity));
            prop_assert!(adr.current_weight() >= 0.0);
            // Every retained item came from the stream.
            for &x in adr.sample() {
                prop_assert!(x >= 0.0 && x < n as f64);
            }
        }
    }
}
