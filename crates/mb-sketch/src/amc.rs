//! The Amortized Maintenance Counter (AMC) — Algorithm 3 of the paper.
//!
//! The AMC is a heavy-hitters sketch sitting at the opposite end of the
//! design space from SpaceSaving: it spends more memory to get **constant
//! time** updates (one hash-map operation per observation) and amortizes the
//! work of keeping the sketch small across an entire maintenance period.
//!
//! * `observe(i, c)`: if `i` is tracked, add `c` to its count; otherwise
//!   start tracking it at `w_i + c`, where `w_i` is the largest count
//!   discarded during the previous maintenance (so an untracked item's count
//!   can never be *under*-estimated by more than it could have accumulated
//!   unseen).
//! * `maintain()`: prune the map down to its stable size (the `1/ε` largest
//!   entries) and remember the largest discarded count as the new `w_i`.
//! * `decay(r)`: multiply every tracked count by `r` and run maintenance —
//!   this is the exponentially damped mode used by MDP's streaming
//!   explanation operator.
//!
//! With a stable size of `1/ε`, the estimate of any item's count is within
//! `εN` of its true (decayed) count, as in SpaceSaving, but the sketch may
//! temporarily grow between maintenance calls (bounded by the maintenance
//! period).

use crate::{HeavyHitterSketch, Mergeable};
use std::collections::HashMap;
use std::hash::Hash;

/// Maintenance policy for the AMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Run maintenance automatically after every `n` observations.
    EveryNObservations(u64),
    /// Run maintenance automatically when the sketch grows to `max` items.
    SizeBound(usize),
    /// The caller invokes [`AmcSketch::maintain`] explicitly (e.g. on a
    /// real-time timer), mirroring the ADR's manual decay policy.
    Manual,
}

/// The Amortized Maintenance Counter sketch.
#[derive(Debug, Clone)]
pub struct AmcSketch<T: Eq + Hash + Clone> {
    stable_size: usize,
    policy: MaintenancePolicy,
    counts: HashMap<T, f64>,
    /// Largest count discarded at the previous maintenance (the `w_i` of
    /// Algorithm 3); new items are credited this much on first observation.
    discarded_weight: f64,
    observations_since_maintenance: u64,
    total_weight: f64,
}

impl<T: Eq + Hash + Clone> AmcSketch<T> {
    /// Create an AMC with the given stable size and an observation-count
    /// maintenance period (the configuration used in Figure 6).
    pub fn new(stable_size: usize, maintenance_period: u64) -> Self {
        Self::with_policy(
            stable_size,
            MaintenancePolicy::EveryNObservations(maintenance_period),
        )
    }

    /// Create an AMC with an explicit maintenance policy.
    pub fn with_policy(stable_size: usize, policy: MaintenancePolicy) -> Self {
        assert!(stable_size > 0, "stable size must be positive");
        if let MaintenancePolicy::EveryNObservations(n) = policy {
            assert!(n > 0, "maintenance period must be positive");
        }
        if let MaintenancePolicy::SizeBound(max) = policy {
            assert!(
                max >= stable_size,
                "size bound must be at least the stable size"
            );
        }
        AmcSketch {
            stable_size,
            policy,
            counts: HashMap::with_capacity(stable_size * 2),
            discarded_weight: 0.0,
            observations_since_maintenance: 0,
            total_weight: 0.0,
        }
    }

    /// The configured stable (post-maintenance) size.
    pub fn stable_size(&self) -> usize {
        self.stable_size
    }

    /// The weight credited to newly observed items (`w_i` in Algorithm 3).
    pub fn discarded_weight(&self) -> f64 {
        self.discarded_weight
    }

    /// Prune the sketch down to its stable size, recording the largest
    /// discarded count. O(I log(1/ε)) via partial selection, amortized across
    /// the maintenance period.
    pub fn maintain(&mut self) {
        self.observations_since_maintenance = 0;
        if self.counts.len() <= self.stable_size {
            return;
        }
        // Select the stable_size largest counts; everything else is dropped.
        let mut entries: Vec<(T, f64)> = self.counts.drain().collect(); // mb-lint: allow(hashmap-order-hazard) -- re-sorted below; which equal-count entry survives the prune is within the AMC's εN error model
        crate::sort_entries_desc(&mut entries);
        let mut max_discarded: f64 = 0.0;
        for (idx, (key, count)) in entries.into_iter().enumerate() {
            if idx < self.stable_size {
                self.counts.insert(key, count);
            } else {
                max_discarded = max_discarded.max(count);
            }
        }
        self.discarded_weight = max_discarded;
    }

    /// Run maintenance if the configured policy says it is due.
    fn maybe_maintain(&mut self) {
        match self.policy {
            MaintenancePolicy::EveryNObservations(n) => {
                if self.observations_since_maintenance >= n {
                    self.maintain();
                }
            }
            MaintenancePolicy::SizeBound(max) => {
                if self.counts.len() > max {
                    self.maintain();
                }
            }
            MaintenancePolicy::Manual => {}
        }
    }
}

impl<T: Eq + Hash + Clone> Mergeable for AmcSketch<T> {
    /// Merge two AMC sketches built over disjoint sub-streams.
    ///
    /// Tracked counts add; the merged sketch is then pruned back to its
    /// stable size. The discarded weight is at least the sum of both
    /// operands' discarded weights, so the AMC invariant composes: an item's
    /// estimate under-counts its true (combined) count by at most
    /// `w_self + w_other`, and new items keep being credited enough to never
    /// fall below what they could have accumulated unseen on either stream.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.stable_size, other.stable_size,
            "cannot merge AMC sketches of different stable sizes"
        );
        let combined_discarded = self.discarded_weight + other.discarded_weight;
        self.total_weight += other.total_weight;
        // mb-lint: allow(hashmap-order-hazard) -- order-insensitive fold: each item's count accumulates independently
        for (item, count) in other.counts {
            *self.counts.entry(item).or_insert(0.0) += count;
        }
        self.maintain();
        self.discarded_weight = self.discarded_weight.max(combined_discarded);
    }
}

impl<T: Eq + Hash + Clone> HeavyHitterSketch<T> for AmcSketch<T> {
    fn observe_count(&mut self, item: T, count: f64) {
        assert!(count >= 0.0, "counts must be non-negative");
        self.total_weight += count;
        self.observations_since_maintenance += 1;
        match self.counts.get_mut(&item) {
            Some(existing) => *existing += count,
            None => {
                // New (or previously pruned) item: credit the discarded
                // weight so its count is never under-estimated by more than
                // what it could have accumulated while untracked.
                self.counts.insert(item, self.discarded_weight + count);
            }
        }
        self.maybe_maintain();
    }

    fn estimate(&self, item: &T) -> f64 {
        self.counts.get(item).copied().unwrap_or(0.0)
    }

    fn decay(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must be in [0, 1]"
        );
        // mb-lint: allow(hashmap-order-hazard) -- order-insensitive scaling: each count shrinks independently
        for count in self.counts.values_mut() {
            *count *= factor;
        }
        self.discarded_weight *= factor;
        self.total_weight *= factor;
        // Algorithm 3: DECAY calls MAINTAIN.
        self.maintain();
    }

    fn entries(&self) -> Vec<(T, f64)> {
        self.counts
            .iter() // mb-lint: allow(hashmap-order-hazard) -- entries() is unordered by contract; report-bound consumers sort via sort_entries_desc
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn tracked_items(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_stats::rand_ext::{SplitMix64, Zipf};
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn exact_when_under_stable_size() {
        let mut amc = AmcSketch::new(100, 1000);
        for i in 0..50u32 {
            for _ in 0..=i {
                amc.observe(i);
            }
        }
        for i in 0..50u32 {
            assert_eq!(amc.estimate(&i), (i + 1) as f64);
        }
        assert_eq!(amc.estimate(&999), 0.0);
    }

    #[test]
    fn maintenance_prunes_to_stable_size() {
        let mut amc = AmcSketch::with_policy(10, MaintenancePolicy::Manual);
        for i in 0..100u32 {
            amc.observe_count(i, (i + 1) as f64);
        }
        assert_eq!(amc.tracked_items(), 100);
        amc.maintain();
        assert_eq!(amc.tracked_items(), 10);
        // The survivors are the 10 largest counts (91..=100).
        for i in 90..100u32 {
            assert!(amc.estimate(&i) > 0.0);
        }
        for i in 0..80u32 {
            assert_eq!(amc.estimate(&i), 0.0);
        }
        // The discarded weight is the largest pruned count (item 89 -> 90).
        assert_eq!(amc.discarded_weight(), 90.0);
    }

    #[test]
    fn new_items_credited_discarded_weight() {
        let mut amc = AmcSketch::with_policy(2, MaintenancePolicy::Manual);
        amc.observe_count("a", 100.0);
        amc.observe_count("b", 50.0);
        amc.observe_count("c", 30.0);
        amc.maintain();
        assert_eq!(amc.discarded_weight(), 30.0);
        // A new item is credited w_i + c, overestimating rather than
        // underestimating its true count.
        amc.observe_count("d", 1.0);
        assert_eq!(amc.estimate(&"d"), 31.0);
    }

    #[test]
    fn never_underestimates_overestimates_bounded() {
        // Error bound check against exact counts on a skewed stream: for any
        // item, exact <= estimate <= exact + max_discarded_so_far.
        let mut rng = SplitMix64::new(9);
        let zipf = Zipf::new(5000, 1.1);
        let mut amc = AmcSketch::new(100, 1_000);
        let mut exact: HashMap<usize, f64> = HashMap::new();
        let mut max_discarded: f64 = 0.0;
        for _ in 0..200_000 {
            let item = zipf.sample(&mut rng);
            amc.observe(item);
            *exact.entry(item).or_insert(0.0) += 1.0;
            max_discarded = max_discarded.max(amc.discarded_weight());
        }
        for (item, true_count) in &exact {
            let est = amc.estimate(item);
            if est > 0.0 {
                assert!(
                    est + 1e-9 >= *true_count,
                    "item {item}: estimate {est} under-estimates {true_count}"
                );
                assert!(
                    est <= *true_count + max_discarded + 1e-9,
                    "item {item}: estimate {est} exceeds {true_count} + {max_discarded}"
                );
            }
        }
        // Heavy hitters (top Zipf items) are tracked and accurately counted.
        let top = amc.estimate(&0);
        assert!(top > 0.0);
        assert!((top - exact[&0]).abs() / exact[&0] < 0.05);
    }

    #[test]
    fn decay_halves_counts_and_total() {
        let mut amc = AmcSketch::new(10, 1_000_000);
        for _ in 0..100 {
            amc.observe("x");
        }
        amc.decay(0.5);
        assert!((amc.estimate(&"x") - 50.0).abs() < 1e-9);
        assert!((amc.total_weight() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn size_bound_policy_caps_growth() {
        let mut amc = AmcSketch::with_policy(10, MaintenancePolicy::SizeBound(50));
        for i in 0..10_000u32 {
            amc.observe(i);
        }
        assert!(amc.tracked_items() <= 51);
    }

    #[test]
    fn observation_period_policy_triggers() {
        let mut amc = AmcSketch::new(5, 100);
        for i in 0..100u32 {
            amc.observe(i);
        }
        // Maintenance ran at observation 100, so at most stable size remain
        // (plus anything inserted after, but we stopped exactly at 100).
        assert!(amc.tracked_items() <= 5);
    }

    #[test]
    fn items_above_returns_heavy_hitters_only() {
        let mut amc = AmcSketch::new(100, 10_000);
        for _ in 0..500 {
            amc.observe("heavy".to_string());
        }
        for i in 0..50u32 {
            amc.observe(format!("light{i}"));
        }
        let hh = amc.items_above(100.0);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, "heavy");
    }

    #[test]
    #[should_panic(expected = "stable size must be positive")]
    fn zero_stable_size_panics() {
        let _ = AmcSketch::<u32>::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "decay factor must be in [0, 1]")]
    fn invalid_decay_factor_panics() {
        let mut amc = AmcSketch::<u32>::new(10, 10);
        amc.observe(1);
        amc.decay(1.5);
    }

    #[test]
    fn merge_of_exact_sketches_is_exact() {
        // Both operands are under their stable size: merging must simply add
        // counts, with no pruning and no error.
        let mut a = AmcSketch::new(100, 1_000_000);
        let mut b = AmcSketch::new(100, 1_000_000);
        for i in 0..30u32 {
            for _ in 0..=i {
                a.observe(i);
            }
            b.observe_count(i, 2.0);
        }
        a.merge(b);
        for i in 0..30u32 {
            assert_eq!(a.estimate(&i), (i + 1) as f64 + 2.0);
        }
        assert!((a.total_weight() - (465.0 + 60.0)).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_stream_within_combined_error_bounds() {
        // Split a skewed stream across two sketches, merge, and compare
        // against exact counts: every tracked item's estimate must be within
        // the combined discarded weight of its true count, and heavy hitters
        // must survive the merge.
        let mut rng = SplitMix64::new(21);
        let zipf = Zipf::new(5_000, 1.1);
        let stream: Vec<usize> = (0..200_000).map(|_| zipf.sample(&mut rng)).collect();
        let mut left = AmcSketch::new(100, 1_000);
        let mut right = AmcSketch::new(100, 1_000);
        let mut exact: HashMap<usize, f64> = HashMap::new();
        for (i, &item) in stream.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(item);
            } else {
                right.observe(item);
            }
            *exact.entry(item).or_insert(0.0) += 1.0;
        }
        left.merge(right);
        assert!(left.tracked_items() <= left.stable_size());
        assert!((left.total_weight() - stream.len() as f64).abs() < 1e-6);
        let bound = left.discarded_weight() + 1e-9;
        for (item, est) in left.entries() {
            let true_count = exact[&item];
            assert!(
                est + bound >= true_count,
                "item {item}: estimate {est} under-counts {true_count} by more than {bound}"
            );
            assert!(
                est <= true_count + bound,
                "item {item}: estimate {est} over-counts {true_count} by more than {bound}"
            );
        }
        // The top Zipf item is tracked and counted to within 5%.
        let top = left.estimate(&0);
        assert!((top - exact[&0]).abs() / exact[&0] < 0.05);
    }

    #[test]
    #[should_panic(expected = "different stable sizes")]
    fn merge_rejects_mismatched_stable_sizes() {
        let mut a = AmcSketch::<u32>::new(10, 100);
        let b = AmcSketch::<u32>::new(20, 100);
        a.merge(b);
    }

    proptest! {
        #[test]
        fn merged_halves_match_single_stream_bounds(
            items in prop::collection::vec(0u32..40, 1..2000),
            stable in 4usize..24,
            period in 10u64..500,
        ) {
            let mut whole = AmcSketch::new(stable, period);
            let mut left = AmcSketch::new(stable, period);
            let mut right = AmcSketch::new(stable, period);
            let mut max_discarded: f64 = 0.0;
            for (i, &item) in items.iter().enumerate() {
                whole.observe(item);
                if i < items.len() / 2 {
                    left.observe(item);
                } else {
                    right.observe(item);
                }
                max_discarded = max_discarded.max(whole.discarded_weight());
            }
            left.merge(right);
            prop_assert!((left.total_weight() - whole.total_weight()).abs() < 1e-6);
            prop_assert!(left.tracked_items() <= stable);
            // Any item tracked by BOTH views agrees within the two views'
            // combined error budgets.
            let bound = left.discarded_weight() + max_discarded + 1e-9;
            for (item, est) in left.entries() {
                let single = whole.estimate(&item);
                if single > 0.0 {
                    prop_assert!(
                        (est - single).abs() <= bound,
                        "item {}: merged {} vs single {} exceeds bound {}",
                        item, est, single, bound
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn estimates_never_underestimate(
            items in prop::collection::vec(0u32..50, 1..2000),
            stable in 2usize..20,
            period in 10u64..500,
        ) {
            let mut amc = AmcSketch::new(stable, period);
            let mut exact: HashMap<u32, f64> = HashMap::new();
            for &item in &items {
                amc.observe(item);
                *exact.entry(item).or_insert(0.0) += 1.0;
            }
            for (item, true_count) in &exact {
                let est = amc.estimate(item);
                if est > 0.0 {
                    prop_assert!(est + 1e-9 >= *true_count);
                }
            }
            prop_assert!((amc.total_weight() - items.len() as f64).abs() < 1e-6);
        }
    }
}
