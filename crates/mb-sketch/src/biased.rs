//! Per-tuple exponentially biased reservoir sampling (Aggarwal 2006).
//!
//! This is the "Every" baseline in Figure 5: the probability that an old item
//! survives decays with every arriving tuple, so the sample skews toward the
//! most recent points *by tuple count*. Under variable arrival rates this is
//! exactly the weakness the ADR fixes — a burst of tuples flushes history out
//! of the sample even if the burst lasted only a few seconds.

use crate::StreamSampler;
use mb_stats::rand_ext::SplitMix64;

/// Exponentially biased reservoir with per-tuple decay.
///
/// Implementation follows Aggarwal's biased reservoir scheme: with bias rate
/// `lambda`, the effective sample concentrates on roughly the last `1/lambda`
/// tuples. Each arrival is inserted with probability proportional to the
/// (bounded) fill fraction, replacing a random resident.
#[derive(Debug, Clone)]
pub struct PerTupleBiasedReservoir<T> {
    capacity: usize,
    lambda: f64,
    items: Vec<T>,
    rng: SplitMix64,
    total_observed: u64,
}

impl<T> PerTupleBiasedReservoir<T> {
    /// Create a biased reservoir of the given capacity and per-tuple bias
    /// rate `lambda ∈ (0, 1]`.
    pub fn new(capacity: usize, lambda: f64, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "bias rate must be in (0, 1]"
        );
        PerTupleBiasedReservoir {
            capacity,
            lambda,
            items: Vec::with_capacity(capacity),
            rng: SplitMix64::new(seed),
            total_observed: 0,
        }
    }

    /// Total number of observations so far.
    pub fn observed(&self) -> u64 {
        self.total_observed
    }
}

impl<T> StreamSampler<T> for PerTupleBiasedReservoir<T> {
    fn observe_weighted(&mut self, item: T, _weight: f64) {
        self.total_observed += 1;
        // Aggarwal's scheme with p_in = capacity * lambda capped at 1: when
        // the reservoir represents a window of ~1/lambda tuples, each new
        // tuple replaces a uniformly random resident with this probability,
        // yielding an exponentially recency-biased sample per tuple.
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        let p_in = (self.capacity as f64 * self.lambda).min(1.0);
        if self.rng.next_f64() < p_in {
            let victim = self.rng.next_below(self.capacity);
            self.items[victim] = item;
        }
    }

    fn decay(&mut self) {
        // Decay is implicit (per tuple); nothing to do on an explicit call.
    }

    fn sample(&self) -> &[T] {
        &self.items
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn stays_bounded() {
        let mut r = PerTupleBiasedReservoir::new(10, 0.01, 1);
        for i in 0..1000 {
            r.observe(i);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.observed(), 1000);
    }

    #[test]
    fn is_recency_biased() {
        // Stream 0..10_000; with lambda = 0.01 and capacity 100 the sample
        // should be dominated by recent values (mean well above the stream
        // midpoint), unlike a uniform reservoir.
        let mut r = PerTupleBiasedReservoir::new(100, 0.01, 3);
        for i in 0..10_000 {
            r.observe(i as f64);
        }
        let m = mean(r.sample());
        assert!(m > 7_000.0, "mean was {m}");
    }

    #[test]
    fn adapts_to_shift_quickly() {
        let mut r = PerTupleBiasedReservoir::new(100, 0.01, 5);
        for _ in 0..10_000 {
            r.observe(0.0);
        }
        for _ in 0..2_000 {
            r.observe(100.0);
        }
        assert!(mean(r.sample()) > 80.0);
    }

    #[test]
    #[should_panic(expected = "bias rate must be in (0, 1]")]
    fn rejects_invalid_lambda() {
        let _ = PerTupleBiasedReservoir::<f64>::new(10, 0.0, 1);
    }

    proptest! {
        #[test]
        fn capacity_invariant(capacity in 1usize..64, n in 0usize..2000, seed in 0u64..50) {
            let mut r = PerTupleBiasedReservoir::new(capacity, 0.01, seed);
            for i in 0..n {
                r.observe(i);
            }
            prop_assert!(r.len() <= capacity);
            prop_assert_eq!(r.len(), n.min(capacity));
        }
    }
}
