//! Streaming sketches and samplers for MacroBase-RS.
//!
//! This crate implements the paper's two novel data structures plus the
//! baselines they are evaluated against:
//!
//! * [`adr`] — the **Adaptable Damped Reservoir** (Algorithm 1), an
//!   exponentially damped reservoir sampler that decays over *arbitrary*
//!   windows (time- or batch-based) rather than per tuple.
//! * [`reservoir`] — classic uniform reservoir sampling (Vitter), the
//!   non-adaptive baseline in Figure 5.
//! * [`biased`] — per-tuple exponentially biased reservoir sampling
//!   (Aggarwal), the tuple-at-a-time decay baseline in Figure 5.
//! * [`amc`] — the **Amortized Maintenance Counter** (Algorithm 3), a
//!   heavy-hitters sketch with O(1) updates and amortized maintenance.
//! * [`spacesaving`] — the SpaceSaving heavy-hitters sketch in its list and
//!   hash/heap variants, the baselines of Figure 6.
//! * [`quantile`] — reservoir-backed streaming quantile estimation used for
//!   MDP's percentile threshold (Section 4.2).
//!
//! All heavy-hitter sketches implement [`HeavyHitterSketch`], and all
//! samplers implement [`StreamSampler`], so the classification and
//! explanation layers can swap implementations (this is how the Figure 5 and
//! Figure 6 comparisons are run).
//!
//! ## Example
//!
//! Track heavy hitters with the AMC sketch; estimates never underestimate
//! true counts:
//!
//! ```
//! use mb_sketch::amc::AmcSketch;
//! use mb_sketch::HeavyHitterSketch;
//!
//! let mut sketch = AmcSketch::new(10, 1_000);
//! for _ in 0..100 {
//!     sketch.observe("hot");
//! }
//! sketch.observe("cold");
//! assert!(sketch.estimate(&"hot") >= 100.0);
//! assert_eq!(sketch.items_above(50.0).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod adr;
pub mod amc;
pub mod biased;
pub mod quantile;
pub mod reservoir;
pub mod spacesaving;

use mb_stats::rand_ext::SplitMix64;
use std::hash::Hash;

/// State that can absorb another instance of itself, in the spirit of
/// coordination-avoiding execution: partitions process their share of a
/// stream communication-free and reconcile by merging summaries, instead of
/// each computing a divergent answer.
///
/// Implementations guarantee that merging preserves each structure's error
/// model: merging two sketches built from two halves of a stream yields a
/// sketch whose estimates are within the *sum* of the two halves' error
/// bounds of a single-stream sketch (the classic mergeable-summaries
/// composition), and merging two reservoirs yields a sample whose
/// composition is weighted by the reservoirs' observed stream weights.
///
/// Merging consumes `other`; both operands must share structural
/// configuration (capacity, stable size, decay parameters) — implementations
/// assert this.
pub trait Mergeable {
    /// Absorb `other`'s state into `self`.
    fn merge(&mut self, other: Self);
}

/// Sort `(item, count)` entries by descending count under a deterministic
/// total order: counts compare via [`f64::total_cmp`], a NaN count (of either
/// sign) sorts *after* every real count — an unknown weight must never outrank
/// a real heavy hitter — and the sort is stable, so equal counts keep their
/// input order (callers that append deterministically get an index tie-break
/// for free). This replaces the NaN-unsound
/// `partial_cmp(..).unwrap_or(Equal)` comparators, whose inconsistency could
/// scramble (or panic) the sort the moment a NaN slipped in.
pub fn sort_entries_desc<T>(entries: &mut [(T, f64)]) {
    entries.sort_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.1.total_cmp(&a.1),
    });
}

/// Draw a `capacity`-bounded sample from the union of two reservoir samples,
/// where each source's representation is proportional to the stream weight
/// its reservoir summarizes. Each draw picks a side with probability
/// `weight / (weight_a + weight_b)` and removes a random item from it
/// (without replacement within the samples); a reservoir's sample stands in
/// for a far larger stream, so the side probabilities stay fixed until a
/// side runs out of items — the binomial limit of hypergeometric sampling
/// over the underlying streams.
pub(crate) fn weighted_subsample_union<T>(
    mut a: Vec<T>,
    weight_a: f64,
    mut b: Vec<T>,
    weight_b: f64,
    capacity: usize,
    rng: &mut SplitMix64,
) -> Vec<T> {
    // Shuffle both sides so popping from the back is a uniform draw.
    shuffle(&mut a, rng);
    shuffle(&mut b, rng);
    let (weight_a, weight_b) = (weight_a.max(0.0), weight_b.max(0.0));
    let total = weight_a + weight_b;
    let mut out = Vec::with_capacity(capacity);
    while out.len() < capacity && (!a.is_empty() || !b.is_empty()) {
        let take_a = if b.is_empty() {
            true
        } else if a.is_empty() {
            false
        } else if total <= 0.0 {
            // Degenerate (fully decayed) weights: alternate fairly.
            rng.next_f64() < 0.5
        } else {
            rng.next_f64() * total < weight_a
        };
        if take_a {
            out.push(a.pop().expect("side a non-empty"));
        } else {
            out.push(b.pop().expect("side b non-empty"));
        }
    }
    out
}

/// Fisher–Yates shuffle with the crate's deterministic RNG.
pub(crate) fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i + 1);
        items.swap(i, j);
    }
}

/// A streaming sampler over items of type `T`.
///
/// Samplers observe a (possibly weighted) stream and maintain a bounded
/// in-memory sample. Damped samplers additionally expose [`decay`], which
/// down-weights history; undamped samplers implement it as a no-op.
///
/// [`decay`]: StreamSampler::decay
pub trait StreamSampler<T> {
    /// Observe one item with unit weight.
    fn observe(&mut self, item: T) {
        self.observe_weighted(item, 1.0);
    }

    /// Observe one item with the given weight.
    fn observe_weighted(&mut self, item: T, weight: f64);

    /// Apply one decay step (meaning depends on the sampler's decay policy).
    fn decay(&mut self);

    /// The current sample contents.
    fn sample(&self) -> &[T];

    /// Maximum number of retained items.
    fn capacity(&self) -> usize;

    /// Number of items currently retained.
    fn len(&self) -> usize {
        self.sample().len()
    }

    /// Whether the sample is currently empty.
    fn is_empty(&self) -> bool {
        self.sample().is_empty()
    }
}

/// An approximate counter of item frequencies over a stream (heavy hitters).
///
/// Implementations guarantee that the estimated count of any item is within
/// an additive error bound of its true (possibly decayed) count; the bound
/// depends on the sketch and its configured size.
pub trait HeavyHitterSketch<T: Eq + Hash + Clone> {
    /// Observe one occurrence of `item`.
    fn observe(&mut self, item: T) {
        self.observe_count(item, 1.0);
    }

    /// Observe `count` occurrences of `item`.
    fn observe_count(&mut self, item: T, count: f64);

    /// Estimated (possibly decayed) count for `item`; `0.0` if never seen or
    /// since evicted.
    fn estimate(&self, item: &T) -> f64;

    /// Multiply all retained counts by `factor` (exponential damping).
    fn decay(&mut self, factor: f64);

    /// All currently tracked items with their estimated counts.
    fn entries(&self) -> Vec<(T, f64)>;

    /// Items whose estimated count is at least `threshold`, sorted by
    /// decreasing count.
    fn items_above(&self, threshold: f64) -> Vec<(T, f64)> {
        let mut out: Vec<(T, f64)> = self
            .entries()
            .into_iter()
            .filter(|(_, c)| *c >= threshold)
            .collect();
        crate::sort_entries_desc(&mut out);
        out
    }

    /// Total weight observed (after decay), used to turn counts into support
    /// fractions.
    fn total_weight(&self) -> f64;

    /// Number of items currently tracked by the sketch.
    fn tracked_items(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amc::AmcSketch;

    /// Regression for the NaN-unsound `partial_cmp(..).unwrap_or(Equal)`
    /// comparators: a NaN-weighted entry must sort *last* (never outranking a
    /// real count) and equal counts must keep their input order, independent
    /// of sort-implementation details.
    #[test]
    fn sort_entries_desc_is_nan_sound_and_stable() {
        let mut entries = vec![
            ("tie-first", 2.0),
            ("nan", f64::NAN),
            ("big", 9.0),
            ("tie-second", 2.0),
            ("neg-nan", -f64::NAN),
            ("small", 1.0),
        ];
        sort_entries_desc(&mut entries);
        let order: Vec<&str> = entries.iter().map(|e| e.0).collect();
        // Both NaN payloads land at the back; the 2.0 tie keeps input order
        // (index tie-break via stability).
        assert_eq!(
            order,
            vec!["big", "tie-first", "tie-second", "small", "nan", "neg-nan"]
        );
        // The comparator is a total order even across NaN: sorting the
        // reversed input yields the same ranking of real counts with NaNs
        // still last.
        let mut reversed = vec![
            ("small", 1.0),
            ("neg-nan", -f64::NAN),
            ("big", 9.0),
            ("nan", f64::NAN),
        ];
        sort_entries_desc(&mut reversed);
        let order: Vec<&str> = reversed.iter().map(|e| e.0).collect();
        assert_eq!(order[..2], ["big", "small"]);
        assert!(reversed[2].1.is_nan() && reversed[3].1.is_nan());
    }

    #[test]
    fn items_above_sorts_descending() {
        let mut sketch = AmcSketch::new(100, 1000);
        for _ in 0..5 {
            sketch.observe("a");
        }
        for _ in 0..10 {
            sketch.observe("b");
        }
        sketch.observe("c");
        let top = sketch.items_above(2.0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[1].0, "a");
    }
}
