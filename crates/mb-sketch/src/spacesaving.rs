//! SpaceSaving heavy-hitters sketches (Metwally et al.) — the baselines the
//! AMC is compared against in Figure 6.
//!
//! Two variants are provided, matching the paper's "SSL" and "SSH" labels:
//!
//! * [`SpaceSavingList`] — the ordered-list implementation. Exact for
//!   integer counts in the classic formulation; with decayed (non-integer)
//!   counts each update must re-insert into the ordered list, which is why
//!   the paper observes `O(n²)`-ish behaviour under exponential decay.
//! * [`SpaceSavingHash`] — the hash + min-tracking implementation ("heap"
//!   variant): updates cost a hash lookup plus a periodic scan for the
//!   minimum-count entry when an eviction is needed.
//!
//! Both bound the sketch to exactly `1/ε` entries at all times (unlike AMC,
//! which may grow between maintenance calls) and guarantee estimates within
//! `εN` of true counts.

use crate::{HeavyHitterSketch, Mergeable};
use std::collections::HashMap;
use std::hash::Hash;

/// Combine two sketches' entry lists by summing estimates over the union of
/// tracked items, then keep the `capacity` largest (ties by insertion order).
/// This is the classic mergeable-summaries composition for counter-based
/// sketches: the merged error bound is the sum of the operands' `εN` bounds.
fn merge_entries<T: Eq + Hash + Clone>(
    a: Vec<(T, f64)>,
    b: Vec<(T, f64)>,
    capacity: usize,
) -> Vec<(T, f64)> {
    let mut combined: HashMap<T, f64> = HashMap::with_capacity(a.len() + b.len());
    let mut order: Vec<T> = Vec::with_capacity(a.len() + b.len());
    for (item, count) in a.into_iter().chain(b) {
        match combined.get_mut(&item) {
            Some(existing) => *existing += count,
            None => {
                combined.insert(item.clone(), count);
                order.push(item);
            }
        }
    }
    let mut entries: Vec<(T, f64)> = order
        .into_iter()
        .map(|item| {
            let count = combined[&item];
            (item, count)
        })
        .collect();
    crate::sort_entries_desc(&mut entries);
    entries.truncate(capacity);
    entries
}

/// Ordered-list SpaceSaving ("SSL" in Figure 6).
#[derive(Debug, Clone)]
pub struct SpaceSavingList<T: Eq + Hash + Clone> {
    capacity: usize,
    /// Entries kept sorted by descending count; the minimum is at the back.
    entries: Vec<(T, f64)>,
    /// Index from item to its position in `entries`.
    index: HashMap<T, usize>,
    total_weight: f64,
}

impl<T: Eq + Hash + Clone> SpaceSavingList<T> {
    /// Create a sketch tracking at most `capacity` (= 1/ε) items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSavingList {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            total_weight: 0.0,
        }
    }

    /// Restore descending order for the entry at `pos` after its count grew,
    /// by bubbling it toward the front. This list traversal is the cost the
    /// AMC's amortized maintenance avoids.
    fn bubble_up(&mut self, mut pos: usize) {
        while pos > 0 && self.entries[pos].1 > self.entries[pos - 1].1 {
            self.entries.swap(pos, pos - 1);
            let a = self.entries[pos].0.clone();
            let b = self.entries[pos - 1].0.clone();
            self.index.insert(a, pos);
            self.index.insert(b, pos - 1);
            pos -= 1;
        }
    }
}

impl<T: Eq + Hash + Clone> Mergeable for SpaceSavingList<T> {
    /// Merge two SpaceSaving lists built over disjoint sub-streams: sum
    /// estimates over the union of tracked items and keep the `capacity`
    /// largest. Estimates stay within `ε₁N₁ + ε₂N₂` of true combined counts.
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "cannot merge SpaceSaving sketches of different capacities"
        );
        self.total_weight += other.total_weight;
        let merged = merge_entries(
            std::mem::take(&mut self.entries),
            other.entries,
            self.capacity,
        );
        self.index = merged
            .iter()
            .enumerate()
            .map(|(pos, (item, _))| (item.clone(), pos))
            .collect();
        self.entries = merged;
    }
}

impl<T: Eq + Hash + Clone> HeavyHitterSketch<T> for SpaceSavingList<T> {
    fn observe_count(&mut self, item: T, count: f64) {
        assert!(count >= 0.0, "counts must be non-negative");
        self.total_weight += count;
        if let Some(&pos) = self.index.get(&item) {
            self.entries[pos].1 += count;
            self.bubble_up(pos);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((item.clone(), count));
            let pos = self.entries.len() - 1;
            self.index.insert(item, pos);
            self.bubble_up(pos);
            return;
        }
        // Evict the minimum-count entry (back of the list); the newcomer
        // inherits min + count, the classic SpaceSaving over-estimate.
        let back = self.entries.len() - 1;
        let (old_item, min_count) = self.entries[back].clone();
        self.index.remove(&old_item);
        self.entries[back] = (item.clone(), min_count + count);
        self.index.insert(item, back);
        self.bubble_up(back);
    }

    fn estimate(&self, item: &T) -> f64 {
        self.index
            .get(item)
            .map(|&pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    fn decay(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must be in [0, 1]"
        );
        for entry in self.entries.iter_mut() {
            entry.1 *= factor;
        }
        self.total_weight *= factor;
        // Relative order is preserved by a uniform decay, so no re-sort.
    }

    fn entries(&self) -> Vec<(T, f64)> {
        self.entries.clone()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn tracked_items(&self) -> usize {
        self.entries.len()
    }
}

/// Hash-based SpaceSaving ("SSH" in Figure 6).
///
/// Keeps counts in a hash map and finds the minimum entry by scanning when an
/// eviction is required. A heap would make the eviction `O(log k)` but every
/// count increase would then need a heap fix-up (`O(log k)` per update, the
/// cost the paper attributes to the heap variant); the scan keeps updates of
/// tracked items `O(1)` while making evictions `O(k)`, which is the same
/// asymptotic trade-off at the sketch sizes used in Figure 6.
#[derive(Debug, Clone)]
pub struct SpaceSavingHash<T: Eq + Hash + Clone> {
    capacity: usize,
    counts: HashMap<T, f64>,
    total_weight: f64,
}

impl<T: Eq + Hash + Clone> SpaceSavingHash<T> {
    /// Create a sketch tracking at most `capacity` (= 1/ε) items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSavingHash {
            capacity,
            counts: HashMap::with_capacity(capacity),
            total_weight: 0.0,
        }
    }
}

impl<T: Eq + Hash + Clone> Mergeable for SpaceSavingHash<T> {
    /// Merge two SpaceSaving hash sketches; see [`SpaceSavingList::merge`]
    /// (same union-sum-truncate composition, same combined error bound).
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "cannot merge SpaceSaving sketches of different capacities"
        );
        self.total_weight += other.total_weight;
        let a: Vec<(T, f64)> = self.counts.drain().collect(); // mb-lint: allow(hashmap-order-hazard) -- merge_entries re-sorts; which equal-count entry survives truncation is within the εN bound
        let b: Vec<(T, f64)> = other.counts.into_iter().collect(); // mb-lint: allow(hashmap-order-hazard) -- merge_entries re-sorts; which equal-count entry survives truncation is within the εN bound
        self.counts = merge_entries(a, b, self.capacity).into_iter().collect();
    }
}

impl<T: Eq + Hash + Clone> HeavyHitterSketch<T> for SpaceSavingHash<T> {
    fn observe_count(&mut self, item: T, count: f64) {
        assert!(count >= 0.0, "counts must be non-negative");
        self.total_weight += count;
        if let Some(existing) = self.counts.get_mut(&item) {
            *existing += count;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(item, count);
            return;
        }
        // Evict the current minimum; newcomer inherits its count.
        let (min_item, min_count) = self
            .counts
            .iter() // mb-lint: allow(hashmap-order-hazard) -- any minimal-count victim satisfies the SpaceSaving bound; SSH is a Figure 6 timing baseline
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, v)| (k.clone(), *v))
            .expect("sketch is non-empty at capacity");
        self.counts.remove(&min_item);
        self.counts.insert(item, min_count + count);
    }

    fn estimate(&self, item: &T) -> f64 {
        self.counts.get(item).copied().unwrap_or(0.0)
    }

    fn decay(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must be in [0, 1]"
        );
        // mb-lint: allow(hashmap-order-hazard) -- order-insensitive scaling: each count shrinks independently
        for count in self.counts.values_mut() {
            *count *= factor;
        }
        self.total_weight *= factor;
    }

    fn entries(&self) -> Vec<(T, f64)> {
        self.counts.iter().map(|(k, v)| (k.clone(), *v)).collect() // mb-lint: allow(hashmap-order-hazard) -- entries() is unordered by contract; report-bound consumers sort via sort_entries_desc
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn tracked_items(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_stats::rand_ext::{SplitMix64, Zipf};
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn zipf_stream(n: usize, support: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        let zipf = Zipf::new(support, 1.1);
        (0..n).map(|_| zipf.sample(&mut rng)).collect()
    }

    #[test]
    fn list_exact_when_under_capacity() {
        let mut ss = SpaceSavingList::new(100);
        for i in 0..50u32 {
            for _ in 0..=i {
                ss.observe(i);
            }
        }
        for i in 0..50u32 {
            assert_eq!(ss.estimate(&i), (i + 1) as f64);
        }
    }

    #[test]
    fn hash_exact_when_under_capacity() {
        let mut ss = SpaceSavingHash::new(100);
        for i in 0..50u32 {
            for _ in 0..=i {
                ss.observe(i);
            }
        }
        for i in 0..50u32 {
            assert_eq!(ss.estimate(&i), (i + 1) as f64);
        }
    }

    #[test]
    fn list_maintains_descending_order_and_capacity() {
        let stream = zipf_stream(50_000, 1000, 3);
        let mut ss = SpaceSavingList::new(64);
        for &item in &stream {
            ss.observe(item);
        }
        assert_eq!(ss.tracked_items(), 64);
        let entries = ss.entries();
        for w in entries.windows(2) {
            assert!(w[0].1 >= w[1].1, "list out of order");
        }
    }

    #[test]
    fn both_variants_find_the_same_heavy_hitters() {
        let stream = zipf_stream(100_000, 5000, 7);
        let mut list = SpaceSavingList::new(100);
        let mut hash = SpaceSavingHash::new(100);
        let mut exact: HashMap<usize, f64> = HashMap::new();
        for &item in &stream {
            list.observe(item);
            hash.observe(item);
            *exact.entry(item).or_insert(0.0) += 1.0;
        }
        // The top-10 exact items must all be tracked by both sketches with
        // estimates at least their true count (SpaceSaving never
        // under-estimates a tracked item).
        let mut by_count: Vec<(usize, f64)> = exact.iter().map(|(k, v)| (*k, *v)).collect();
        by_count.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(item, true_count) in by_count.iter().take(10) {
            assert!(list.estimate(&item) + 1e-9 >= true_count);
            assert!(hash.estimate(&item) + 1e-9 >= true_count);
        }
    }

    #[test]
    fn error_bound_epsilon_n() {
        // Classic SpaceSaving guarantee: over-estimate of any item is at most
        // total_weight / capacity.
        let stream = zipf_stream(50_000, 2000, 11);
        let capacity = 200;
        let mut ss = SpaceSavingList::new(capacity);
        let mut exact: HashMap<usize, f64> = HashMap::new();
        for &item in &stream {
            ss.observe(item);
            *exact.entry(item).or_insert(0.0) += 1.0;
        }
        let bound = ss.total_weight() / capacity as f64;
        for (item, est) in ss.entries() {
            let true_count = exact.get(&item).copied().unwrap_or(0.0);
            assert!(est <= true_count + bound + 1e-9);
            assert!(est + 1e-9 >= true_count);
        }
    }

    #[test]
    fn decay_scales_counts() {
        let mut list = SpaceSavingList::new(10);
        let mut hash = SpaceSavingHash::new(10);
        for _ in 0..100 {
            list.observe("x");
            hash.observe("x");
        }
        list.decay(0.25);
        hash.decay(0.25);
        assert!((list.estimate(&"x") - 25.0).abs() < 1e-9);
        assert!((hash.estimate(&"x") - 25.0).abs() < 1e-9);
        assert!((list.total_weight() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let stream = zipf_stream(10_000, 500, 13);
        let mut list = SpaceSavingList::new(16);
        let mut hash = SpaceSavingHash::new(16);
        for &item in &stream {
            list.observe(item);
            hash.observe(item);
            assert!(list.tracked_items() <= 16);
            assert!(hash.tracked_items() <= 16);
        }
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut ss = SpaceSavingHash::new(2);
        ss.observe_count("a", 10.0);
        ss.observe_count("b", 5.0);
        ss.observe_count("c", 1.0); // evicts b (min = 5) -> c gets 6
        assert_eq!(ss.estimate(&"c"), 6.0);
        assert_eq!(ss.estimate(&"b"), 0.0);
        assert_eq!(ss.estimate(&"a"), 10.0);
    }

    #[test]
    fn merge_equals_single_stream_within_combined_error_bounds() {
        let stream = zipf_stream(100_000, 3_000, 17);
        let capacity = 200;
        let mut list_l = SpaceSavingList::new(capacity);
        let mut list_r = SpaceSavingList::new(capacity);
        let mut hash_l = SpaceSavingHash::new(capacity);
        let mut hash_r = SpaceSavingHash::new(capacity);
        let mut exact: HashMap<usize, f64> = HashMap::new();
        for (i, &item) in stream.iter().enumerate() {
            if i < stream.len() / 2 {
                list_l.observe(item);
                hash_l.observe(item);
            } else {
                list_r.observe(item);
                hash_r.observe(item);
            }
            *exact.entry(item).or_insert(0.0) += 1.0;
        }
        list_l.merge(list_r);
        hash_l.merge(hash_r);
        // Combined bound: ε₁N₁ + ε₂N₂ = N / capacity for an even split.
        let bound = stream.len() as f64 / capacity as f64 + 1e-9;
        for sketch_entries in [list_l.entries(), hash_l.entries()] {
            for (item, est) in sketch_entries {
                let true_count = exact.get(&item).copied().unwrap_or(0.0);
                assert!(
                    (est - true_count).abs() <= bound,
                    "item {item}: merged estimate {est} vs true {true_count} exceeds {bound}"
                );
            }
        }
        assert!((list_l.total_weight() - stream.len() as f64).abs() < 1e-6);
        assert!((hash_l.total_weight() - stream.len() as f64).abs() < 1e-6);
        assert!(list_l.tracked_items() <= capacity);
        assert!(hash_l.tracked_items() <= capacity);
        // Top-10 exact heavy hitters survive the merge in both variants.
        let mut by_count: Vec<(usize, f64)> = exact.iter().map(|(k, v)| (*k, *v)).collect();
        by_count.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(item, _) in by_count.iter().take(10) {
            assert!(list_l.estimate(&item) > 0.0);
            assert!(hash_l.estimate(&item) > 0.0);
        }
    }

    #[test]
    fn merged_list_preserves_descending_order_invariant() {
        let mut a = SpaceSavingList::new(8);
        let mut b = SpaceSavingList::new(8);
        for &item in &zipf_stream(5_000, 200, 23) {
            a.observe(item);
        }
        for &item in &zipf_stream(5_000, 200, 29) {
            b.observe(item + 100);
        }
        a.merge(b);
        let entries = a.entries();
        assert_eq!(entries.len(), 8);
        for w in entries.windows(2) {
            assert!(w[0].1 >= w[1].1, "merged list out of order");
        }
        // Bubbling after further observations still works on the rebuilt index.
        for _ in 0..100 {
            a.observe(entries[7].0);
        }
        for w in a.entries().windows(2) {
            assert!(w[0].1 >= w[1].1, "list out of order after post-merge updates");
        }
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn merge_rejects_mismatched_capacities() {
        let mut a = SpaceSavingHash::<u32>::new(8);
        let b = SpaceSavingHash::<u32>::new(16);
        a.merge(b);
    }

    proptest! {
        #[test]
        fn merged_halves_stay_within_combined_bounds(
            items in prop::collection::vec(0u32..30, 2..1000),
            capacity in 2usize..20,
        ) {
            let mut left = SpaceSavingList::new(capacity);
            let mut right = SpaceSavingList::new(capacity);
            let mut exact: HashMap<u32, f64> = HashMap::new();
            for (i, &item) in items.iter().enumerate() {
                if i % 2 == 0 {
                    left.observe(item);
                } else {
                    right.observe(item);
                }
                *exact.entry(item).or_insert(0.0) += 1.0;
            }
            left.merge(right);
            prop_assert!(left.tracked_items() <= capacity);
            prop_assert!((left.total_weight() - items.len() as f64).abs() < 1e-6);
            let bound = items.len() as f64 / capacity as f64 + 1e-9;
            for (item, est) in left.entries() {
                let true_count = exact.get(&item).copied().unwrap_or(0.0);
                prop_assert!((est - true_count).abs() <= bound);
            }
        }
    }

    proptest! {
        #[test]
        fn tracked_items_never_underestimated(
            items in prop::collection::vec(0u32..30, 1..1000),
            capacity in 2usize..20,
        ) {
            let mut list = SpaceSavingList::new(capacity);
            let mut hash = SpaceSavingHash::new(capacity);
            let mut exact: HashMap<u32, f64> = HashMap::new();
            for &item in &items {
                list.observe(item);
                hash.observe(item);
                *exact.entry(item).or_insert(0.0) += 1.0;
            }
            for (item, true_count) in &exact {
                let le = list.estimate(item);
                let he = hash.estimate(item);
                if le > 0.0 {
                    prop_assert!(le + 1e-9 >= *true_count);
                }
                if he > 0.0 {
                    prop_assert!(he + 1e-9 >= *true_count);
                }
            }
            prop_assert!(list.tracked_items() <= capacity);
            prop_assert!(hash.tracked_items() <= capacity);
        }
    }
}
