//! The one-shot contract of `configure_global_threads`, exercised in a
//! process where nothing else has touched the global pool. Integration
//! tests run in their own binary, so — unlike the crate's unit tests — the
//! global here is guaranteed untouched at entry. Everything must live in
//! ONE test function: a second `#[test]` could run first (or in parallel)
//! and consume the single successful configuration slot.

use mb_pool::{configure_global_threads, global, ConfigureError};

#[test]
fn configure_is_one_shot_for_the_process_lifetime() {
    // First call, before any pool use: wins.
    assert_eq!(configure_global_threads(3), Ok(()));

    // Second call, still before pool use: the size is already fixed.
    assert_eq!(
        configure_global_threads(5),
        Err(ConfigureError::AlreadyConfigured { configured: 3 })
    );

    // First use builds the pool with the winning size.
    assert_eq!(global().num_threads(), 3);

    // Any call after initialization names the live worker count.
    assert_eq!(
        configure_global_threads(8),
        Err(ConfigureError::PoolInitialized { workers: 3 })
    );

    // None of the failed calls changed anything.
    assert_eq!(global().num_threads(), 3);
}
