//! A minimal work-stealing thread pool: the execution substrate for
//! MacroBase-RS's partitioned executors, parallel attribute encoding, and
//! the FastMCD distance pass.
//!
//! The build environment has no crates.io access, so this crate is a
//! deliberately small stand-in for `rayon` (swap back via two lines in
//! `[workspace.dependencies]` when network access exists). It keeps the
//! properties the tree relies on:
//!
//! * **Reusable workers** — a [`Pool`] spawns its threads once; submitting
//!   work is a queue push, not a `std::thread::scope` spawn per call, which
//!   is what makes scatter cheap for small batches.
//! * **Work stealing** — each worker owns a LIFO deque (newest-first for
//!   cache locality); idle workers steal oldest-first from a random victim,
//!   and external submissions land on a shared injector queue.
//! * **Nested parallelism** — a thread that waits for a scope to finish
//!   *helps*: it executes queued tasks instead of blocking, so pool workers
//!   can themselves call [`Pool::join`]/[`Pool::parallel_for`] without
//!   deadlocking. FastMCD training is the canonical nesting: each restart
//!   is a pool task ([`Pool::map_vec`]) whose C-step distance passes fan
//!   out further on the same pool ([`Pool::parallel_for`]) — and a
//!   partitioned executor may be running the whole fit inside one of its
//!   own partition tasks. Helping is stack-safe: past a fixed nesting depth a
//!   waiter only executes tasks of the scope it is waiting for, bounding
//!   stack growth by the application's real nesting depth instead of the
//!   number of in-flight tasks.
//! * **Panic propagation** — a panic inside a spawned task is captured and
//!   re-raised on the thread that owns the scope, after every sibling task
//!   has finished (so borrowed data is never left aliased).
//!
//! Use the process-wide [`global`] pool (lazily sized from
//! [`std::thread::available_parallelism`], overridable once via
//! [`configure_global_threads`]) or build an explicit [`Pool::new`].
//!
//! ## Example
//!
//! ```
//! let pool = mb_pool::Pool::new(4);
//! let (evens, odds) = pool.join(
//!     || (0..1000).filter(|i| i % 2 == 0).count(),
//!     || (0..1000).filter(|i| i % 2 == 1).count(),
//! );
//! assert_eq!(evens + odds, 1000);
//!
//! let total = pool.map_reduce(&[1u64, 2, 3, 4, 5], 1, |&x| x * x, 0, |a, b| a + b);
//! assert_eq!(total, 55);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased unit of work, tagged with the identity of the scope that
/// spawned it so waiters can restrict themselves to their own scope's tasks
/// (see [`MAX_FOREIGN_HELP_DEPTH`]). Tasks are created with a scope-bound
/// lifetime and transmuted to `'static`; soundness comes from
/// [`Pool::scope`] never returning until every task it spawned has run to
/// completion.
struct Job {
    /// The owning [`ScopeState`]'s address — an id, never dereferenced.
    scope: usize,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// How many *foreign* (other-scope) jobs a thread may be executing,
/// nested on its stack, before its scope waits stop stealing arbitrary
/// work. Help-first waiting executes stolen jobs in the waiter's stack
/// frame; an unlucky chain (help a job, whose wait helps another job, ...)
/// grows the stack by one frame set per in-flight job, which is unbounded
/// by anything in the task DAG and overflows under fine-grained nested
/// parallelism. Beyond this depth a waiter only executes tasks of the
/// scope it is waiting for: those chains are bounded by the application's
/// real nesting depth, and the deepest waiter in the waits-on DAG can
/// always find (or outwait) its own scope's tasks, so progress is
/// preserved without unbounded stack growth.
const MAX_FOREIGN_HELP_DEPTH: usize = 32;

/// Worker stack size: help-first execution runs application tasks nested
/// inside wait loops, so give workers generous (lazily committed) stacks.
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Process-unique pool ids, so a thread can tell whether it is a worker of
/// *this* pool (push to own deque) or a foreign thread (push to injector).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker index)` of the pool this thread belongs to, or
    /// `(0, _)` for threads that are not pool workers.
    static CURRENT_WORKER: Cell<(u64, usize)> = const { Cell::new((0, usize::MAX)) };
    /// Number of helped jobs currently nested on this thread's stack.
    static HELP_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Per-worker activity counters, always on. Increments are relaxed atomic
/// adds on lines the worker already owns — one or two per *job*, which is
/// noise next to the queue lock the job was popped under — so there is no
/// "metrics enabled" mode to toggle. Snapshots ([`Pool::worker_stats`])
/// merge by field-wise addition: the counters are monotonic monoids, the
/// same shape `mb-obs` folds into query traces.
#[derive(Default)]
struct WorkerCounters {
    /// Jobs this worker (or helper) popped and ran, from any queue.
    executed: AtomicU64,
    /// Jobs taken from another worker's deque.
    stolen: AtomicU64,
    /// Jobs taken from the external-submission injector queue.
    injector_pops: AtomicU64,
    /// Times the worker parked on the wakeup condvar with nothing to do.
    idle_parks: AtomicU64,
}

impl WorkerCounters {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            tasks_executed: self.executed.load(Ordering::Relaxed),
            tasks_stolen: self.stolen.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            idle_parks: self.idle_parks.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one worker's (or the whole pool's) activity counters.
///
/// Monotonic: every field only grows over a pool's lifetime. Combine
/// snapshots with [`WorkerStats::combined`]; form a per-interval delta with
/// [`WorkerStats::since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Jobs popped and run (own deque, injector, or stolen).
    pub tasks_executed: u64,
    /// Jobs taken from another worker's deque.
    pub tasks_stolen: u64,
    /// Jobs taken from the external-submission injector queue.
    pub injector_pops: u64,
    /// Times the worker parked idle on the wakeup condvar.
    pub idle_parks: u64,
}

impl WorkerStats {
    /// Field-wise sum of two snapshots.
    pub fn combined(mut self, other: WorkerStats) -> WorkerStats {
        self.tasks_executed += other.tasks_executed;
        self.tasks_stolen += other.tasks_stolen;
        self.injector_pops += other.injector_pops;
        self.idle_parks += other.idle_parks;
        self
    }

    /// Field-wise saturating delta since an earlier snapshot of the same
    /// counters.
    pub fn since(&self, earlier: &WorkerStats) -> WorkerStats {
        WorkerStats {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
            idle_parks: self.idle_parks.saturating_sub(earlier.idle_parks),
        }
    }
}

/// State shared between a pool handle and its worker threads.
struct Shared {
    id: u64,
    /// One deque per worker. The owner pushes/pops at the back (LIFO);
    /// thieves pop at the front (FIFO — oldest, largest-granularity work).
    local: Vec<Mutex<VecDeque<Job>>>,
    /// Activity counters, index-aligned with `local`.
    counters: Vec<WorkerCounters>,
    /// Counters for non-worker threads that execute jobs while helping a
    /// scope wait (e.g. the caller of [`Pool::scope`]).
    helper_counters: WorkerCounters,
    /// Submissions from threads outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Bumped on every push; sleepers re-check it before parking so a push
    /// racing with "queues looked empty" is never lost.
    epoch: AtomicU64,
    /// Workers currently parked on `wakeup`; pushes skip the notification
    /// lock entirely while this is zero (the common case under load).
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Queue `job`: onto this worker's own deque when called from a worker
    /// of this pool, onto the injector otherwise.
    fn push(&self, job: Job) {
        match self.current_worker_index() {
            Some(index) => self.local[index].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.epoch.fetch_add(1, Ordering::Release);
        // Notify under the sleep lock: a worker that saw empty queues either
        // re-checks the epoch under this lock (and rescans) or is already
        // parked (and receives this notification). Skipped entirely when no
        // worker is parked; the narrow race this opens (a worker committing
        // to sleep between the epoch bump and this load) is covered by the
        // bounded `wait_timeout` in the worker loop.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wakeup.notify_all();
        }
    }

    /// This thread's worker index in this pool, if any.
    fn current_worker_index(&self) -> Option<usize> {
        let (pool, index) = CURRENT_WORKER.with(|c| c.get());
        (pool == self.id).then_some(index)
    }

    /// Pop or steal one job: own deque (LIFO), then the injector, then a
    /// random-order sweep of the other workers' deques (FIFO). With
    /// `only_scope` set, only jobs spawned by that scope are taken (a
    /// linear scan under each queue's lock — used only by depth-limited
    /// waiters, where correctness beats queue-pop cost).
    fn find_work(
        &self,
        me: Option<usize>,
        steal_rng: &mut u64,
        only_scope: Option<usize>,
    ) -> Option<Job> {
        let take_back = |queue: &Mutex<VecDeque<Job>>| -> Option<Job> {
            let mut queue = queue.lock().unwrap();
            match only_scope {
                None => queue.pop_back(),
                Some(id) => {
                    let pos = queue.iter().rposition(|job| job.scope == id)?;
                    queue.remove(pos)
                }
            }
        };
        let take_front = |queue: &Mutex<VecDeque<Job>>| -> Option<Job> {
            let mut queue = queue.lock().unwrap();
            match only_scope {
                None => queue.pop_front(),
                Some(id) => {
                    let pos = queue.iter().position(|job| job.scope == id)?;
                    queue.remove(pos)
                }
            }
        };
        // Every job returned from here is executed immediately by the
        // caller (worker loop or helping waiter), so `executed` is counted
        // at the pop, tagged with the source queue.
        let counters = match me {
            Some(index) => &self.counters[index],
            None => &self.helper_counters,
        };
        if let Some(index) = me {
            if let Some(job) = take_back(&self.local[index]) {
                counters.executed.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        if let Some(job) = take_front(&self.injector) {
            counters.executed.fetch_add(1, Ordering::Relaxed);
            counters.injector_pops.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        let n = self.local.len();
        let start = (xorshift(steal_rng) as usize) % n.max(1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = take_front(&self.local[victim]) {
                counters.executed.fetch_add(1, Ordering::Relaxed);
                counters.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Worker main loop: run work while there is any; park briefly when idle;
    /// exit once shut down *and* drained.
    fn worker_loop(self: &Arc<Self>, index: usize) {
        CURRENT_WORKER.with(|c| c.set((self.id, index)));
        let mut steal_rng = self.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (index as u64 + 1);
        loop {
            let epoch = self.epoch.load(Ordering::Acquire);
            if let Some(job) = self.find_work(Some(index), &mut steal_rng, None) {
                (job.run)();
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let guard = self.sleep.lock().unwrap();
            // Register as a sleeper *before* re-checking the epoch: in the
            // SeqCst total order, a pusher that reads `sleepers == 0` (and
            // skips notifying) must have bumped the epoch before this
            // re-check, which then sees it and rescans — so no wakeup is
            // ever lost. The timeout remains as defense in depth.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) != epoch || self.shutdown.load(Ordering::Acquire)
            {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue; // new work (or shutdown) raced in; rescan
            }
            self.counters[index].idle_parks.fetch_add(1, Ordering::Relaxed);
            let _ = self
                .wakeup
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap();
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// 64-bit xorshift for victim selection — cheap, deterministic per worker,
/// and independent of the data being processed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Completion tracking for one [`Pool::scope`]: outstanding-task count, the
/// first captured panic, and a condvar the owner parks on when it runs out
/// of work to help with.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }
}

/// Handle for spawning tasks that may borrow data owned by the caller of
/// [`Pool::scope`]; all tasks are guaranteed to finish before `scope`
/// returns.
pub struct Scope<'scope> {
    pool: &'scope Pool,
    state: Arc<ScopeState>,
    /// Make `'scope` invariant, as in rayon: tasks must not be allowed to
    /// shorten the lifetime their captures are checked against.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` onto the pool. It may run on any worker (or on the scope
    /// owner while it waits); it will have run to completion before
    /// [`Pool::scope`] returns. A panic in `f` is re-raised by `scope`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let scope_id = Arc::as_ptr(&self.state) as usize;
        let state = Arc::clone(&self.state);
        let task = move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = state.done_lock.lock().unwrap();
                state.done_cv.notify_all();
            }
        };
        let run: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // SAFETY: `scope` waits for `pending` to reach zero before returning,
        // so every borrow captured by the task outlives the task's execution;
        // the transmute only erases the `'scope` bound down to `'static`.
        let run = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce() + Send + 'scope>,
                Box<dyn FnOnce() + Send + 'static>,
            >(run)
        };
        self.pool.shared.push(Job {
            scope: scope_id,
            run,
        });
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool shuts its workers down after draining queued work. The
/// process-wide [`global`] pool is never dropped.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.num_threads())
            .finish()
    }
}

impl Pool {
    /// Create a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            local: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            counters: (0..threads).map(|_| WorkerCounters::default()).collect(),
            helper_counters: WorkerCounters::default(),
            injector: Mutex::new(VecDeque::new()),
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mb-pool-{index}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn(move || shared.worker_loop(index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads in this pool.
    pub fn num_threads(&self) -> usize {
        self.shared.local.len()
    }

    /// Per-worker activity snapshots, index-aligned with the pool's worker
    /// threads. Counters are cumulative over the pool's lifetime; take two
    /// snapshots and use [`WorkerStats::since`] for an interval view.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared.counters.iter().map(|c| c.snapshot()).collect()
    }

    /// Activity of non-worker threads that executed jobs while waiting on a
    /// scope (help-first waiting).
    pub fn helper_stats(&self) -> WorkerStats {
        self.shared.helper_counters.snapshot()
    }

    /// Whole-pool totals: every worker plus the helpers, field-wise summed.
    /// The sum of `tasks_executed` equals the number of jobs ever spawned
    /// onto the pool (once they have all finished), independent of the
    /// worker count or how stealing interleaved them.
    pub fn total_stats(&self) -> WorkerStats {
        self.worker_stats()
            .into_iter()
            .fold(self.helper_stats(), WorkerStats::combined)
    }

    /// Run `op` with a [`Scope`] for spawning borrowing tasks, then wait —
    /// helping to execute queued work, never blocking the CPU — until every
    /// spawned task has finished. The first panic (from `op` or any task) is
    /// re-raised after that wait, so borrows are never left live.
    pub fn scope<'scope, OP, R>(&'scope self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        self.wait_scope(&state);
        let task_panic = state.panic.lock().unwrap().take();
        match (result, task_panic) {
            (Err(payload), _) => panic::resume_unwind(payload),
            (Ok(_), Some(payload)) => panic::resume_unwind(payload),
            (Ok(value), None) => value,
        }
    }

    /// Help-first wait: execute queued jobs until `state.pending` reaches
    /// zero. Any queued job may be helped while the thread's helped-job
    /// nesting is shallow; past [`MAX_FOREIGN_HELP_DEPTH`] only *this
    /// scope's* jobs are taken, which keeps the stack bounded while still
    /// guaranteeing progress (the deepest waiter in the waits-on DAG either
    /// finds its own scope's tasks queued or outwaits the threads running
    /// them — see the constant's doc).
    fn wait_scope(&self, state: &ScopeState) {
        let me = self.shared.current_worker_index();
        let scope_id = state as *const ScopeState as usize;
        let mut steal_rng = self.shared.id ^ 0xA076_1D64_78BD_642F;
        loop {
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            let depth = HELP_DEPTH.with(|d| d.get());
            let only_scope = (depth >= MAX_FOREIGN_HELP_DEPTH).then_some(scope_id);
            if let Some(job) = self.shared.find_work(me, &mut steal_rng, only_scope) {
                // Tasks never unwind (spawn wraps them in catch_unwind), so
                // plain set/restore is enough.
                HELP_DEPTH.with(|d| d.set(depth + 1));
                (job.run)();
                HELP_DEPTH.with(|d| d.set(depth));
                continue;
            }
            let guard = state.done_lock.lock().unwrap();
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Short timeout: completion notifies `done_cv`, but *new* work we
            // could help with (spawned by a still-running task) only pokes the
            // pool-wide condvar, so re-poll the queues at a modest cadence.
            let _ = state
                .done_cv
                .wait_timeout(guard, Duration::from_micros(200))
                .unwrap();
        }
    }

    /// Run `a` and `b`, potentially in parallel, and return both results.
    /// `a` runs on the calling thread; `b` is spawned and may be stolen.
    /// Either side panicking re-raises the panic here, after both finish.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            {
                let rb = &mut rb;
                s.spawn(move || *rb = Some(b()));
            }
            a()
        });
        (ra, rb.expect("join: spawned closure did not run"))
    }

    /// Apply `f` to disjoint chunks of `items` in parallel, in place.
    /// `f` receives each chunk's starting offset in `items` and the chunk
    /// itself. Chunks hold at least `grain` elements (except the last), so
    /// tiny inputs run inline on the caller with zero submission overhead.
    pub fn parallel_for<T, F>(&self, items: &mut [T], grain: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let grain = grain.max(1);
        if items.len() <= grain || self.num_threads() == 1 {
            if !items.is_empty() {
                f(0, items);
            }
            return;
        }
        // Over-split by 4× the worker count so stealing can balance uneven
        // chunk costs, but never below the requested grain.
        let chunk = items
            .len()
            .div_ceil(self.num_threads() * 4)
            .max(grain);
        let f = &f;
        self.scope(|s| {
            let mut offset = 0;
            for piece in items.chunks_mut(chunk) {
                let start = offset;
                offset += piece.len();
                s.spawn(move || f(start, piece));
            }
        });
    }

    /// Map `f` over owned `items` in parallel, preserving order. One task
    /// per item — meant for coarse work units (partition chunks), not
    /// element-wise math (use [`parallel_for`]/[`map_reduce`] for that).
    ///
    /// [`parallel_for`]: Pool::parallel_for
    /// [`map_reduce`]: Pool::map_reduce
    pub fn map_vec<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        if self.num_threads() == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let mut out: Vec<Option<U>> = items.iter().map(|_| None).collect();
        let f = &f;
        self.scope(|s| {
            for (slot, item) in out.iter_mut().zip(items) {
                s.spawn(move || *slot = Some(f(item)));
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("map_vec task did not run"))
            .collect()
    }

    /// Parallel map-reduce over a slice: `map` each element, combine with
    /// `reduce` starting from `identity`. Equals the sequential
    /// `items.iter().map(map).fold(identity, reduce)` whenever `reduce` is
    /// associative with `identity` as its identity element (chunks fold
    /// locally and chunk results combine in slice order, so commutativity is
    /// *not* required).
    pub fn map_reduce<T, A, M, R>(
        &self,
        items: &[T],
        grain: usize,
        map: M,
        identity: A,
        reduce: R,
    ) -> A
    where
        T: Sync,
        A: Send + Clone,
        M: Fn(&T) -> A + Sync,
        R: Fn(A, A) -> A + Sync,
    {
        let grain = grain.max(1);
        let sequential = |chunk: &[T], acc: A| {
            chunk.iter().fold(acc, |acc, item| reduce(acc, map(item)))
        };
        if items.len() <= grain || self.num_threads() == 1 {
            return sequential(items, identity);
        }
        let chunk_size = items
            .len()
            .div_ceil(self.num_threads() * 4)
            .max(grain);
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        let mut partials: Vec<Option<A>> = chunks.iter().map(|_| None).collect();
        {
            let sequential = &sequential;
            self.scope(|s| {
                for (slot, chunk) in partials.iter_mut().zip(chunks) {
                    let seed = identity.clone();
                    s.spawn(move || *slot = Some(sequential(chunk, seed)));
                }
            });
        }
        partials
            .into_iter()
            .map(|slot| slot.expect("map_reduce task did not run"))
            .fold(identity, &reduce)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep.lock().unwrap();
            self.shared.wakeup.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The size the lazy global pool should be created with; 0 = derive from
/// [`std::thread::available_parallelism`]. The low bits carry the requested
/// size; [`CONFIGURED`] records that a configuration call already landed.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);
static CONFIGURED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Number of threads the platform reports as available (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Request that the [`global`] pool be built with `threads` workers.
///
/// **One-shot contract:** the process-wide pool is configured at most once,
/// before its first use, and the winning size holds for the process
/// lifetime (a resident server — `mb-serve` — owns the pool for every query
/// it will ever run, so a later caller cannot be allowed to silently
/// resize or silently lose). Exactly one call can succeed:
///
/// * the first call before any use of [`global`] wins and returns `Ok`;
/// * a second call returns [`ConfigureError::AlreadyConfigured`] with the
///   size that won, and changes nothing;
/// * any call after the pool has been built returns
///   [`ConfigureError::PoolInitialized`] with the worker count it was built
///   with, and changes nothing.
///
/// Harness binaries call this from a `--threads` flag and surface the error
/// instead of swallowing it.
pub fn configure_global_threads(threads: usize) -> Result<(), ConfigureError> {
    if GLOBAL.get().is_some() {
        return Err(ConfigureError::PoolInitialized {
            workers: global().num_threads(),
        });
    }
    if CONFIGURED.swap(true, Ordering::SeqCst) {
        return Err(ConfigureError::AlreadyConfigured {
            configured: GLOBAL_THREADS.load(Ordering::SeqCst),
        });
    }
    GLOBAL_THREADS.store(threads, Ordering::SeqCst);
    // Racing with a concurrent first `global()` call loses benignly: the
    // store above either lands before the builder reads it, or is ignored.
    if GLOBAL.get().is_some() {
        return Err(ConfigureError::PoolInitialized {
            workers: global().num_threads(),
        });
    }
    Ok(())
}

/// Error returned by [`configure_global_threads`] when its one-shot
/// contract is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigureError {
    /// A previous `configure_global_threads` call already fixed the size
    /// (the pool itself may not exist yet). Carries the size that won.
    AlreadyConfigured {
        /// The thread count the earlier call requested (0 = one worker per
        /// available core).
        configured: usize,
    },
    /// The global pool has already been built; its size is immutable for
    /// the rest of the process lifetime.
    PoolInitialized {
        /// The worker count the pool was built with.
        workers: usize,
    },
}

impl std::fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigureError::AlreadyConfigured { configured } => write!(
                f,
                "the global mb-pool thread count has already been configured (requested size {configured}; 0 = per-core)"
            ),
            ConfigureError::PoolInitialized { workers } => write!(
                f,
                "the global mb-pool has already been initialized with {workers} workers"
            ),
        }
    }
}

impl std::error::Error for ConfigureError {}

/// The process-wide pool, created on first use with
/// [`configure_global_threads`]'s size or one worker per available core.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let requested = GLOBAL_THREADS.load(Ordering::SeqCst);
        Pool::new(if requested == 0 {
            available_threads()
        } else {
            requested
        })
    })
}

/// [`Pool::join`] on the [`global`] pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    global().join(a, b)
}

/// [`Pool::scope`] on the [`global`] pool.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    global().scope(op)
}

/// [`Pool::parallel_for`] on the [`global`] pool.
pub fn parallel_for<T, F>(items: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    global().parallel_for(items, grain, f)
}

/// [`Pool::map_reduce`] on the [`global`] pool.
pub fn map_reduce<T, A, M, R>(items: &[T], grain: usize, map: M, identity: A, reduce: R) -> A
where
    T: Sync,
    A: Send + Clone,
    M: Fn(&T) -> A + Sync,
    R: Fn(A, A) -> A + Sync,
{
    global().map_reduce(items, grain, map, identity, reduce)
}

/// [`Pool::map_vec`] on the [`global`] pool.
pub fn map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    global().map_vec(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 1 + 1, || "two".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_join_computes_fibonacci() {
        // Recursion forces workers to call back into the pool: every level
        // below the first runs `join` *on a worker thread*, which must help
        // execute queued tasks rather than deadlock waiting for itself.
        fn fib(pool: &Pool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = Pool::new(3);
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn deep_nested_join_does_not_overflow_the_stack() {
        // Regression test: help-first waiting used to execute arbitrary
        // stolen jobs in the waiter's stack frame, so a chain of helped
        // jobs could stack one frame set per *in-flight task* (~10k here)
        // and abort with a stack overflow. The foreign-help depth bound
        // keeps chains finite regardless of task count.
        fn fib(pool: &Pool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = Pool::new(4);
        assert_eq!(fib(&pool, 20), 6_765);
    }

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        let pool = Pool::new(4);
        let mut counters = vec![0u64; 64];
        pool.scope(|s| {
            for (i, slot) in counters.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 * 2);
            }
        });
        for (i, &value) in counters.iter().enumerate() {
            assert_eq!(value, i as u64 * 2);
        }
    }

    #[test]
    fn parallel_for_covers_every_element_exactly_once() {
        let pool = Pool::new(4);
        let mut data = vec![0u32; 10_000];
        pool.parallel_for(&mut data, 64, |start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot += (start + k) as u32 + 1;
            }
        });
        for (i, &value) in data.iter().enumerate() {
            assert_eq!(value, i as u32 + 1, "element {i} touched wrong number of times");
        }
    }

    #[test]
    fn parallel_for_runs_inline_below_grain() {
        let pool = Pool::new(4);
        let mut data = vec![0u8; 8];
        pool.parallel_for(&mut data, 1024, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 8);
            chunk.fill(7);
        });
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn map_vec_preserves_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..200).collect();
        let mapped = pool.map_vec(items, |i| i * 3);
        assert_eq!(mapped, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_concatenation_preserves_slice_order() {
        // String concatenation is associative but NOT commutative: any
        // out-of-order combination of chunk results changes the answer.
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..500).collect();
        let expected: String = items.iter().map(|i| format!("{i},")).collect();
        let got = pool.map_reduce(
            &items,
            8,
            |i| format!("{i},"),
            String::new(),
            |a, b| a + &b,
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
                s.spawn(|| { /* sibling still runs */ });
            });
        }));
        let payload = result.expect_err("scope should re-raise the task panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(message.contains("task exploded"), "payload: {message}");
        // The worker that caught the panic keeps serving work.
        let (a, b) = pool.join(|| 40, || 2);
        assert_eq!(a + b, 42);
    }

    #[test]
    fn panic_in_join_closure_waits_for_sibling() {
        let pool = Pool::new(2);
        let done = AtomicBool::new(false);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || panic!("inline half"),
                || {
                    std::thread::sleep(Duration::from_millis(20));
                    done.store(true, Ordering::SeqCst);
                },
            )
        }));
        assert!(result.is_err());
        // The spawned half must have completed before the panic was re-raised
        // (otherwise it could still be using borrowed state).
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn single_thread_pool_still_completes_everything() {
        let pool = Pool::new(1);
        let items: Vec<u64> = (1..=100).collect();
        let sum = pool.map_reduce(&items, 10, |&x| x, 0u64, |a, b| a + b);
        assert_eq!(sum, 5050);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn zero_requested_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers_after_draining() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = Pool::new(2);
            pool.scope(|s| {
                for _ in 0..32 {
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        } // drop
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn global_pool_exists_and_configure_fails_after_init() {
        let workers = global().num_threads();
        assert!(workers >= 1);
        assert_eq!(
            configure_global_threads(4),
            Err(ConfigureError::PoolInitialized { workers })
        );
    }

    #[test]
    fn nested_parallel_for_inside_map_vec_tasks() {
        // The FastMCD-inside-a-partition shape: coarse outer tasks that each
        // fan out elementwise inner work on the same pool.
        let pool = Pool::new(4);
        let partitions: Vec<Vec<u64>> = (0..6).map(|p| (0..5_000).map(|i| p + i).collect()).collect();
        let expected: Vec<u64> = partitions.iter().map(|v| v.iter().sum()).collect();
        let sums = pool.map_vec(partitions, |mut partition| {
            pool.parallel_for(&mut partition, 256, |_, chunk| {
                for value in chunk.iter_mut() {
                    *value = value.wrapping_mul(1); // touch every element
                }
            });
            pool.map_reduce(&partition, 256, |&x| x, 0u64, |a, b| a + b)
        });
        assert_eq!(sums, expected);
    }

    #[test]
    fn worker_counters_sum_to_spawn_count_at_any_thread_count() {
        // The telemetry contract: per-worker executed counters are a
        // commutative monoid, so their fold equals the number of spawned
        // jobs at 1, 2, and 4 threads — scheduling and stealing only move
        // counts between workers, never create or lose them.
        const TASKS: usize = 257;
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let before = pool.total_stats();
            assert_eq!(before.tasks_executed, 0);
            let counter = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..TASKS {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), TASKS);
            let delta = pool.total_stats().since(&before);
            assert_eq!(
                delta.tasks_executed, TASKS as u64,
                "executed-counter fold diverged at {threads} threads"
            );
            // The scope owner is a foreign thread here, so every job entered
            // via the injector; pops from it can never exceed submissions.
            assert!(delta.injector_pops <= TASKS as u64);
        }
    }

    #[test]
    fn worker_stats_are_per_worker_and_combine() {
        let pool = Pool::new(3);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let per_worker = pool.worker_stats();
        assert_eq!(per_worker.len(), 3);
        let folded = per_worker
            .into_iter()
            .fold(pool.helper_stats(), WorkerStats::combined);
        assert_eq!(folded, pool.total_stats());
        assert_eq!(folded.tasks_executed, 64);
        let again = pool.total_stats().since(&folded);
        assert_eq!(again.tasks_executed, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn map_reduce_sum_matches_sequential(values in proptest::collection::vec(-1000i64..1000, 0..400)) {
            let pool = Pool::new(3);
            let sequential: i64 = values.iter().map(|v| v * v).sum();
            let parallel = pool.map_reduce(&values, 7, |&v| v * v, 0i64, |a, b| a + b);
            prop_assert_eq!(parallel, sequential);
        }

        #[test]
        fn map_vec_matches_sequential_map(values in proptest::collection::vec(0u32..10_000, 0..200)) {
            let pool = Pool::new(3);
            let sequential: Vec<u64> = values.iter().map(|&v| (v as u64) << 1).collect();
            let parallel = pool.map_vec(values, |v| (v as u64) << 1);
            prop_assert_eq!(parallel, sequential);
        }
    }
}
