//! Streaming frequency-descending prefix trees: the CPS-tree (Tanbeer et
//! al.), used as the baseline for MacroBase's M-CPS-tree (Appendix B/D).
//!
//! A CPS-tree is an FP-tree maintained incrementally over a stream: every
//! arriving transaction is inserted along the current frequency-descending
//! item order, and at window boundaries the tree is *restructured* (branch
//! re-sorted) so that the item order again reflects current frequencies. In
//! an exponentially damped model the CPS-tree keeps at least one node for
//! every item ever observed, which is exactly the scalability problem the
//! M-CPS-tree (see [`crate::mcps`]) fixes by only admitting currently
//! frequent items.

use crate::fptree::FpTree;
use crate::{FrequentItemset, Item};
use mb_sketch::Mergeable;
use std::collections::{HashMap, HashSet};

/// An incrementally maintained, weighted, frequency-descending prefix tree.
///
/// This is the structural core shared by the CPS-tree and M-CPS-tree; it
/// stores transactions compactly along shared prefixes and supports decay,
/// restructuring, item removal, and FPGrowth mining (by exporting its
/// contents as weighted transactions).
#[derive(Debug, Clone)]
pub struct StreamingPrefixTree {
    nodes: Vec<PrefixNode>,
    item_counts: HashMap<Item, f64>,
    total_weight: f64,
}

/// Children are a vector of `(item, node index)` pairs sorted by item id
/// (binary search), matching the batch [`FpTree`]'s arena layout: streaming
/// sibling fan-out is small, so the flat sorted vector is both faster to
/// probe and denser in cache than a per-node `HashMap`.
#[derive(Debug, Clone)]
struct PrefixNode {
    item: Item,
    count: f64,
    parent: usize,
    children: Vec<(Item, usize)>,
}

const ROOT: usize = 0;

impl Default for StreamingPrefixTree {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingPrefixTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        StreamingPrefixTree {
            nodes: vec![PrefixNode {
                item: Item::MAX,
                count: 0.0,
                parent: usize::MAX,
                children: Vec::new(),
            }],
            item_counts: HashMap::new(),
            total_weight: 0.0,
        }
    }

    /// Number of nodes excluding the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of distinct items currently present in the tree.
    pub fn distinct_items(&self) -> usize {
        self.item_counts.len()
    }

    /// Total decayed weight of inserted transactions.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Current per-item decayed frequency.
    pub fn item_count(&self, item: Item) -> f64 {
        self.item_counts.get(&item).copied().unwrap_or(0.0)
    }

    /// Insert a transaction with the given weight. Items are deduplicated and
    /// inserted in the tree's current frequency-descending order.
    pub fn insert(&mut self, items: &[Item], weight: f64) {
        assert!(weight > 0.0, "transaction weight must be positive");
        let mut unique: Vec<Item> = items.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if unique.is_empty() {
            return;
        }
        for &item in &unique {
            *self.item_counts.entry(item).or_insert(0.0) += weight;
        }
        self.total_weight += weight;
        // Order by current frequency (descending), ties by item id so the
        // order is deterministic.
        unique.sort_by(|a, b| {
            let ca = self.item_counts.get(a).copied().unwrap_or(0.0);
            let cb = self.item_counts.get(b).copied().unwrap_or(0.0);
            cb.total_cmp(&ca).then_with(|| a.cmp(b))
        });
        let mut current = ROOT;
        for &item in &unique {
            current = self.descend(current, item, weight);
        }
    }

    /// Walk from `current` to its `item` child (adding `weight`), creating
    /// the child if absent. Children stay sorted by item id.
    fn descend(&mut self, current: usize, item: Item, weight: f64) -> usize {
        match self.nodes[current]
            .children
            .binary_search_by_key(&item, |&(i, _)| i)
        {
            Ok(pos) => {
                let child = self.nodes[current].children[pos].1;
                self.nodes[child].count += weight;
                child
            }
            Err(pos) => {
                let idx = self.nodes.len();
                self.nodes.push(PrefixNode {
                    item,
                    count: weight,
                    parent: current,
                    children: Vec::new(),
                });
                self.nodes[current].children.insert(pos, (item, idx));
                idx
            }
        }
    }

    /// Multiply every node count, item count, and the total weight by
    /// `factor` (exponential damping at a window boundary).
    pub fn decay(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must be in [0, 1]"
        );
        for node in self.nodes.iter_mut().skip(1) {
            node.count *= factor;
        }
        // mb-lint: allow(hashmap-order-hazard) -- order-insensitive scaling: each count shrinks independently
        for count in self.item_counts.values_mut() {
            *count *= factor;
        }
        self.total_weight *= factor;
    }

    /// Export the tree's contents as weighted transactions.
    pub fn to_weighted_transactions(&self) -> Vec<(Vec<Item>, f64)> {
        let mut out = Vec::new();
        for node in self.nodes.iter().skip(1) {
            let child_sum: f64 = node
                .children
                .iter()
                .map(|&(_, c)| self.nodes[c].count)
                .sum();
            let own = node.count - child_sum;
            if own > 1e-12 {
                let mut path = vec![node.item];
                let mut up = node.parent;
                while up != ROOT && up != usize::MAX {
                    path.push(self.nodes[up].item);
                    up = self.nodes[up].parent;
                }
                path.reverse();
                out.push((path, own));
            }
        }
        out
    }

    /// Rebuild the tree so every branch is sorted by current (decayed)
    /// frequency — the CPS-tree's branch-sorting step at a window boundary.
    pub fn restructure(&mut self) {
        let transactions = self.to_weighted_transactions();
        let item_counts = std::mem::take(&mut self.item_counts);
        *self = StreamingPrefixTree::new();
        self.item_counts = item_counts;
        // Re-insert without double-counting item frequencies: temporarily
        // zero them out and restore through insertions.
        let preserved = std::mem::take(&mut self.item_counts);
        for (items, weight) in &transactions {
            self.insert_with_order(items, *weight, &preserved);
        }
        self.item_counts = preserved;
        self.total_weight = transactions.iter().map(|(_, w)| w).sum();
    }

    /// Remove every item not contained in `keep`, then restructure.
    pub fn retain_items(&mut self, keep: &HashSet<Item>) {
        let transactions = self.to_weighted_transactions();
        let mut kept_counts: HashMap<Item, f64> = HashMap::new();
        let mut kept_transactions: Vec<(Vec<Item>, f64)> = Vec::new();
        let mut total = 0.0;
        for (items, weight) in transactions {
            let filtered: Vec<Item> = items
                .into_iter()
                .filter(|item| keep.contains(item))
                .collect();
            total += weight;
            if !filtered.is_empty() {
                for &item in &filtered {
                    *kept_counts.entry(item).or_insert(0.0) += weight;
                }
                kept_transactions.push((filtered, weight));
            }
        }
        *self = StreamingPrefixTree::new();
        self.item_counts = kept_counts;
        let order_source = self.item_counts.clone();
        for (items, weight) in &kept_transactions {
            self.insert_with_order(items, *weight, &order_source);
        }
        // Preserve the stream's total weight (including transactions whose
        // items were all pruned) so support fractions stay meaningful.
        self.total_weight = total;
    }

    /// Insert already-deduplicated items ordered by an external frequency
    /// table, updating only node counts (not item counts / total weight).
    fn insert_with_order(
        &mut self,
        items: &[Item],
        weight: f64,
        order: &HashMap<Item, f64>,
    ) {
        let mut unique: Vec<Item> = items.to_vec();
        unique.sort_unstable();
        unique.dedup();
        unique.sort_by(|a, b| {
            let ca = order.get(a).copied().unwrap_or(0.0);
            let cb = order.get(b).copied().unwrap_or(0.0);
            cb.total_cmp(&ca).then_with(|| a.cmp(b))
        });
        let mut current = ROOT;
        for &item in &unique {
            current = self.descend(current, item, weight);
        }
    }

    /// Mine frequent itemsets from the current tree contents via FPGrowth.
    pub fn mine(&self, min_support: f64, max_size: usize) -> Vec<FrequentItemset> {
        let transactions = self.to_weighted_transactions();
        let tree = FpTree::from_weighted_transactions(&transactions, min_support);
        tree.mine(min_support, max_size)
    }
}

impl Mergeable for StreamingPrefixTree {
    /// Merge another prefix tree into this one: item frequencies add, and
    /// the other tree's transactions are re-inserted ordered by the
    /// *combined* frequencies (count addition along shared prefixes). The
    /// merged tree stores exactly the union of both trees' weighted
    /// transaction multisets, so mining it equals mining the concatenated
    /// streams; total weight (including fully-pruned transactions) adds.
    fn merge(&mut self, other: Self) {
        let other_weight = other.total_weight;
        // mb-lint: allow(hashmap-order-hazard) -- order-insensitive fold: each item's count accumulates independently
        for (item, count) in &other.item_counts {
            *self.item_counts.entry(*item).or_insert(0.0) += count;
        }
        let order = self.item_counts.clone();
        for (path, weight) in other.to_weighted_transactions() {
            self.insert_with_order(&path, weight, &order);
        }
        self.total_weight += other_weight;
    }
}

/// The CPS-tree: a [`StreamingPrefixTree`] with window-boundary decay and
/// restructuring, admitting **every** observed item (the Appendix D
/// baseline).
#[derive(Debug, Clone)]
pub struct CpsTree {
    tree: StreamingPrefixTree,
    decay_rate: f64,
}

impl CpsTree {
    /// Create a CPS-tree with the given per-window decay rate.
    pub fn new(decay_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay_rate),
            "decay rate must be in [0, 1)"
        );
        CpsTree {
            tree: StreamingPrefixTree::new(),
            decay_rate,
        }
    }

    /// Insert one transaction (a point's attribute items) with unit weight.
    pub fn insert(&mut self, items: &[Item]) {
        if !items.is_empty() {
            self.tree.insert(items, 1.0);
        }
    }

    /// Close the current window: decay all counts and restructure branches
    /// into frequency-descending order.
    pub fn on_window_boundary(&mut self) {
        self.tree.decay(1.0 - self.decay_rate);
        self.tree.restructure();
    }

    /// Mine itemsets with at least `min_support` (decayed count).
    pub fn mine(&self, min_support: f64, max_size: usize) -> Vec<FrequentItemset> {
        self.tree.mine(min_support, max_size)
    }

    /// Access the underlying prefix tree (for size comparisons in benches).
    pub fn tree(&self) -> &StreamingPrefixTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_canonical;

    #[test]
    fn insert_and_counts() {
        let mut tree = StreamingPrefixTree::new();
        tree.insert(&[1, 2], 1.0);
        tree.insert(&[1, 3], 1.0);
        tree.insert(&[1, 2, 3], 1.0);
        assert_eq!(tree.distinct_items(), 3);
        assert!((tree.item_count(1) - 3.0).abs() < 1e-12);
        assert!((tree.item_count(2) - 2.0).abs() < 1e-12);
        assert!((tree.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_transaction_is_ignored() {
        let mut tree = StreamingPrefixTree::new();
        tree.insert(&[], 1.0);
        assert_eq!(tree.node_count(), 0);
        assert_eq!(tree.total_weight(), 0.0);
    }

    #[test]
    fn decay_scales_everything() {
        let mut tree = StreamingPrefixTree::new();
        tree.insert(&[1, 2], 4.0);
        tree.decay(0.25);
        assert!((tree.item_count(1) - 1.0).abs() < 1e-12);
        assert!((tree.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn export_round_trips_weight() {
        let mut tree = StreamingPrefixTree::new();
        tree.insert(&[1, 2, 3], 1.0);
        tree.insert(&[1, 2], 2.0);
        tree.insert(&[4], 0.5);
        let exported = tree.to_weighted_transactions();
        let total: f64 = exported.iter().map(|(_, w)| w).sum();
        assert!((total - 3.5).abs() < 1e-9);
    }

    #[test]
    fn mining_matches_batch_fpgrowth() {
        use crate::fptree::FpTree;
        let transactions = vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ];
        let mut stream_tree = StreamingPrefixTree::new();
        for t in &transactions {
            stream_tree.insert(t, 1.0);
        }
        let mut streamed = stream_tree.mine(2.0, usize::MAX);
        let batch = FpTree::from_transactions(&transactions, 2.0);
        let mut batched = batch.mine(2.0, usize::MAX);
        sort_canonical(&mut streamed);
        sort_canonical(&mut batched);
        assert_eq!(streamed.len(), batched.len());
        for (s, b) in streamed.iter().zip(batched.iter()) {
            assert_eq!(s.items, b.items);
            assert!((s.support - b.support).abs() < 1e-9);
        }
    }

    #[test]
    fn restructure_preserves_mining_results() {
        let mut tree = StreamingPrefixTree::new();
        // Insert in an order that makes early frequency order "wrong".
        for _ in 0..5 {
            tree.insert(&[9, 1], 1.0);
        }
        for _ in 0..50 {
            tree.insert(&[1, 2], 1.0);
        }
        let mut before = tree.mine(3.0, usize::MAX);
        tree.restructure();
        let mut after = tree.mine(3.0, usize::MAX);
        sort_canonical(&mut before);
        sort_canonical(&mut after);
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b.items, a.items);
            assert!((b.support - a.support).abs() < 1e-9);
        }
        // Restructuring never grows the tree.
        assert!(tree.node_count() <= 4 + 2);
    }

    #[test]
    fn retain_items_drops_pruned_items() {
        let mut tree = StreamingPrefixTree::new();
        tree.insert(&[1, 2], 5.0);
        tree.insert(&[1, 3], 1.0);
        let keep: HashSet<Item> = [1, 2].into_iter().collect();
        tree.retain_items(&keep);
        assert_eq!(tree.item_count(3), 0.0);
        assert!(tree.item_count(1) > 0.0);
        let mined = tree.mine(1.0, usize::MAX);
        assert!(mined.iter().all(|r| !r.items.contains(&3)));
        // Total weight still reflects all observed transactions.
        assert!((tree.total_weight() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn merged_prefix_trees_mine_like_one_stream() {
        let transactions = vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ];
        let mut whole = StreamingPrefixTree::new();
        let mut left = StreamingPrefixTree::new();
        let mut right = StreamingPrefixTree::new();
        for (i, t) in transactions.iter().enumerate() {
            whole.insert(t, 1.0);
            if i % 2 == 0 {
                left.insert(t, 1.0);
            } else {
                right.insert(t, 1.0);
            }
        }
        left.merge(right);
        assert!((left.total_weight() - whole.total_weight()).abs() < 1e-12);
        assert_eq!(left.distinct_items(), whole.distinct_items());
        for item in [1, 2, 3, 4, 5] {
            assert!((left.item_count(item) - whole.item_count(item)).abs() < 1e-12);
        }
        let mut merged_mined = left.mine(2.0, usize::MAX);
        let mut whole_mined = whole.mine(2.0, usize::MAX);
        sort_canonical(&mut merged_mined);
        sort_canonical(&mut whole_mined);
        assert_eq!(merged_mined.len(), whole_mined.len());
        for (m, w) in merged_mined.iter().zip(whole_mined.iter()) {
            assert_eq!(m.items, w.items);
            assert!((m.support - w.support).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_accounts_pruned_transaction_weight() {
        let mut a = StreamingPrefixTree::new();
        a.insert(&[1, 2], 5.0);
        let mut b = StreamingPrefixTree::new();
        b.insert(&[3], 1.0);
        b.insert(&[4], 2.0);
        let keep: HashSet<Item> = [3].into_iter().collect();
        b.retain_items(&keep); // drops item 4's path but keeps its weight
        a.merge(b);
        assert!((a.total_weight() - 8.0).abs() < 1e-9);
        assert!((a.item_count(3) - 1.0).abs() < 1e-9);
        assert_eq!(a.item_count(4), 0.0);
    }

    #[test]
    fn cps_tree_window_lifecycle() {
        let mut cps = CpsTree::new(0.5);
        for _ in 0..100 {
            cps.insert(&[1, 2]);
        }
        cps.on_window_boundary();
        for _ in 0..10 {
            cps.insert(&[3, 4]);
        }
        let mined = cps.mine(5.0, 2);
        // Old pattern decayed to 50 (still above), new pattern at 10.
        assert!(mined.iter().any(|r| r.items == vec![1, 2]));
        assert!(mined.iter().any(|r| r.items == vec![3, 4]));
        // CPS keeps every item ever seen.
        assert_eq!(cps.tree().distinct_items(), 4);
    }

    #[test]
    #[should_panic(expected = "decay rate must be in [0, 1)")]
    fn cps_rejects_bad_decay() {
        let _ = CpsTree::new(1.0);
    }
}
