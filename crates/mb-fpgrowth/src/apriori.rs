//! Apriori frequent-itemset mining — the classic candidate-generation
//! baseline ("AP" in Table 5).
//!
//! Apriori makes one pass over the transactions per itemset size, generating
//! candidate `k+1`-itemsets from frequent `k`-itemsets and counting them. Its
//! repeated scans are what make it markedly slower than FPGrowth (and than
//! MacroBase's cardinality-aware strategy) on the paper's workloads — the
//! Table 5 harness reproduces exactly that gap.

use crate::{FrequentItemset, Item};
use std::collections::{HashMap, HashSet};

/// Mine all itemsets with support at least `min_support` (absolute count)
/// using the Apriori algorithm, with combination size bounded by `max_size`.
pub fn apriori(
    transactions: &[Vec<Item>],
    min_support: f64,
    max_size: usize,
) -> Vec<FrequentItemset> {
    if max_size == 0 || transactions.is_empty() {
        return Vec::new();
    }
    // Deduplicate items within each transaction up front.
    let cleaned: Vec<Vec<Item>> = transactions
        .iter()
        .map(|t| {
            let mut items = t.clone();
            items.sort_unstable();
            items.dedup();
            items
        })
        .collect();

    let mut results: Vec<FrequentItemset> = Vec::new();

    // Level 1: single-item counts.
    let mut counts: HashMap<Vec<Item>, f64> = HashMap::new();
    for t in &cleaned {
        for &item in t {
            *counts.entry(vec![item]).or_insert(0.0) += 1.0;
        }
    }
    let mut frequent: Vec<Vec<Item>> = counts
        .iter() // mb-lint: allow(hashmap-order-hazard) -- surviving keys are sorted before use, three lines down
        .filter(|(_, &c)| c >= min_support)
        .map(|(items, _)| items.clone())
        .collect();
    frequent.sort();
    for items in &frequent {
        results.push(FrequentItemset::new(items.clone(), counts[items]));
    }

    let mut k = 1;
    while !frequent.is_empty() && k < max_size {
        k += 1;
        // Candidate generation: join frequent (k-1)-itemsets sharing a prefix.
        let frequent_set: HashSet<Vec<Item>> = frequent.iter().cloned().collect();
        let mut candidates: HashSet<Vec<Item>> = HashSet::new();
        for (i, a) in frequent.iter().enumerate() {
            for b in frequent.iter().skip(i + 1) {
                if a[..k - 2] == b[..k - 2] {
                    let mut candidate = a.clone();
                    candidate.push(b[k - 2]);
                    candidate.sort_unstable();
                    candidate.dedup();
                    if candidate.len() != k {
                        continue;
                    }
                    // Prune: every (k-1)-subset must be frequent.
                    let all_subsets_frequent = (0..k).all(|drop| {
                        let mut subset = candidate.clone();
                        subset.remove(drop);
                        frequent_set.contains(&subset)
                    });
                    if all_subsets_frequent {
                        candidates.insert(candidate);
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Count candidates with one pass over the transactions.
        let mut level_counts: HashMap<Vec<Item>, f64> = HashMap::new();
        for t in &cleaned {
            if t.len() < k {
                continue;
            }
            let t_set: HashSet<Item> = t.iter().copied().collect();
            // mb-lint: allow(hashmap-order-hazard) -- order-insensitive fold: each candidate's count accumulates independently
            for candidate in &candidates {
                if candidate.iter().all(|item| t_set.contains(item)) {
                    *level_counts.entry(candidate.clone()).or_insert(0.0) += 1.0;
                }
            }
        }
        frequent = level_counts
            .iter() // mb-lint: allow(hashmap-order-hazard) -- surviving keys are sorted before use, three lines down
            .filter(|(_, &c)| c >= min_support)
            .map(|(items, _)| items.clone())
            .collect();
        frequent.sort();
        for items in &frequent {
            results.push(FrequentItemset::new(items.clone(), level_counts[items]));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fptree::FpTree;
    use crate::{brute_force_frequent_itemsets, sort_canonical};
    use proptest::prelude::*;

    #[test]
    fn empty_input_returns_nothing() {
        assert!(apriori(&[], 1.0, usize::MAX).is_empty());
        assert!(apriori(&[vec![1, 2]], 1.0, 0).is_empty());
    }

    #[test]
    fn matches_brute_force_on_small_example() {
        let transactions = vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ];
        for min_support in [2.0, 3.0] {
            let mut mined = apriori(&transactions, min_support, usize::MAX);
            let mut oracle = brute_force_frequent_itemsets(&transactions, min_support);
            sort_canonical(&mut mined);
            sort_canonical(&mut oracle);
            assert_eq!(mined.len(), oracle.len());
            for (m, o) in mined.iter().zip(oracle.iter()) {
                assert_eq!(m.items, o.items);
                assert!((m.support - o.support).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn max_size_bounds_results() {
        let transactions = vec![vec![1, 2, 3, 4]; 10];
        let result = apriori(&transactions, 5.0, 2);
        assert!(result.iter().all(|r| r.len() <= 2));
        assert_eq!(result.iter().filter(|r| r.len() == 2).count(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn apriori_matches_fpgrowth(
            transactions in prop::collection::vec(
                prop::collection::vec(0u32..6, 0..5), 0..25),
            min_support in 1usize..4,
        ) {
            let mut a = apriori(&transactions, min_support as f64, usize::MAX);
            let tree = FpTree::from_transactions(&transactions, min_support as f64);
            let mut f = tree.mine(min_support as f64, usize::MAX);
            sort_canonical(&mut a);
            sort_canonical(&mut f);
            prop_assert_eq!(a.len(), f.len());
            for (x, y) in a.iter().zip(f.iter()) {
                prop_assert_eq!(&x.items, &y.items);
                prop_assert!((x.support - y.support).abs() < 1e-9);
            }
        }
    }
}
