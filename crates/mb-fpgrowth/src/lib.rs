//! Frequent-itemset mining for MacroBase-RS.
//!
//! MacroBase's explanation operator reports *combinations* of attribute
//! values that are common among outliers (Section 5.2). The batch path mines
//! an FP-tree over the outlier transactions ([`fptree`]); the streaming path
//! maintains a decayed prefix tree — the M-CPS-tree — restricted to items the
//! AMC sketch currently considers frequent ([`mcps`]), with the original
//! CPS-tree as the baseline it is compared against in Appendix D ([`cps`]).
//! An Apriori miner ([`apriori`]) is included as the classic baseline used in
//! the Table 5 runtime comparison.
//!
//! Items are dense `u32` identifiers; the explanation layer maps attribute
//! values (strings) to item ids before mining.
//!
//! ## Example
//!
//! Mine frequent itemsets from a batch of transactions with FPGrowth:
//!
//! ```
//! use mb_fpgrowth::fptree::FpTree;
//!
//! let transactions = vec![vec![1, 2], vec![1, 2, 3], vec![1, 3]];
//! let tree = FpTree::from_transactions(&transactions, 2.0);
//! let frequent = tree.mine(2.0, usize::MAX);
//! assert!(frequent
//!     .iter()
//!     .any(|f| f.items == vec![1, 2] && f.support == 2.0));
//! ```

#![warn(missing_docs)]

pub mod apriori;
pub mod cps;
pub mod fptree;
pub mod mcps;

/// An attribute-value identifier. The explanation layer maintains the
/// mapping from (attribute name, value) pairs to dense item ids.
pub type Item = u32;

/// A mined frequent itemset with its (possibly weighted/decayed) support count.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentItemset {
    /// The items in the set, sorted ascending.
    pub items: Vec<Item>,
    /// Total weight of transactions containing the set.
    pub support: f64,
}

impl FrequentItemset {
    /// Create a new itemset result, normalizing item order.
    pub fn new(mut items: Vec<Item>, support: f64) -> Self {
        items.sort_unstable();
        FrequentItemset { items, support }
    }

    /// Number of items in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the itemset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Sort itemset results canonically (by descending support, then items) so
/// different miners can be compared in tests.
pub fn sort_canonical(itemsets: &mut [FrequentItemset]) {
    itemsets.sort_by(|a, b| {
        b.support
            .total_cmp(&a.support)
            .then_with(|| a.items.cmp(&b.items))
    });
}

/// Brute-force frequent itemset miner used as a test oracle: enumerates every
/// subset of observed items (only feasible for tiny alphabets).
pub fn brute_force_frequent_itemsets(
    transactions: &[Vec<Item>],
    min_support: f64,
) -> Vec<FrequentItemset> {
    use std::collections::BTreeSet;
    let alphabet: BTreeSet<Item> = transactions.iter().flatten().copied().collect();
    let alphabet: Vec<Item> = alphabet.into_iter().collect();
    assert!(
        alphabet.len() <= 20,
        "brute force oracle is only for tiny alphabets"
    );
    let mut out = Vec::new();
    for mask in 1u32..(1 << alphabet.len()) {
        let subset: Vec<Item> = alphabet
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &item)| item)
            .collect();
        let count = transactions
            .iter()
            .filter(|t| subset.iter().all(|item| t.contains(item)))
            .count() as f64;
        if count >= min_support {
            out.push(FrequentItemset::new(subset, count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itemset_normalizes_order() {
        let a = FrequentItemset::new(vec![3, 1, 2], 5.0);
        assert_eq!(a.items, vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn brute_force_on_tiny_example() {
        let transactions = vec![vec![1, 2], vec![1, 2, 3], vec![1, 3], vec![1]];
        let result = brute_force_frequent_itemsets(&transactions, 2.0);
        // {1}: 4, {2}: 2, {3}: 2, {1,2}: 2, {1,3}: 2
        assert_eq!(result.len(), 5);
        let get = |items: &[Item]| {
            result
                .iter()
                .find(|r| r.items == items)
                .map(|r| r.support)
        };
        assert_eq!(get(&[1]), Some(4.0));
        assert_eq!(get(&[1, 2]), Some(2.0));
        assert_eq!(get(&[2, 3]), None);
    }

    #[test]
    fn sort_canonical_orders_by_support() {
        let mut sets = vec![
            FrequentItemset::new(vec![2], 1.0),
            FrequentItemset::new(vec![1], 5.0),
            FrequentItemset::new(vec![3], 3.0),
        ];
        sort_canonical(&mut sets);
        assert_eq!(sets[0].items, vec![1]);
        assert_eq!(sets[1].items, vec![3]);
        assert_eq!(sets[2].items, vec![2]);
    }
}
