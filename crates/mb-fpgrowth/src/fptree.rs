//! FP-tree construction and FPGrowth mining (Han et al.), the itemset miner
//! behind MacroBase's batch explanation (Section 5.2).
//!
//! The tree is arena-allocated (`Vec<Node>` with index links) so construction
//! does no per-node boxing and mining can walk parent links cheaply.
//! Transactions may carry fractional weights, which is what lets the same
//! code mine decayed streaming prefix trees (the M-CPS-tree exports its
//! contents as weighted transactions).

use crate::{FrequentItemset, Item};
use mb_sketch::Mergeable;
use std::collections::HashMap;

/// One node of the FP-tree.
///
/// Children are kept as a vector of `(item, node index)` pairs sorted by
/// item id and located by binary search. Sibling fan-out in attribute
/// transactions is small (bounded by the number of attribute columns times
/// their surviving cardinality at that depth), so the sorted vector beats a
/// per-node `HashMap` on both lookup cost and memory locality.
#[derive(Debug, Clone)]
struct Node {
    item: Item,
    count: f64,
    parent: usize,
    children: Vec<(Item, usize)>,
    /// Next node holding the same item (header-table chain).
    next_same_item: Option<usize>,
}

/// A weighted FP-tree over `u32` items.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<Node>,
    /// First node per item for header-table traversal.
    header: HashMap<Item, usize>,
    /// Total item frequencies (used to order transactions).
    item_counts: HashMap<Item, f64>,
    total_weight: f64,
}

const ROOT: usize = 0;

impl Default for FpTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FpTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        FpTree {
            nodes: vec![Node {
                item: Item::MAX,
                count: 0.0,
                parent: usize::MAX,
                children: Vec::new(),
                next_same_item: None,
            }],
            header: HashMap::new(),
            item_counts: HashMap::new(),
            total_weight: 0.0,
        }
    }

    /// Build a tree from unweighted transactions, ordering items by global
    /// frequency (descending) as FPGrowth prescribes. Items occurring fewer
    /// than `min_support` times in total are dropped up front.
    pub fn from_transactions(transactions: &[Vec<Item>], min_support: f64) -> Self {
        let weighted: Vec<(Vec<Item>, f64)> =
            transactions.iter().map(|t| (t.clone(), 1.0)).collect();
        Self::from_weighted_transactions(&weighted, min_support)
    }

    /// Build a tree from weighted transactions.
    pub fn from_weighted_transactions(
        transactions: &[(Vec<Item>, f64)],
        min_support: f64,
    ) -> Self {
        let mut counts: HashMap<Item, f64> = HashMap::new();
        for (items, weight) in transactions {
            for &item in items {
                *counts.entry(item).or_insert(0.0) += weight;
            }
        }
        let mut tree = FpTree::new();
        tree.item_counts = counts;
        for (items, weight) in transactions {
            let ordered = tree.order_and_filter(items, min_support);
            tree.insert_ordered(&ordered, *weight);
        }
        tree
    }

    /// Number of nodes (excluding the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Total weight of inserted transactions.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Order a transaction's items by global frequency (descending, ties by
    /// item id for determinism), dropping items below `min_support` and
    /// duplicates.
    fn order_and_filter(&self, items: &[Item], min_support: f64) -> Vec<Item> {
        let mut filtered: Vec<Item> = items
            .iter()
            .copied()
            .filter(|item| {
                self.item_counts
                    .get(item)
                    .map(|&c| c >= min_support)
                    .unwrap_or(false)
            })
            .collect();
        filtered.sort_unstable();
        filtered.dedup();
        filtered.sort_by(|a, b| {
            let ca = self.item_counts.get(a).copied().unwrap_or(0.0);
            let cb = self.item_counts.get(b).copied().unwrap_or(0.0);
            cb.total_cmp(&ca).then_with(|| a.cmp(b))
        });
        filtered
    }

    /// Insert an already ordered, deduplicated transaction with a weight.
    fn insert_ordered(&mut self, items: &[Item], weight: f64) {
        self.total_weight += weight;
        let mut current = ROOT;
        for &item in items {
            current = match self.nodes[current]
                .children
                .binary_search_by_key(&item, |&(i, _)| i)
            {
                Ok(pos) => {
                    let child = self.nodes[current].children[pos].1;
                    self.nodes[child].count += weight;
                    child
                }
                Err(pos) => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count: weight,
                        parent: current,
                        children: Vec::new(),
                        next_same_item: self.header.get(&item).copied(),
                    });
                    self.header.insert(item, idx);
                    self.nodes[current].children.insert(pos, (item, idx));
                    idx
                }
            };
        }
    }

    /// Collect, for each node holding `item`, the path of items from its
    /// parent up to the root together with the node's count — the
    /// "conditional pattern base" of FPGrowth.
    fn conditional_pattern_base(&self, item: Item) -> Vec<(Vec<Item>, f64)> {
        let mut out = Vec::new();
        let mut cursor = self.header.get(&item).copied();
        while let Some(idx) = cursor {
            let node = &self.nodes[idx];
            let mut path = Vec::new();
            let mut up = node.parent;
            while up != ROOT && up != usize::MAX {
                path.push(self.nodes[up].item);
                up = self.nodes[up].parent;
            }
            if !path.is_empty() {
                out.push((path, node.count));
            }
            cursor = node.next_same_item;
        }
        out
    }

    /// Total count of an item across the tree.
    fn item_total(&self, item: Item) -> f64 {
        let mut total = 0.0;
        let mut cursor = self.header.get(&item).copied();
        while let Some(idx) = cursor {
            total += self.nodes[idx].count;
            cursor = self.nodes[idx].next_same_item;
        }
        total
    }

    /// Mine all itemsets with support at least `min_support` via FPGrowth.
    ///
    /// `max_size` bounds the size of returned combinations (the paper's
    /// default pipeline typically looks at combinations of up to 3 or so
    /// attributes); pass `usize::MAX` for no bound.
    pub fn mine(&self, min_support: f64, max_size: usize) -> Vec<FrequentItemset> {
        self.mine_with_bound(min_support, max_size, |_| true)
    }

    /// [`mine`](FpTree::mine) with an additional *support-monotone* bound:
    /// an item whose total support `t` fails `bound(t)` is neither reported
    /// nor descended into. Because an itemset's support never exceeds the
    /// support of any of its items (in any conditional context), a bound of
    /// the form `f(t) >= threshold` with `f` nondecreasing prunes only
    /// itemsets that every extension would also fail — the output equals
    /// `mine(min_support, max_size)` filtered by `bound(support)`, computed
    /// without building the doomed conditional trees. MacroBase uses this to
    /// skip itemsets whose *maximum attainable risk ratio* (all support
    /// concentrated among outliers) cannot clear the reporting threshold.
    pub fn mine_with_bound<F>(
        &self,
        min_support: f64,
        max_size: usize,
        bound: F,
    ) -> Vec<FrequentItemset>
    where
        F: Fn(f64) -> bool,
    {
        let mut results = Vec::new();
        if max_size == 0 {
            return results;
        }
        let mut suffix = Vec::new();
        self.mine_recursive(min_support, max_size, &bound, &mut suffix, &mut results);
        results
    }

    fn mine_recursive<F>(
        &self,
        min_support: f64,
        max_size: usize,
        bound: &F,
        suffix: &mut Vec<Item>,
        results: &mut Vec<FrequentItemset>,
    ) where
        F: Fn(f64) -> bool,
    {
        // Items in this (conditional) tree, with totals.
        let mut items: Vec<(Item, f64)> = self
            .header
            .keys() // mb-lint: allow(hashmap-order-hazard) -- collected keys are sorted canonically just below
            .map(|&item| (item, self.item_total(item)))
            .filter(|&(_, total)| total >= min_support && bound(total))
            .collect();
        // Process in ascending frequency order (classic FPGrowth recursion order).
        items.sort_by(|a, b| {
            a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0))
        });
        for (item, total) in items {
            let mut itemset = suffix.clone();
            itemset.push(item);
            results.push(FrequentItemset::new(itemset.clone(), total));
            if itemset.len() >= max_size {
                continue;
            }
            let base = self.conditional_pattern_base(item);
            if base.is_empty() {
                continue;
            }
            let conditional = FpTree::from_weighted_transactions(&base, min_support);
            if conditional.node_count() == 0 {
                continue;
            }
            suffix.push(item);
            conditional.mine_recursive(min_support, max_size, bound, suffix, results);
            suffix.pop();
        }
    }

    /// Export the tree's contents as weighted transactions (the inverse of
    /// construction). Each node whose count exceeds the sum of its children's
    /// counts contributes one transaction equal to its root path, weighted by
    /// the difference. Used by the streaming trees to mine via FPGrowth and
    /// by tests to check structural invariants.
    pub fn to_weighted_transactions(&self) -> Vec<(Vec<Item>, f64)> {
        let mut out = Vec::new();
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            let child_sum: f64 = node
                .children
                .iter()
                .map(|&(_, c)| self.nodes[c].count)
                .sum();
            let own = node.count - child_sum;
            if own > 1e-12 {
                let mut path = vec![node.item];
                let mut up = node.parent;
                while up != ROOT && up != usize::MAX {
                    path.push(self.nodes[up].item);
                    up = self.nodes[up].parent;
                }
                path.reverse();
                out.push((path, own));
                let _ = idx;
            }
        }
        out
    }
}

impl Mergeable for FpTree {
    /// Merge another FP-tree into this one: global item frequencies add and
    /// the union of both trees' prefix paths is re-inserted along the
    /// *combined* frequency-descending order, adding counts at shared
    /// prefixes. FPGrowth's conditional-pattern-base walk assumes one
    /// consistent item order per tree — two trees built from different
    /// sub-streams generally disagree on item order, so paths cannot be
    /// grafted verbatim (an itemset whose order flips between branches would
    /// be mined twice with split supports). Re-ordering restores the
    /// invariant; mining the merged tree is exactly mining the union of both
    /// transaction multisets.
    fn merge(&mut self, other: Self) {
        let total = self.total_weight + other.total_weight;
        let mut transactions = self.to_weighted_transactions();
        transactions.extend(other.to_weighted_transactions());
        let mut counts = std::mem::take(&mut self.item_counts);
        // mb-lint: allow(hashmap-order-hazard) -- order-insensitive fold: each item's count accumulates independently
        for (item, count) in &other.item_counts {
            *counts.entry(*item).or_insert(0.0) += count;
        }
        let mut rebuilt = FpTree::new();
        rebuilt.item_counts = counts;
        for (items, weight) in &transactions {
            // Paths are already deduplicated and support-filtered by their
            // source trees; re-order them by the merged frequencies only.
            let ordered = rebuilt.order_and_filter(items, f64::NEG_INFINITY);
            rebuilt.insert_ordered(&ordered, *weight);
        }
        // Transactions whose items were all filtered at construction time are
        // not exported as paths but still count toward the stream weight.
        rebuilt.total_weight = total;
        *self = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_frequent_itemsets, sort_canonical};
    use proptest::prelude::*;

    fn classic_transactions() -> Vec<Vec<Item>> {
        // The textbook FPGrowth example (Han et al.).
        vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]
    }

    #[test]
    fn empty_tree_mines_nothing() {
        let tree = FpTree::new();
        assert!(tree.mine(1.0, usize::MAX).is_empty());
        assert_eq!(tree.node_count(), 0);
    }

    #[test]
    fn single_transaction_tree() {
        let tree = FpTree::from_transactions(&[vec![1, 2, 3]], 1.0);
        assert_eq!(tree.node_count(), 3);
        let mut result = tree.mine(1.0, usize::MAX);
        sort_canonical(&mut result);
        // All 7 non-empty subsets of {1,2,3} have support 1.
        assert_eq!(result.len(), 7);
        assert!(result.iter().all(|r| (r.support - 1.0).abs() < 1e-12));
    }

    #[test]
    fn matches_brute_force_on_classic_example() {
        let transactions = classic_transactions();
        for min_support in [1.0, 2.0, 3.0, 4.0] {
            let tree = FpTree::from_transactions(&transactions, min_support);
            let mut mined = tree.mine(min_support, usize::MAX);
            let mut oracle = brute_force_frequent_itemsets(&transactions, min_support);
            sort_canonical(&mut mined);
            sort_canonical(&mut oracle);
            assert_eq!(mined.len(), oracle.len(), "min_support = {min_support}");
            for (m, o) in mined.iter().zip(oracle.iter()) {
                assert_eq!(m.items, o.items, "min_support = {min_support}");
                assert!((m.support - o.support).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn max_size_limits_combination_length() {
        let transactions = classic_transactions();
        let tree = FpTree::from_transactions(&transactions, 1.0);
        let result = tree.mine(1.0, 2);
        assert!(result.iter().all(|r| r.len() <= 2));
        assert!(result.iter().any(|r| r.len() == 2));
        let singles_only = tree.mine(1.0, 1);
        assert!(singles_only.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn duplicate_items_in_transaction_count_once() {
        let tree = FpTree::from_transactions(&[vec![1, 1, 2], vec![1, 2, 2]], 1.0);
        let result = tree.mine(2.0, usize::MAX);
        let pair = result.iter().find(|r| r.items == vec![1, 2]).unwrap();
        assert!((pair.support - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_transactions_accumulate() {
        let weighted = vec![(vec![1, 2], 0.5), (vec![1, 2], 1.5), (vec![1], 2.0)];
        let tree = FpTree::from_weighted_transactions(&weighted, 0.0);
        let result = tree.mine(1.9, usize::MAX);
        let one = result.iter().find(|r| r.items == vec![1]).unwrap();
        let pair = result.iter().find(|r| r.items == vec![1, 2]).unwrap();
        assert!((one.support - 4.0).abs() < 1e-12);
        assert!((pair.support - 2.0).abs() < 1e-12);
        assert!((tree.total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_support_prunes_rare_items_from_tree() {
        let mut transactions = vec![vec![1, 2]; 100];
        transactions.push(vec![1, 99]); // item 99 appears once
        let tree = FpTree::from_transactions(&transactions, 10.0);
        let result = tree.mine(10.0, usize::MAX);
        assert!(result.iter().all(|r| !r.items.contains(&99)));
    }

    #[test]
    fn to_weighted_transactions_round_trips_counts() {
        let transactions = classic_transactions();
        let tree = FpTree::from_transactions(&transactions, 1.0);
        let exported = tree.to_weighted_transactions();
        let total: f64 = exported.iter().map(|(_, w)| w).sum();
        assert!((total - transactions.len() as f64).abs() < 1e-9);
        // Re-building from the export and mining gives identical results.
        let rebuilt = FpTree::from_weighted_transactions(&exported, 1.0);
        let mut a = tree.mine(2.0, usize::MAX);
        let mut b = rebuilt.mine(2.0, usize::MAX);
        sort_canonical(&mut a);
        sort_canonical(&mut b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.items, y.items);
            assert!((x.support - y.support).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_prefixes_are_compressed() {
        // 1000 identical transactions must create only 3 nodes.
        let transactions = vec![vec![1, 2, 3]; 1000];
        let tree = FpTree::from_transactions(&transactions, 1.0);
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn merged_halves_mine_identically_to_single_tree() {
        let transactions = classic_transactions();
        let (first, second) = transactions.split_at(4);
        // Partition trees are built unfiltered (min_support 0) so no item is
        // dropped by a half-local threshold before the merge.
        let mut merged = FpTree::from_transactions(first, 0.0);
        merged.merge(FpTree::from_transactions(second, 0.0));
        let whole = FpTree::from_transactions(&transactions, 0.0);
        assert!((merged.total_weight() - whole.total_weight()).abs() < 1e-12);
        for min_support in [1.0, 2.0, 3.0] {
            let mut a = merged.mine(min_support, usize::MAX);
            let mut b = whole.mine(min_support, usize::MAX);
            sort_canonical(&mut a);
            sort_canonical(&mut b);
            assert_eq!(a.len(), b.len(), "min_support = {min_support}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.items, y.items);
                assert!((x.support - y.support).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn merge_into_empty_tree_is_identity() {
        let transactions = classic_transactions();
        let mut merged = FpTree::new();
        merged.merge(FpTree::from_transactions(&transactions, 0.0));
        let mut a = merged.mine(2.0, usize::MAX);
        let mut b = FpTree::from_transactions(&transactions, 0.0).mine(2.0, usize::MAX);
        sort_canonical(&mut a);
        sort_canonical(&mut b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn merge_preserves_filtered_transaction_weight() {
        // A tree built with a support floor drops rare items from its paths,
        // but the merged total weight must still account for every inserted
        // transaction.
        let left = FpTree::from_transactions(&[vec![1], vec![2]], 2.0); // both filtered
        let mut merged = FpTree::from_transactions(&[vec![3, 4]], 1.0);
        merged.merge(left);
        assert!((merged.total_weight() - 3.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn merged_partitions_match_single_stream_mining(
            transactions in prop::collection::vec(
                prop::collection::vec(0u32..8, 0..6), 1..30),
            split in 0usize..30,
            min_support in 1usize..4,
        ) {
            let cut = split.min(transactions.len());
            let (first, second) = transactions.split_at(cut);
            let mut merged = FpTree::from_transactions(first, 0.0);
            merged.merge(FpTree::from_transactions(second, 0.0));
            let mut mined = merged.mine(min_support as f64, usize::MAX);
            let mut oracle =
                brute_force_frequent_itemsets(&transactions, min_support as f64);
            sort_canonical(&mut mined);
            sort_canonical(&mut oracle);
            prop_assert_eq!(mined.len(), oracle.len());
            for (m, o) in mined.iter().zip(oracle.iter()) {
                prop_assert_eq!(&m.items, &o.items);
                prop_assert!((m.support - o.support).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trivial_bound_is_exactly_mine() {
        let tree = FpTree::from_transactions(&classic_transactions(), 1.0);
        let a = tree.mine(1.0, usize::MAX);
        let b = tree.mine_with_bound(1.0, usize::MAX, |_| true);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.items, y.items);
            assert!((x.support - y.support).abs() < 1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        // A support-monotone bound prunes exactly the itemsets whose final
        // support fails it: bounded mining equals unbounded mining filtered
        // after the fact.
        #[test]
        fn bounded_mining_equals_filtered_unbounded(
            transactions in prop::collection::vec(
                prop::collection::vec(0u32..8, 0..6), 0..30),
            min_support in 1usize..4,
            threshold in 1usize..6,
        ) {
            let tree = FpTree::from_transactions(&transactions, min_support as f64);
            let cut = threshold as f64;
            let mut bounded =
                tree.mine_with_bound(min_support as f64, usize::MAX, |t| t >= cut);
            let mut filtered: Vec<FrequentItemset> = tree
                .mine(min_support as f64, usize::MAX)
                .into_iter()
                .filter(|r| r.support >= cut)
                .collect();
            sort_canonical(&mut bounded);
            sort_canonical(&mut filtered);
            prop_assert_eq!(bounded.len(), filtered.len());
            for (m, o) in bounded.iter().zip(filtered.iter()) {
                prop_assert_eq!(&m.items, &o.items);
                prop_assert!((m.support - o.support).abs() < 1e-9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn fpgrowth_matches_brute_force(
            transactions in prop::collection::vec(
                prop::collection::vec(0u32..8, 0..6), 0..30),
            min_support in 1usize..5,
        ) {
            let tree = FpTree::from_transactions(&transactions, min_support as f64);
            let mut mined = tree.mine(min_support as f64, usize::MAX);
            let mut oracle = brute_force_frequent_itemsets(&transactions, min_support as f64);
            sort_canonical(&mut mined);
            sort_canonical(&mut oracle);
            prop_assert_eq!(mined.len(), oracle.len());
            for (m, o) in mined.iter().zip(oracle.iter()) {
                prop_assert_eq!(&m.items, &o.items);
                prop_assert!((m.support - o.support).abs() < 1e-9);
            }
        }
    }
}
