//! The M-CPS-tree: MacroBase's streaming itemset structure (Appendix B).
//!
//! In an exponentially damped model, the plain CPS-tree stores at least one
//! node for every item ever observed — infeasible for streams whose attribute
//! cardinality runs into the hundreds of thousands. The M-CPS-tree only
//! stores items that are currently *frequent* according to the AMC sketch:
//!
//! * On insertion, a point's attributes are first recorded in the AMC; only
//!   the attributes in the current frequent set are inserted into the tree.
//! * At each window boundary, the AMC and tree counts are decayed, the
//!   frequent set is recomputed from the AMC, items that fell out of it are
//!   removed from the tree, and branches are re-sorted into
//!   frequency-descending order.
//! * Explanations are produced by running FPGrowth over the tree.

use crate::cps::StreamingPrefixTree;
use crate::{FrequentItemset, Item};
use mb_sketch::amc::{AmcSketch, MaintenancePolicy};
use mb_sketch::{HeavyHitterSketch, Mergeable};
use std::collections::HashSet;

/// Configuration for the M-CPS-tree.
#[derive(Debug, Clone)]
pub struct McpsConfig {
    /// Minimum support as a fraction of the (decayed) stream weight for an
    /// item to be admitted into the tree.
    pub min_support_fraction: f64,
    /// Per-window decay rate (`counts *= 1 - decay_rate` at each boundary).
    pub decay_rate: f64,
    /// Stable size of the backing AMC sketch.
    pub amc_stable_size: usize,
    /// AMC maintenance period (observations between prunes).
    pub amc_maintenance_period: u64,
}

impl Default for McpsConfig {
    fn default() -> Self {
        McpsConfig {
            // Paper default: minimum outlier support of 0.1%.
            min_support_fraction: 0.001,
            decay_rate: 0.01,
            amc_stable_size: 10_000,
            amc_maintenance_period: 10_000,
        }
    }
}

/// The M-CPS-tree streaming frequent-itemset summarizer.
#[derive(Debug, Clone)]
pub struct McpsTree {
    config: McpsConfig,
    tree: StreamingPrefixTree,
    amc: AmcSketch<Item>,
    frequent: HashSet<Item>,
    /// Whether at least one window boundary has elapsed; before that the
    /// frequent set is still being bootstrapped and every item is admitted
    /// (it will be pruned at the first boundary if insufficiently supported).
    bootstrapping: bool,
}

impl McpsTree {
    /// Create an M-CPS-tree from a configuration.
    pub fn new(config: McpsConfig) -> Self {
        assert!(
            config.min_support_fraction > 0.0 && config.min_support_fraction < 1.0,
            "support fraction must be in (0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&config.decay_rate),
            "decay rate must be in [0, 1)"
        );
        let amc = AmcSketch::with_policy(
            config.amc_stable_size,
            MaintenancePolicy::EveryNObservations(config.amc_maintenance_period),
        );
        McpsTree {
            config,
            tree: StreamingPrefixTree::new(),
            amc,
            frequent: HashSet::new(),
            bootstrapping: true,
        }
    }

    /// Create an M-CPS-tree with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(McpsConfig::default())
    }

    /// Observe one point's attribute items.
    pub fn insert(&mut self, items: &[Item]) {
        for &item in items {
            self.amc.observe(item);
        }
        let admitted: Vec<Item> = if self.bootstrapping {
            items.to_vec()
        } else {
            items
                .iter()
                .copied()
                .filter(|item| self.frequent.contains(item))
                .collect()
        };
        if !admitted.is_empty() {
            self.tree.insert(&admitted, 1.0);
        }
    }

    /// Close the current window: decay, recompute the frequent item set from
    /// the AMC, prune items that fell below support, and re-sort the tree.
    pub fn on_window_boundary(&mut self) {
        let keep_factor = 1.0 - self.config.decay_rate;
        self.amc.decay(keep_factor);
        self.tree.decay(keep_factor);

        let threshold = self.config.min_support_fraction * self.amc.total_weight();
        self.frequent = self
            .amc
            .items_above(threshold)
            .into_iter()
            .map(|(item, _)| item)
            .collect();
        self.tree.retain_items(&self.frequent);
        self.bootstrapping = false;
    }

    /// Mine itemsets whose decayed support fraction is at least the
    /// configured minimum, bounded to combinations of `max_size` items.
    pub fn mine(&self, max_size: usize) -> Vec<FrequentItemset> {
        let min_count = self.config.min_support_fraction * self.tree.total_weight();
        self.tree.mine(min_count, max_size)
    }

    /// Mine with an explicit absolute support count.
    pub fn mine_with_support(&self, min_support: f64, max_size: usize) -> Vec<FrequentItemset> {
        self.tree.mine(min_support, max_size)
    }

    /// The current frequent item set (empty until the first window boundary).
    pub fn frequent_items(&self) -> &HashSet<Item> {
        &self.frequent
    }

    /// Number of distinct items currently stored in the tree.
    pub fn distinct_items(&self) -> usize {
        self.tree.distinct_items()
    }

    /// Number of tree nodes (size comparison against the CPS-tree).
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Decayed estimate of a single item's count from the AMC.
    pub fn item_estimate(&self, item: Item) -> f64 {
        self.amc.estimate(&item)
    }

    /// Total decayed weight observed by the AMC.
    pub fn total_weight(&self) -> f64 {
        self.amc.total_weight()
    }
}

impl Mergeable for McpsTree {
    /// Merge another M-CPS-tree built over a disjoint sub-stream with the
    /// same configuration: the backing AMC sketches merge (counts add within
    /// combined error bounds), the prefix trees merge (union of prefix paths
    /// with count addition), and the frequent sets union. A partition still
    /// bootstrapping keeps the merged tree bootstrapping only if *both*
    /// sides are — otherwise the stricter post-bootstrap admission filter
    /// applies from the next insertion on.
    fn merge(&mut self, other: Self) {
        assert!(
            (self.config.min_support_fraction - other.config.min_support_fraction).abs() < 1e-12
                && (self.config.decay_rate - other.config.decay_rate).abs() < 1e-12,
            "cannot merge M-CPS-trees with different support/decay configurations"
        );
        self.amc.merge(other.amc);
        self.tree.merge(other.tree);
        self.frequent.extend(other.frequent);
        self.bootstrapping = self.bootstrapping && other.bootstrapping;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cps::CpsTree;
    use mb_stats::rand_ext::{SplitMix64, Zipf};

    fn config(support: f64, decay: f64) -> McpsConfig {
        McpsConfig {
            min_support_fraction: support,
            decay_rate: decay,
            amc_stable_size: 1000,
            amc_maintenance_period: 1000,
        }
    }

    #[test]
    fn bootstrap_window_admits_everything_then_prunes() {
        let mut mcps = McpsTree::new(config(0.1, 0.0));
        for _ in 0..99 {
            mcps.insert(&[1, 2]);
        }
        mcps.insert(&[3, 4]); // rare items
        assert_eq!(mcps.distinct_items(), 4);
        mcps.on_window_boundary();
        // 3 and 4 have 1% support < 10% threshold -> pruned from the tree.
        assert_eq!(mcps.distinct_items(), 2);
        assert!(mcps.frequent_items().contains(&1));
        assert!(!mcps.frequent_items().contains(&3));
    }

    #[test]
    fn post_bootstrap_insertions_filter_to_frequent_items() {
        let mut mcps = McpsTree::new(config(0.05, 0.0));
        for _ in 0..100 {
            mcps.insert(&[1, 2]);
        }
        mcps.on_window_boundary();
        // Item 7 is new: it is counted by the AMC but not admitted into the
        // tree until it becomes frequent at a boundary.
        for _ in 0..3 {
            mcps.insert(&[1, 7]);
        }
        assert_eq!(mcps.distinct_items(), 2);
        assert!(mcps.item_estimate(7) > 0.0);
        // After enough occurrences and a boundary, 7 is admitted.
        for _ in 0..50 {
            mcps.insert(&[1, 7]);
        }
        mcps.on_window_boundary();
        assert!(mcps.frequent_items().contains(&7));
        for _ in 0..10 {
            mcps.insert(&[1, 7]);
        }
        let mined = mcps.mine_with_support(5.0, 2);
        assert!(mined.iter().any(|r| r.items == vec![1, 7]));
    }

    #[test]
    fn mining_finds_frequent_combination() {
        let mut mcps = McpsTree::new(config(0.01, 0.0));
        for _ in 0..500 {
            mcps.insert(&[10, 20]);
        }
        for i in 0..100 {
            mcps.insert(&[30, 40 + (i % 5)]);
        }
        mcps.on_window_boundary();
        for _ in 0..500 {
            mcps.insert(&[10, 20]);
        }
        let mined = mcps.mine(3);
        let pair = mined.iter().find(|r| r.items == vec![10, 20]);
        assert!(pair.is_some(), "mined = {mined:?}");
        assert!(pair.unwrap().support >= 500.0);
    }

    #[test]
    fn decay_ages_out_stale_patterns() {
        let mut mcps = McpsTree::new(config(0.05, 0.5));
        for _ in 0..1000 {
            mcps.insert(&[1, 2]);
        }
        // Several boundaries with no new occurrences: support halves each time.
        for _ in 0..6 {
            mcps.on_window_boundary();
        }
        for _ in 0..200 {
            mcps.insert(&[3, 4]);
        }
        mcps.on_window_boundary();
        // Items 3 and 4 are now in the frequent set; subsequent insertions
        // build up their pattern in the tree while the old pattern keeps
        // decaying toward zero.
        for _ in 0..200 {
            mcps.insert(&[3, 4]);
        }
        let mined = mcps.mine_with_support(50.0, 2);
        assert!(mined.iter().any(|r| r.items == vec![3, 4]));
        assert!(!mined.iter().any(|r| r.items == vec![1, 2]));
    }

    #[test]
    fn stays_much_smaller_than_cps_on_high_cardinality_stream() {
        // Appendix D: the CPS-tree stores every item ever observed, the
        // M-CPS-tree only currently frequent ones.
        let mut rng = SplitMix64::new(3);
        let zipf = Zipf::new(20_000, 1.05);
        let mut mcps = McpsTree::new(config(0.001, 0.01));
        let mut cps = CpsTree::new(0.01);
        for i in 0..50_000 {
            let a = zipf.sample(&mut rng) as Item;
            let b = 20_000 + zipf.sample(&mut rng) as Item;
            mcps.insert(&[a, b]);
            cps.insert(&[a, b]);
            if i % 10_000 == 9_999 {
                mcps.on_window_boundary();
                cps.on_window_boundary();
            }
        }
        assert!(
            mcps.node_count() * 2 < cps.tree().node_count(),
            "M-CPS nodes = {}, CPS nodes = {}",
            mcps.node_count(),
            cps.tree().node_count()
        );
        assert!(mcps.distinct_items() < cps.tree().distinct_items());
    }

    #[test]
    #[should_panic(expected = "support fraction must be in (0, 1)")]
    fn rejects_bad_support() {
        let _ = McpsTree::new(config(0.0, 0.1));
    }

    #[test]
    fn merged_partition_trees_mine_the_combined_stream() {
        // Two partitions each see half the occurrences of the planted pair;
        // neither alone has the support the combined stream has.
        let mut whole = McpsTree::new(config(0.01, 0.0));
        let mut left = McpsTree::new(config(0.01, 0.0));
        let mut right = McpsTree::new(config(0.01, 0.0));
        for i in 0..1_000 {
            // The pair lands on both even and odd indices, so each partition
            // sees exactly half of its 500 occurrences.
            let items: Vec<Item> = if i % 4 < 2 {
                vec![1, 2]
            } else {
                vec![10 + (i % 7) as Item, 20 + (i % 5) as Item]
            };
            whole.insert(&items);
            if i % 2 == 0 {
                left.insert(&items);
            } else {
                right.insert(&items);
            }
        }
        left.merge(right);
        assert!((left.total_weight() - whole.total_weight()).abs() < 1e-9);
        assert!((left.item_estimate(1) - whole.item_estimate(1)).abs() < 1e-9);
        let merged_mined = left.mine_with_support(400.0, 2);
        let whole_mined = whole.mine_with_support(400.0, 2);
        let pair_support = |mined: &[FrequentItemset]| {
            mined
                .iter()
                .find(|m| m.items == vec![1, 2])
                .map(|m| m.support)
        };
        assert_eq!(pair_support(&merged_mined), Some(500.0));
        assert_eq!(pair_support(&merged_mined), pair_support(&whole_mined));
    }

    #[test]
    fn merge_unions_frequent_sets_and_exits_bootstrap() {
        let mut left = McpsTree::new(config(0.05, 0.0));
        let mut right = McpsTree::new(config(0.05, 0.0));
        for _ in 0..100 {
            left.insert(&[1]);
            right.insert(&[2]);
        }
        left.on_window_boundary();
        right.on_window_boundary();
        left.merge(right);
        assert!(left.frequent_items().contains(&1));
        assert!(left.frequent_items().contains(&2));
        // Post-bootstrap admission filtering applies to the merged tree.
        for _ in 0..3 {
            left.insert(&[1, 99]);
        }
        assert!(left.item_estimate(99) > 0.0);
        let mined = left.mine_with_support(1.0, 2);
        assert!(!mined.iter().any(|m| m.items.contains(&99)));
    }

    #[test]
    #[should_panic(expected = "different support/decay configurations")]
    fn merge_rejects_mismatched_configs() {
        let mut a = McpsTree::new(config(0.01, 0.0));
        let b = McpsTree::new(config(0.02, 0.0));
        a.merge(b);
    }
}
