//! Dimensionality truncation.
//!
//! The electricity pipeline (Section 6.4) "truncates the transformed data to
//! a fixed number of dimensions" after the STFT; Figure 10 shows why — MCD
//! training cost grows with metric dimensionality, so keeping only the first
//! `k` coefficients is the simplest effective dimensionality reduction.

use crate::{Result, TransformError};

/// Keep only the first `k` metrics of each row, padding with zeros when a row
/// is shorter than `k` (so output dimensionality is always exactly `k`).
pub fn truncate_dimensions(rows: &[Vec<f64>], k: usize) -> Result<Vec<Vec<f64>>> {
    if k == 0 {
        return Err(TransformError::InvalidParameter(
            "target dimensionality must be positive".to_string(),
        ));
    }
    Ok(rows
        .iter()
        .map(|row| {
            let mut out: Vec<f64> = row.iter().copied().take(k).collect();
            out.resize(k, 0.0);
            out
        })
        .collect())
}

/// Keep the `k` columns with the highest variance across the batch (a cheap
/// unsupervised feature selection used when metrics are heterogeneous, e.g.
/// the 200-counter DBSherlock workload of Table 4).
pub fn keep_highest_variance(rows: &[Vec<f64>], k: usize) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
    let first = rows.first().ok_or(TransformError::EmptyInput)?;
    let dim = first.len();
    if k == 0 || k > dim {
        return Err(TransformError::InvalidParameter(format!(
            "k must be in 1..={dim}, got {k}"
        )));
    }
    let n = rows.len() as f64;
    let mut means = vec![0.0; dim];
    for row in rows {
        if row.len() != dim {
            return Err(TransformError::DimensionMismatch {
                expected: dim,
                actual: row.len(),
            });
        }
        for (m, &x) in means.iter_mut().zip(row.iter()) {
            *m += x;
        }
    }
    means.iter_mut().for_each(|m| *m /= n);
    let mut variances = vec![0.0; dim];
    for row in rows {
        for ((v, &x), m) in variances.iter_mut().zip(row.iter()).zip(&means) {
            *v += (x - m) * (x - m);
        }
    }
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&a, &b| variances[b].total_cmp(&variances[a]));
    let mut selected: Vec<usize> = order.into_iter().take(k).collect();
    selected.sort_unstable();
    let projected = rows
        .iter()
        .map(|row| selected.iter().map(|&c| row[c]).collect())
        .collect();
    Ok((projected, selected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_keeps_prefix_and_pads() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0]];
        let out = truncate_dimensions(&rows, 2).unwrap();
        assert_eq!(out[0], vec![1.0, 2.0]);
        assert_eq!(out[1], vec![4.0, 0.0]);
    }

    #[test]
    fn truncate_rejects_zero() {
        assert!(truncate_dimensions(&[vec![1.0]], 0).is_err());
    }

    #[test]
    fn highest_variance_selects_informative_columns() {
        // Column 1 is constant, column 0 and 2 vary; keep 2.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 5.0, (i * i) as f64])
            .collect();
        let (projected, selected) = keep_highest_variance(&rows, 2).unwrap();
        assert_eq!(selected, vec![0, 2]);
        assert_eq!(projected[10], vec![10.0, 100.0]);
    }

    #[test]
    fn highest_variance_rejects_bad_k() {
        let rows = vec![vec![1.0, 2.0]];
        assert!(keep_highest_variance(&rows, 0).is_err());
        assert!(keep_highest_variance(&rows, 3).is_err());
        assert!(keep_highest_variance(&[], 1).is_err());
    }
}
