//! Discrete Fourier transform and Short-Time Fourier Transform features.
//!
//! The electricity-metering case study (Section 6.4) windows each device's
//! power readings into hour-long intervals, applies a discrete-time STFT to
//! each window, and keeps the lowest Fourier coefficients as metrics so that
//! an unmodified MDP can find devices/time-periods with unusual frequency
//! content. The transform here is a straightforward `O(n·k)` DFT — windows
//! are short (tens to hundreds of samples) and only the first `k`
//! coefficients are kept, so an FFT would add complexity without a measurable
//! win at these sizes.

use crate::{Result, TransformError};

/// Magnitudes of the first `num_coefficients` DFT coefficients of `signal`
/// (coefficient 0 is the DC component).
pub fn dft_magnitudes(signal: &[f64], num_coefficients: usize) -> Result<Vec<f64>> {
    if signal.is_empty() {
        return Err(TransformError::EmptyInput);
    }
    if num_coefficients == 0 {
        return Err(TransformError::InvalidParameter(
            "must request at least one coefficient".to_string(),
        ));
    }
    let n = signal.len();
    let k_max = num_coefficients.min(n);
    let mut out = Vec::with_capacity(num_coefficients);
    for k in 0..k_max {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in signal.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            re += x * angle.cos();
            im += x * angle.sin();
        }
        out.push((re * re + im * im).sqrt());
    }
    // Pad with zeros when the window is shorter than the requested number of
    // coefficients so downstream metric vectors keep a fixed dimensionality.
    out.resize(num_coefficients, 0.0);
    Ok(out)
}

/// Configuration for the Short-Time Fourier Transform feature extractor.
#[derive(Debug, Clone, Copy)]
pub struct StftConfig {
    /// Number of samples per window.
    pub window_size: usize,
    /// Hop between consecutive windows (<= window_size; equal means
    /// non-overlapping tumbling windows, as the case study uses).
    pub hop: usize,
    /// Number of (lowest) Fourier coefficient magnitudes to keep per window.
    pub num_coefficients: usize,
}

impl Default for StftConfig {
    fn default() -> Self {
        StftConfig {
            window_size: 60,
            hop: 60,
            num_coefficients: 20,
        }
    }
}

/// One STFT output window: the index of its first sample plus the kept
/// coefficient magnitudes (a ready-made metric vector).
#[derive(Debug, Clone, PartialEq)]
pub struct StftWindow {
    /// Index of the first sample of this window within the input signal.
    pub start: usize,
    /// Magnitudes of the first `num_coefficients` DFT coefficients.
    pub coefficients: Vec<f64>,
}

/// Apply a Short-Time Fourier Transform: slide a window of `window_size`
/// samples with hop `hop`, computing truncated DFT magnitudes per window.
/// Trailing samples that do not fill a whole window are dropped.
pub fn stft(signal: &[f64], config: &StftConfig) -> Result<Vec<StftWindow>> {
    if config.window_size == 0 || config.hop == 0 {
        return Err(TransformError::InvalidParameter(
            "window size and hop must be positive".to_string(),
        ));
    }
    if config.hop > config.window_size {
        return Err(TransformError::InvalidParameter(
            "hop must not exceed window size".to_string(),
        ));
    }
    if signal.len() < config.window_size {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut start = 0;
    while start + config.window_size <= signal.len() {
        let window = &signal[start..start + config.window_size];
        out.push(StftWindow {
            start,
            coefficients: dft_magnitudes(window, config.num_coefficients)?,
        });
        start += config.hop;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_component_of_constant_signal() {
        let signal = vec![3.0; 16];
        let mags = dft_magnitudes(&signal, 4).unwrap();
        assert!((mags[0] - 48.0).abs() < 1e-9); // n * value
        for &m in &mags[1..] {
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_sinusoid_concentrates_in_one_bin() {
        // A sinusoid at bin 3 of a 32-sample window.
        let n = 32;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64).sin())
            .collect();
        let mags = dft_magnitudes(&signal, 8).unwrap();
        let max_bin = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_bin, 3);
        assert!(mags[3] > 10.0 * mags[1].max(1e-12));
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert_eq!(dft_magnitudes(&[], 4), Err(TransformError::EmptyInput));
        assert!(matches!(
            dft_magnitudes(&[1.0], 0),
            Err(TransformError::InvalidParameter(_))
        ));
    }

    #[test]
    fn short_signal_pads_coefficients() {
        let mags = dft_magnitudes(&[1.0, 2.0], 5).unwrap();
        assert_eq!(mags.len(), 5);
        assert_eq!(mags[3], 0.0);
        assert_eq!(mags[4], 0.0);
    }

    #[test]
    fn stft_produces_expected_window_count() {
        let signal: Vec<f64> = (0..600).map(|i| i as f64).collect();
        let config = StftConfig {
            window_size: 60,
            hop: 60,
            num_coefficients: 10,
        };
        let windows = stft(&signal, &config).unwrap();
        assert_eq!(windows.len(), 10);
        assert_eq!(windows[0].start, 0);
        assert_eq!(windows[9].start, 540);
        assert!(windows.iter().all(|w| w.coefficients.len() == 10));
    }

    #[test]
    fn stft_overlapping_hops() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let config = StftConfig {
            window_size: 50,
            hop: 25,
            num_coefficients: 5,
        };
        let windows = stft(&signal, &config).unwrap();
        assert_eq!(windows.len(), 3); // starts 0, 25, 50
    }

    #[test]
    fn stft_detects_anomalous_window() {
        // 9 quiet windows + 1 window with a strong oscillation: the anomalous
        // window's non-DC energy must dominate.
        let mut signal = vec![1.0; 640];
        for t in 0..64 {
            signal[320 + t] = 1.0 + 10.0 * (2.0 * std::f64::consts::PI * 8.0 * t as f64 / 64.0).sin();
        }
        let config = StftConfig {
            window_size: 64,
            hop: 64,
            num_coefficients: 16,
        };
        let windows = stft(&signal, &config).unwrap();
        let energy: Vec<f64> = windows
            .iter()
            .map(|w| w.coefficients[1..].iter().map(|c| c * c).sum::<f64>())
            .collect();
        let anomalous = 320 / 64;
        for (i, &e) in energy.iter().enumerate() {
            if i != anomalous {
                assert!(energy[anomalous] > 100.0 * e.max(1e-9));
            }
        }
    }

    #[test]
    fn stft_rejects_bad_config() {
        let signal = vec![0.0; 10];
        assert!(stft(
            &signal,
            &StftConfig {
                window_size: 0,
                hop: 1,
                num_coefficients: 1
            }
        )
        .is_err());
        assert!(stft(
            &signal,
            &StftConfig {
                window_size: 4,
                hop: 8,
                num_coefficients: 1
            }
        )
        .is_err());
    }

    #[test]
    fn stft_short_signal_returns_empty() {
        let windows = stft(&[1.0, 2.0], &StftConfig::default()).unwrap();
        assert!(windows.is_empty());
    }
}
