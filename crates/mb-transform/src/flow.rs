//! Optical-flow-magnitude features over video frames.
//!
//! The video surveillance case study (Section 6.4) computes "the average
//! optical flow velocity between video frames" with OpenCV and feeds the
//! scalar into an unmodified MDP pipeline. OpenCV is out of scope for a pure
//! Rust workspace, so this module provides a block-matching flow estimator
//! over grayscale frames: for each block of the previous frame it searches a
//! small neighbourhood in the next frame for the best-matching displacement
//! and reports the mean displacement magnitude. On the synthetic
//! moving-blob frames used by the example and benches this exercises the same
//! pipeline path (frame pair → scalar motion metric → MDP) as the original.

use crate::{Result, TransformError};

/// A grayscale frame stored row-major with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Frame {
    /// Create a frame from row-major pixel data.
    pub fn new(width: usize, height: usize, pixels: Vec<f64>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(TransformError::EmptyInput);
        }
        if pixels.len() != width * height {
            return Err(TransformError::DimensionMismatch {
                expected: width * height,
                actual: pixels.len(),
            });
        }
        Ok(Frame {
            width,
            height,
            pixels,
        })
    }

    /// Create an all-black frame.
    pub fn black(width: usize, height: usize) -> Result<Self> {
        Frame::new(width, height, vec![0.0; width * height])
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel intensity at `(x, y)`; out-of-bounds reads return 0.
    pub fn get(&self, x: isize, y: isize) -> f64 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0.0
        } else {
            self.pixels[y as usize * self.width + x as usize]
        }
    }

    /// Set pixel intensity at `(x, y)` (ignored when out of bounds).
    pub fn set(&mut self, x: usize, y: usize, value: f64) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = value;
        }
    }

    /// Draw a filled square blob of the given intensity (used by the
    /// synthetic video generator).
    pub fn draw_square(&mut self, x0: usize, y0: usize, size: usize, intensity: f64) {
        for y in y0..(y0 + size).min(self.height) {
            for x in x0..(x0 + size).min(self.width) {
                self.set(x, y, intensity);
            }
        }
    }
}

/// Configuration for the block-matching flow estimator.
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Side length of the square blocks compared between frames.
    pub block_size: usize,
    /// Maximum displacement searched in each direction.
    pub search_radius: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            block_size: 8,
            search_radius: 4,
        }
    }
}

/// Mean optical-flow magnitude between two frames via block matching.
///
/// Static blocks (those whose content does not change) contribute zero, so an
/// empty scene yields ~0 while motion yields a magnitude proportional to how
/// far the moving content travelled.
pub fn mean_flow_magnitude(previous: &Frame, current: &Frame, config: &FlowConfig) -> Result<f64> {
    if previous.width != current.width || previous.height != current.height {
        return Err(TransformError::DimensionMismatch {
            expected: previous.width * previous.height,
            actual: current.width * current.height,
        });
    }
    if config.block_size == 0 {
        return Err(TransformError::InvalidParameter(
            "block size must be positive".to_string(),
        ));
    }
    let bs = config.block_size;
    let radius = config.search_radius as isize;
    let mut total_magnitude = 0.0;
    let mut blocks = 0usize;

    let mut by = 0usize;
    while by + bs <= previous.height {
        let mut bx = 0usize;
        while bx + bs <= previous.width {
            // Skip blocks with no content in either frame: nothing to track.
            let has_content = (0..bs).any(|dy| {
                (0..bs).any(|dx| {
                    previous.get((bx + dx) as isize, (by + dy) as isize) > 0.05
                        || current.get((bx + dx) as isize, (by + dy) as isize) > 0.05
                })
            });
            if has_content {
                let mut best_cost = f64::INFINITY;
                let mut best_disp = (0isize, 0isize);
                for dy in -radius..=radius {
                    for dx in -radius..=radius {
                        let mut cost = 0.0;
                        for py in 0..bs {
                            for px in 0..bs {
                                let a = previous.get((bx + px) as isize, (by + py) as isize);
                                let b = current.get(
                                    (bx + px) as isize + dx,
                                    (by + py) as isize + dy,
                                );
                                cost += (a - b).abs();
                            }
                        }
                        // Prefer smaller displacements on ties so a static
                        // scene reports zero motion.
                        let tie_break = (dx * dx + dy * dy) as f64 * 1e-9;
                        if cost + tie_break < best_cost {
                            best_cost = cost + tie_break;
                            best_disp = (dx, dy);
                        }
                    }
                }
                let magnitude =
                    ((best_disp.0 * best_disp.0 + best_disp.1 * best_disp.1) as f64).sqrt();
                total_magnitude += magnitude;
                blocks += 1;
            }
            bx += bs;
        }
        by += bs;
    }
    if blocks == 0 {
        Ok(0.0)
    } else {
        Ok(total_magnitude / blocks as f64)
    }
}

/// Convenience: flow magnitudes for a whole sequence of frames (length
/// `frames.len() - 1`, empty for fewer than two frames).
pub fn flow_series(frames: &[Frame], config: &FlowConfig) -> Result<Vec<f64>> {
    if frames.len() < 2 {
        return Ok(Vec::new());
    }
    frames
        .windows(2)
        .map(|pair| mean_flow_magnitude(&pair[0], &pair[1], config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_square(x: usize, y: usize) -> Frame {
        let mut f = Frame::black(64, 64).unwrap();
        f.draw_square(x, y, 8, 1.0);
        f
    }

    #[test]
    fn frame_construction_and_access() {
        let f = Frame::new(2, 2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(f.get(0, 0), 0.1);
        assert_eq!(f.get(1, 1), 0.4);
        assert_eq!(f.get(-1, 0), 0.0);
        assert_eq!(f.get(5, 5), 0.0);
        assert!(Frame::new(2, 2, vec![0.0; 3]).is_err());
        assert!(Frame::new(0, 2, vec![]).is_err());
    }

    #[test]
    fn static_scene_has_zero_flow() {
        let a = frame_with_square(10, 10);
        let b = frame_with_square(10, 10);
        let flow = mean_flow_magnitude(&a, &b, &FlowConfig::default()).unwrap();
        assert!(flow.abs() < 1e-9);
    }

    #[test]
    fn empty_scene_has_zero_flow() {
        let a = Frame::black(32, 32).unwrap();
        let b = Frame::black(32, 32).unwrap();
        assert_eq!(
            mean_flow_magnitude(&a, &b, &FlowConfig::default()).unwrap(),
            0.0
        );
    }

    #[test]
    fn moving_blob_produces_flow_proportional_to_motion() {
        let a = frame_with_square(10, 10);
        let slow = frame_with_square(12, 10); // moved 2 px
        let fast = frame_with_square(14, 10); // moved 4 px
        let config = FlowConfig::default();
        let flow_slow = mean_flow_magnitude(&a, &slow, &config).unwrap();
        let flow_fast = mean_flow_magnitude(&a, &fast, &config).unwrap();
        assert!(flow_slow > 0.5);
        assert!(flow_fast > flow_slow);
    }

    #[test]
    fn mismatched_frames_rejected() {
        let a = Frame::black(16, 16).unwrap();
        let b = Frame::black(32, 32).unwrap();
        assert!(mean_flow_magnitude(&a, &b, &FlowConfig::default()).is_err());
    }

    #[test]
    fn flow_series_length() {
        let frames: Vec<Frame> = (0..5).map(|i| frame_with_square(10 + i * 2, 10)).collect();
        let series = flow_series(&frames, &FlowConfig::default()).unwrap();
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|&m| m > 0.0));
        assert!(flow_series(&frames[..1], &FlowConfig::default())
            .unwrap()
            .is_empty());
    }
}
