//! Tumbling windows over timestamped samples, grouped by a key.
//!
//! The electricity case study (Section 6.4) "partitions the stream by device
//! ID, windows the stream into hourly intervals, with attributes according to
//! hour of day, day of week, and date". This module provides that group-by +
//! tumbling-window aggregation: it buffers `(key, timestamp, value)` samples
//! and emits one aggregate series per (key, window) pair, tagged with the
//! time attributes MDP later explains over.

use std::collections::BTreeMap;

/// One emitted window: the grouping key, the window index, derived time
/// attributes, and the samples that fell into it (in arrival order).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedWindow {
    /// The grouping key (e.g. device ID).
    pub key: String,
    /// Index of the window (timestamp / window_length).
    pub window_index: u64,
    /// Hour-of-day attribute derived from the window start (0–23).
    pub hour_of_day: u32,
    /// Day-of-week attribute derived from the window start (0–6).
    pub day_of_week: u32,
    /// The samples collected in this window.
    pub values: Vec<f64>,
}

impl KeyedWindow {
    /// Mean of the window's samples (0 for an empty window).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// A group-by + tumbling-window operator over `(key, timestamp_seconds, value)`
/// samples.
#[derive(Debug, Clone)]
pub struct TumblingWindower {
    window_seconds: u64,
    /// Buffered samples per (key, window index).
    buffers: BTreeMap<(String, u64), Vec<f64>>,
}

impl TumblingWindower {
    /// Create a windower with the given window length in seconds (3600 for
    /// the paper's hourly windows).
    pub fn new(window_seconds: u64) -> Self {
        assert!(window_seconds > 0, "window length must be positive");
        TumblingWindower {
            window_seconds,
            buffers: BTreeMap::new(),
        }
    }

    /// Observe one sample.
    pub fn observe(&mut self, key: &str, timestamp_seconds: u64, value: f64) {
        let window_index = timestamp_seconds / self.window_seconds;
        self.buffers
            .entry((key.to_string(), window_index))
            .or_default()
            .push(value);
    }

    /// Number of (key, window) buffers currently held.
    pub fn pending_windows(&self) -> usize {
        self.buffers.len()
    }

    /// Drain every completed buffer into [`KeyedWindow`]s, ordered by key and
    /// window index. (In a live stream the caller drains windows older than a
    /// watermark; the batch pipelines here simply drain everything at once.)
    pub fn drain(&mut self) -> Vec<KeyedWindow> {
        let buffers = std::mem::take(&mut self.buffers);
        buffers
            .into_iter()
            .map(|((key, window_index), values)| {
                let window_start = window_index * self.window_seconds;
                let hour_of_day = ((window_start / 3600) % 24) as u32;
                let day_of_week = ((window_start / 86_400) % 7) as u32;
                KeyedWindow {
                    key,
                    window_index,
                    hour_of_day,
                    day_of_week,
                    values,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_fall_into_hourly_windows() {
        let mut w = TumblingWindower::new(3600);
        w.observe("fridge", 0, 100.0);
        w.observe("fridge", 1800, 110.0);
        w.observe("fridge", 3600, 200.0);
        w.observe("tv", 10, 50.0);
        let windows = w.drain();
        assert_eq!(windows.len(), 3);
        let fridge_first = windows
            .iter()
            .find(|win| win.key == "fridge" && win.window_index == 0)
            .unwrap();
        assert_eq!(fridge_first.values, vec![100.0, 110.0]);
        assert!((fridge_first.mean() - 105.0).abs() < 1e-9);
        let fridge_second = windows
            .iter()
            .find(|win| win.key == "fridge" && win.window_index == 1)
            .unwrap();
        assert_eq!(fridge_second.values, vec![200.0]);
    }

    #[test]
    fn time_attributes_are_derived_from_window_start() {
        let mut w = TumblingWindower::new(3600);
        // 1 day + 13 hours in.
        let ts = 86_400 + 13 * 3600 + 120;
        w.observe("a", ts, 1.0);
        let windows = w.drain();
        assert_eq!(windows[0].hour_of_day, 13);
        assert_eq!(windows[0].day_of_week, 1);
    }

    #[test]
    fn drain_empties_state() {
        let mut w = TumblingWindower::new(60);
        w.observe("a", 0, 1.0);
        assert_eq!(w.pending_windows(), 1);
        let drained = w.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(w.pending_windows(), 0);
        assert!(w.drain().is_empty());
    }

    #[test]
    fn windows_are_ordered_by_key_then_index() {
        let mut w = TumblingWindower::new(10);
        w.observe("b", 25, 1.0);
        w.observe("a", 5, 2.0);
        w.observe("a", 15, 3.0);
        let windows = w.drain();
        assert_eq!(windows[0].key, "a");
        assert_eq!(windows[0].window_index, 0);
        assert_eq!(windows[1].key, "a");
        assert_eq!(windows[1].window_index, 1);
        assert_eq!(windows[2].key, "b");
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_panics() {
        let _ = TumblingWindower::new(0);
    }

    #[test]
    fn empty_window_mean_is_zero() {
        let w = KeyedWindow {
            key: "x".to_string(),
            window_index: 0,
            hour_of_day: 0,
            day_of_week: 0,
            values: vec![],
        };
        assert_eq!(w.mean(), 0.0);
    }
}
