//! Metric normalization transforms (Section 3.2 lists normalization among the
//! statistical operations a pipeline may apply before classification).

use crate::{Result, TransformError};
use mb_stats::univariate::RunningStats;

/// Z-normalization fitted per metric column: `x -> (x - mean) / std`.
///
/// Columns with zero variance map to 0 (rather than NaN) so degenerate
/// metrics cannot poison downstream classifiers.
#[derive(Debug, Clone)]
pub struct ZNormalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ZNormalizer {
    /// Fit a normalizer to a batch of metric rows.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        let first = rows.first().ok_or(TransformError::EmptyInput)?;
        let dim = first.len();
        if dim == 0 {
            return Err(TransformError::EmptyInput);
        }
        let mut stats = vec![RunningStats::new(); dim];
        for row in rows {
            if row.len() != dim {
                return Err(TransformError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
            for (s, &x) in stats.iter_mut().zip(row.iter()) {
                s.observe(x);
            }
        }
        Ok(ZNormalizer {
            means: stats.iter().map(|s| s.mean()).collect(),
            stds: stats.iter().map(|s| s.std()).collect(),
        })
    }

    /// Number of metric columns the normalizer was fitted on.
    pub fn dimension(&self) -> usize {
        self.means.len()
    }

    /// Transform one metric row in place.
    pub fn transform_in_place(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.means.len() {
            return Err(TransformError::DimensionMismatch {
                expected: self.means.len(),
                actual: row.len(),
            });
        }
        for ((x, mean), std) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = if *std > f64::EPSILON {
                (*x - mean) / std
            } else {
                0.0
            };
        }
        Ok(())
    }

    /// Transform a whole batch, returning new rows.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        rows.iter()
            .map(|row| {
                let mut out = row.clone();
                self.transform_in_place(&mut out)?;
                Ok(out)
            })
            .collect()
    }
}

/// Min-max scaling of each metric column into `[0, 1]`.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit a scaler to a batch of metric rows.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        let first = rows.first().ok_or(TransformError::EmptyInput)?;
        let dim = first.len();
        if dim == 0 {
            return Err(TransformError::EmptyInput);
        }
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            if row.len() != dim {
                return Err(TransformError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
            for ((x, min), max) in row.iter().zip(mins.iter_mut()).zip(maxs.iter_mut()) {
                *min = min.min(*x);
                *max = max.max(*x);
            }
        }
        Ok(MinMaxScaler { mins, maxs })
    }

    /// Transform one row in place; constant columns map to 0.5.
    pub fn transform_in_place(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.mins.len() {
            return Err(TransformError::DimensionMismatch {
                expected: self.mins.len(),
                actual: row.len(),
            });
        }
        for ((x, min), max) in row.iter_mut().zip(&self.mins).zip(&self.maxs) {
            let range = max - min;
            *x = if range > f64::EPSILON {
                (*x - min) / range
            } else {
                0.5
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znormalizer_zero_mean_unit_variance() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let norm = ZNormalizer::fit(&rows).unwrap();
        let transformed = norm.transform_batch(&rows).unwrap();
        for col in 0..2 {
            let values: Vec<f64> = transformed.iter().map(|r| r[col]).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var =
                values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let norm = ZNormalizer::fit(&rows).unwrap();
        let mut row = vec![5.0, 2.0];
        norm.transform_in_place(&mut row).unwrap();
        assert_eq!(row[0], 0.0);
        assert!(row[1].abs() < 1e-9);
    }

    #[test]
    fn znormalizer_rejects_bad_input() {
        assert!(matches!(
            ZNormalizer::fit(&[]),
            Err(TransformError::EmptyInput)
        ));
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(ZNormalizer::fit(&rows).is_err());
        let norm = ZNormalizer::fit(&[vec![1.0, 2.0]]).unwrap();
        let mut short = vec![1.0];
        assert!(norm.transform_in_place(&mut short).is_err());
    }

    #[test]
    fn minmax_scales_into_unit_interval() {
        let rows = vec![vec![0.0, -10.0], vec![5.0, 0.0], vec![10.0, 10.0]];
        let scaler = MinMaxScaler::fit(&rows).unwrap();
        let mut mid = vec![5.0, 0.0];
        scaler.transform_in_place(&mut mid).unwrap();
        assert!((mid[0] - 0.5).abs() < 1e-9);
        assert!((mid[1] - 0.5).abs() < 1e-9);
        let mut low = vec![0.0, -10.0];
        scaler.transform_in_place(&mut low).unwrap();
        assert_eq!(low, vec![0.0, 0.0]);
    }

    #[test]
    fn minmax_constant_column_maps_to_half() {
        let rows = vec![vec![7.0], vec![7.0]];
        let scaler = MinMaxScaler::fit(&rows).unwrap();
        let mut row = vec![7.0];
        scaler.transform_in_place(&mut row).unwrap();
        assert_eq!(row[0], 0.5);
    }
}
