//! Autocorrelation features for periodic signals.
//!
//! The paper mentions autocorrelation as one of the time-series feature
//! transformations users add ahead of MDP (e.g. the Horsehead pressure
//! scenario, Section 3.2). The normalized autocorrelation at a set of lags
//! forms a compact metric vector in which periodic structure (or its loss)
//! stands out.

use crate::{Result, TransformError};

/// Normalized autocorrelation of `signal` at the given `lag`
/// (`r(lag) ∈ [-1, 1]`, with `r(0) = 1` for non-constant signals).
pub fn autocorrelation_at(signal: &[f64], lag: usize) -> Result<f64> {
    if signal.is_empty() {
        return Err(TransformError::EmptyInput);
    }
    if lag >= signal.len() {
        return Err(TransformError::InvalidParameter(format!(
            "lag {lag} exceeds signal length {}",
            signal.len()
        )));
    }
    let n = signal.len();
    let mean = signal.iter().sum::<f64>() / n as f64;
    let variance: f64 = signal.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
    if variance <= f64::EPSILON {
        // Constant signal: define r(0) = 1, r(lag > 0) = 0.
        return Ok(if lag == 0 { 1.0 } else { 0.0 });
    }
    let covariance: f64 = (0..n - lag)
        .map(|t| (signal[t] - mean) * (signal[t + lag] - mean))
        .sum();
    Ok(covariance / variance)
}

/// Autocorrelation feature vector: `r(lag)` for each lag in `lags`.
pub fn autocorrelation_features(signal: &[f64], lags: &[usize]) -> Result<Vec<f64>> {
    lags.iter()
        .map(|&lag| autocorrelation_at(signal, lag))
        .collect()
}

/// Estimate the dominant period as the lag (in `1..=max_lag`) with the
/// strongest autocorrelation *after* the autocorrelation first dips negative.
///
/// Small lags of any smooth signal correlate strongly with lag 0, so a naive
/// arg-max would almost always return 1; waiting for the first zero crossing
/// is the standard heuristic for picking out the true period. If the
/// autocorrelation never goes negative (e.g. a trend), the global arg-max over
/// `1..=max_lag` is returned instead.
pub fn dominant_period(signal: &[f64], max_lag: usize) -> Result<usize> {
    if signal.len() < 2 {
        return Err(TransformError::EmptyInput);
    }
    let max_lag = max_lag.min(signal.len() - 1);
    if max_lag == 0 {
        return Err(TransformError::InvalidParameter(
            "max_lag must be at least 1".to_string(),
        ));
    }
    let correlations: Vec<f64> = (1..=max_lag)
        .map(|lag| autocorrelation_at(signal, lag))
        .collect::<Result<Vec<f64>>>()?;
    let first_negative = correlations.iter().position(|&r| r < 0.0);
    let search_from = first_negative.unwrap_or(0);
    let (best_offset, _) = correlations[search_from..]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("correlations are non-empty");
    Ok(search_from + best_offset + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_signal(period: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin())
            .collect()
    }

    #[test]
    fn lag_zero_is_one() {
        let signal = periodic_signal(10, 100);
        assert!((autocorrelation_at(&signal, 0).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_signal_peaks_at_its_period() {
        let signal = periodic_signal(20, 400);
        let at_period = autocorrelation_at(&signal, 20).unwrap();
        let at_half_period = autocorrelation_at(&signal, 10).unwrap();
        assert!(at_period > 0.9);
        assert!(at_half_period < -0.9);
        assert_eq!(dominant_period(&signal, 30).unwrap(), 20);
    }

    #[test]
    fn constant_signal_has_zero_autocorrelation() {
        let signal = vec![5.0; 50];
        assert_eq!(autocorrelation_at(&signal, 0).unwrap(), 1.0);
        assert_eq!(autocorrelation_at(&signal, 3).unwrap(), 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(
            autocorrelation_at(&[], 0),
            Err(TransformError::EmptyInput)
        );
        assert!(autocorrelation_at(&[1.0, 2.0], 5).is_err());
        assert!(dominant_period(&[1.0], 5).is_err());
    }

    #[test]
    fn feature_vector_has_requested_length() {
        let signal = periodic_signal(8, 64);
        let features = autocorrelation_features(&signal, &[0, 1, 2, 4, 8]).unwrap();
        assert_eq!(features.len(), 5);
        assert!((features[0] - 1.0).abs() < 1e-9);
        assert!(features[4] > 0.8);
    }

    #[test]
    fn white_noise_has_weak_autocorrelation() {
        // A deterministic pseudo-random signal: correlations at lag > 0 are small.
        let mut state = 12345u64;
        let signal: Vec<f64> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        for lag in [1, 5, 10, 50] {
            let r = autocorrelation_at(&signal, lag).unwrap();
            assert!(r.abs() < 0.1, "lag {lag}: r = {r}");
        }
    }
}
