//! Domain-specific feature transformation operators (Section 3.2, stage 2,
//! and the case studies of Section 6.4).
//!
//! Feature transforms sit between ingestion and classification: they rewrite
//! a point's metric vector (and possibly its attributes) without the rest of
//! the pipeline having to know anything about the domain. This crate provides
//! the transforms the paper's case studies use:
//!
//! * [`fourier`] — discrete Fourier transform and the windowed Short-Time
//!   Fourier Transform (STFT) used by the electricity-metering pipeline.
//! * [`autocorrelation`] — autocorrelation features for periodic signals.
//! * [`window`] — tumbling windows that aggregate a stream of samples into
//!   per-window feature vectors tagged with time attributes.
//! * [`normalize`] — z-normalization and min-max scaling of metric columns.
//! * [`truncate`] — dimensionality truncation (keep the first `k` metrics).
//! * [`flow`] — a pure-Rust optical-flow-magnitude transform over frame
//!   pairs, standing in for the OpenCV transform of the video case study.
//!
//! ## Example
//!
//! Z-normalize metric columns so downstream estimators see comparable
//! scales:
//!
//! ```
//! use mb_transform::normalize::ZNormalizer;
//!
//! let rows = vec![vec![0.0, 100.0], vec![10.0, 200.0], vec![20.0, 300.0]];
//! let normalizer = ZNormalizer::fit(&rows).unwrap();
//! let out = normalizer.transform_batch(&rows).unwrap();
//! // The middle row sits exactly at the per-column mean.
//! assert!(out[1][0].abs() < 1e-9 && out[1][1].abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod autocorrelation;
pub mod flow;
pub mod fourier;
pub mod normalize;
pub mod truncate;
pub mod window;

/// Errors produced by feature transforms.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The input was empty where a non-empty series/frame was required.
    EmptyInput,
    /// Mismatched dimensions (e.g. frames of different sizes).
    DimensionMismatch {
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::EmptyInput => write!(f, "input is empty"),
            TransformError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            TransformError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TransformError>;
