//! A hand-rolled Rust lexer, just rich enough for contract linting.
//!
//! The rules in this crate match *token sequences*, never raw text, so the
//! one job this lexer must do perfectly is classification: source text that
//! lives inside a string literal, raw string, byte string, char literal, or
//! comment must come out as a `Str`/`CharLit`/`…Comment` token and never as
//! identifiers — otherwise `"std::thread::spawn"` in a log message would trip
//! `no-adhoc-threads`. Comments are kept in the stream (with their text)
//! because two rules read them: `unsafe-needs-safety-comment` looks for
//! `// SAFETY:` blocks and the suppression pragmas live in `//` comments.

/// One lexed token. `line` is 1-based and refers to the token's first line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token classes. Literal payloads are dropped except where a rule needs
/// them: identifier text drives every pattern match and comment text carries
/// SAFETY markers and pragmas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `for`, `HashMap`, …).
    Ident(String),
    /// Any single punctuation character (`.`, `:`, `{`, …).
    Punct(char),
    /// String literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    Str,
    /// Character literal: `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// Numeric literal (int or float, any base, with suffix).
    Num,
    /// `// …` comment; text excludes the leading slashes.
    LineComment(String),
    /// `/* … */` comment (nesting handled); text excludes the delimiters.
    /// `end_line` lets callers treat every spanned line as commented.
    BlockComment { text: String, end_line: u32 },
}

impl TokenKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

/// Lex `src` into a token stream. Unterminated literals or comments consume
/// the rest of the input as that literal; the lexer never fails.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.push(Token {
                    kind: TokenKind::LineComment(text),
                    line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.push(Token {
                    kind: TokenKind::BlockComment {
                        text,
                        end_line: cur.line,
                    },
                    line,
                });
            }
            '"' => {
                lex_escaped_string(&mut cur);
                out.push(Token {
                    kind: TokenKind::Str,
                    line,
                });
            }
            '\'' => {
                out.push(lex_quote(&mut cur, line));
            }
            _ if c.is_ascii_digit() => {
                lex_number(&mut cur);
                out.push(Token {
                    kind: TokenKind::Num,
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        ident.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                // String-literal prefixes: r"", r#""#, b"", br#""#, rb (not
                // Rust, but harmless), and raw identifiers r#name.
                let next = cur.peek(0);
                let is_raw_prefix = matches!(ident.as_str(), "r" | "br")
                    && (next == Some('"') || next == Some('#'));
                let is_byte_prefix = ident == "b" && (next == Some('"') || next == Some('\''));
                if is_raw_prefix && next == Some('#') && !raw_hashes_open_string(&cur) {
                    // `r#ident`: a raw identifier, not a raw string.
                    cur.bump(); // '#'
                    let mut name = String::new();
                    while let Some(c) = cur.peek(0) {
                        if is_ident_continue(c) {
                            name.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::Ident(name),
                        line,
                    });
                } else if is_raw_prefix {
                    lex_raw_string(&mut cur);
                    out.push(Token {
                        kind: TokenKind::Str,
                        line,
                    });
                } else if is_byte_prefix {
                    if next == Some('"') {
                        lex_escaped_string(&mut cur);
                        out.push(Token {
                            kind: TokenKind::Str,
                            line,
                        });
                    } else {
                        out.push(lex_quote(&mut cur, line));
                    }
                } else {
                    out.push(Token {
                        kind: TokenKind::Ident(ident),
                        line,
                    });
                }
            }
            _ => {
                cur.bump();
                out.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
            }
        }
    }
    out
}

/// After an `r`/`br` prefix, decide whether the `#`s ahead open a raw string
/// (`r##"…"##`) as opposed to a raw identifier (`r#name`).
fn raw_hashes_open_string(cur: &Cursor) -> bool {
    let mut ahead = 0;
    while cur.peek(ahead) == Some('#') {
        ahead += 1;
    }
    cur.peek(ahead) == Some('"')
}

/// Consume a `"…"` string with `\` escapes; the opening quote is at the
/// cursor.
fn lex_escaped_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // the escaped character, whatever it is
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consume `#*"…"#*` with the opening `#`-run or quote at the cursor.
fn lex_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
            None => return,
        }
    }
}

/// Consume a `'…'` char literal or a `'name` lifetime; the quote is at the
/// cursor (or, for `b'x'`, already consumed along with the `b`).
fn lex_quote(cur: &mut Cursor, line: u32) -> Token {
    if cur.peek(0) == Some('\'') {
        cur.bump(); // opening quote
    }
    match (cur.peek(0), cur.peek(1)) {
        // `'a` / `'static` / `'_` — ident char NOT closed by a quote.
        (Some(c), closing) if is_ident_start(c) && closing != Some('\'') => {
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            Token {
                kind: TokenKind::Lifetime,
                line,
            }
        }
        _ => {
            // Char literal: consume (escaped) content to the closing quote.
            while let Some(c) = cur.bump() {
                match c {
                    '\\' => {
                        cur.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            Token {
                kind: TokenKind::CharLit,
                line,
            }
        }
    }
}

/// Consume a numeric literal. Greedy over ident chars (covers `0xFF`, `1_000`,
/// `3f64`), but a `.` is taken only when followed by a digit so tuple-field
/// method chains like `y.1.total_cmp(..)` keep their `.` tokens.
fn lex_number(cur: &mut Cursor) {
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            let at_exponent = (c == 'e' || c == 'E')
                && matches!(cur.peek(1), Some(d) if d.is_ascii_digit() || d == '+' || d == '-');
            cur.bump();
            if at_exponent && matches!(cur.peek(0), Some('+') | Some('-')) {
                cur.bump();
            }
        } else if c == '.' && matches!(cur.peek(1), Some(d) if d.is_ascii_digit()) {
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
            let a = "std::thread::spawn";
            // Instant::now in a comment
            /* partial_cmp in /* a nested */ block */
            let b = r#"unsafe { HashMap::new() }"#;
            let c = '\'';
            let d = b"no idents \" here";
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; x }";
        let toks = lex(src);
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn tuple_field_chains_keep_dots() {
        let toks = lex("y.1.total_cmp(&x.1)");
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 3);
        assert!(toks.iter().any(|t| t.kind.ident() == Some("total_cmp")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.kind.ident() == Some("type")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "/* a\nb */\nfn f() {}\n";
        let toks = lex(src);
        match &toks[0].kind {
            TokenKind::BlockComment { end_line, .. } => {
                assert_eq!(toks[0].line, 1);
                assert_eq!(*end_line, 2);
            }
            other => panic!("expected block comment, got {other:?}"),
        }
        assert_eq!(toks[1].line, 3); // `fn`
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let s = \"unclosed");
        lex("let s = r#\"unclosed");
        lex("/* unclosed");
        lex("let c = '");
    }
}
