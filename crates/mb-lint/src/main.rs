//! `mb_lint` — walk the workspace and enforce the determinism contracts.
//!
//! ```text
//! mb_lint [--root <path>] [--json]
//! ```
//!
//! Prints one `file:line: rule-id: message` diagnostic per violation (or one
//! JSON object per line with `--json`) and exits 1 when anything fires, so
//! the CI lints job fails the build. Exit 2 is a usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("mb-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mb_lint [--root <path>] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mb-lint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    match mb_lint::lint_workspace(&root) {
        Ok((checked, diags)) => {
            for d in &diags {
                if json {
                    println!("{}", d.render_json());
                } else {
                    println!("{}", d.render());
                }
            }
            if diags.is_empty() {
                if !json {
                    println!("mb-lint: {checked} files clean");
                }
                ExitCode::SUCCESS
            } else {
                if !json {
                    eprintln!(
                        "mb-lint: {} violation(s) in {} checked file(s)",
                        diags.len(),
                        checked
                    );
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mb-lint: failed to walk {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
