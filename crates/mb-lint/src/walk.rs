//! Workspace file discovery.
//!
//! A deliberately small recursive walker (no external deps): collects every
//! `.rs` file under the workspace root, skipping build output (`target/`),
//! vendored stand-in crates (`vendor/` is third-party API surface, not ours
//! to lint), VCS internals, and this crate's own lint fixtures (which exist
//! to *contain* violations).

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, wherever they appear.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

/// Workspace-relative paths (forward slashes) never linted.
const SKIP_PREFIXES: [&str; 1] = ["crates/mb-lint/tests/fixtures"];

/// All lintable `.rs` files under `root`, workspace-relative with forward
/// slashes, sorted for deterministic output.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk_dir(root, PathBuf::new(), &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, rel: PathBuf, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(root.join(&rel))? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let rel_child = rel.join(name);
        let rel_str = rel_child
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name) || SKIP_PREFIXES.contains(&rel_str.as_str()) {
                continue;
            }
            walk_dir(root, rel_child, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel_str);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_finds_this_crate_but_not_fixtures_or_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).expect("walk workspace");
        assert!(files.iter().any(|f| f == "crates/mb-lint/src/walk.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        assert!(!files
            .iter()
            .any(|f| f.starts_with("crates/mb-lint/tests/fixtures/")));
        let sorted = {
            let mut s = files.clone();
            s.sort();
            s
        };
        assert_eq!(files, sorted, "walker output must be sorted");
    }
}
