//! The six workspace-contract rules, each a token-sequence matcher.
//!
//! Every rule here guards a piece of the determinism story: reports must be
//! bit-identical at any partition/thread count, so float orderings must be
//! total, parallelism must flow through `mb-pool`'s deterministic merges,
//! clocks stay behind `mb-obs` (volatile fields are diff-exempt there), hash
//! iteration must never reach output order unsorted, and the executor/server
//! hot paths must degrade into typed errors rather than panics.

use crate::lexer::{Token, TokenKind};
use std::collections::HashSet;
use std::fmt;

/// Stable identifiers for every diagnostic this crate can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `partial_cmp`-based float ordering (NaN-unsound); require `total_cmp`.
    FloatTotalOrder,
    /// `std::thread::{spawn, scope, Builder}` outside `mb-pool`.
    NoAdhocThreads,
    /// `Instant::now`/`SystemTime::now` outside mb-obs/mb-bench/mb-serve.
    NoAdhocClock,
    /// `unsafe` without an immediately preceding `// SAFETY:` comment.
    UnsafeNeedsSafetyComment,
    /// `HashMap`/`HashSet` iteration in output-bearing crates.
    HashmapOrderHazard,
    /// `unwrap()`/`expect()` in executor/server hot-path files.
    NoUnwrapInExecutors,
    /// A malformed, unknown, or justification-free suppression pragma.
    InvalidPragma,
}

impl RuleId {
    /// Every rule a pragma may suppress (`invalid-pragma` itself cannot be).
    pub const SUPPRESSIBLE: [RuleId; 6] = [
        RuleId::FloatTotalOrder,
        RuleId::NoAdhocThreads,
        RuleId::NoAdhocClock,
        RuleId::UnsafeNeedsSafetyComment,
        RuleId::HashmapOrderHazard,
        RuleId::NoUnwrapInExecutors,
    ];

    /// The kebab-case name used in diagnostics and pragmas.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::FloatTotalOrder => "float-total-order",
            RuleId::NoAdhocThreads => "no-adhoc-threads",
            RuleId::NoAdhocClock => "no-adhoc-clock",
            RuleId::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            RuleId::HashmapOrderHazard => "hashmap-order-hazard",
            RuleId::NoUnwrapInExecutors => "no-unwrap-in-executors",
            RuleId::InvalidPragma => "invalid-pragma",
        }
    }

    /// Parse a pragma rule name.
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::SUPPRESSIBLE
            .into_iter()
            .find(|r| r.as_str() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, renderable as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl Diagnostic {
    /// The canonical human-readable form.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }

    /// One machine-readable JSON object (no external deps: fields are
    /// escaped by hand).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.rule,
            escape_json(&self.message)
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// A non-comment token with its source line.
struct CodeTok<'a> {
    line: u32,
    kind: &'a TokenKind,
}

/// Run `rules` over a lexed file. `path` is only used to label diagnostics;
/// the per-path rule policy lives in [`crate::rules_for_path`].
pub fn lint_tokens(path: &str, toks: &[Token], rules: &[RuleId]) -> Vec<Diagnostic> {
    let code: Vec<CodeTok<'_>> = toks
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment(_) | TokenKind::BlockComment { .. }
            )
        })
        .map(|t| CodeTok {
            line: t.line,
            kind: &t.kind,
        })
        .collect();
    let test_spans = find_test_spans(&code);
    let in_test = |i: usize| test_spans.iter().any(|&(s, e)| i >= s && i <= e);

    let mut diags = Vec::new();
    let mut push = |line: u32, rule: RuleId, message: &str| {
        diags.push(Diagnostic {
            file: path.to_string(),
            line,
            rule,
            message: message.to_string(),
        });
    };

    let ident = |i: usize| -> Option<&str> { code.get(i).and_then(|t| t.kind.ident()) };
    let punct = |i: usize, c: char| -> bool {
        matches!(code.get(i), Some(t) if *t.kind == TokenKind::Punct(c))
    };

    let hash_names = if rules.contains(&RuleId::HashmapOrderHazard) {
        collect_hash_typed_names(&code)
    } else {
        HashSet::new()
    };

    for i in 0..code.len() {
        let line = code[i].line;

        if rules.contains(&RuleId::FloatTotalOrder)
            && ident(i) == Some("partial_cmp")
            && i >= 1
            && punct(i - 1, '.')
            && !in_test(i)
        {
            push(
                line,
                RuleId::FloatTotalOrder,
                "partial_cmp is not a total order (NaN breaks sort determinism); \
                 use f64::total_cmp",
            );
        }

        if rules.contains(&RuleId::NoAdhocThreads)
            && ident(i) == Some("thread")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && matches!(ident(i + 3), Some("spawn" | "scope" | "Builder"))
            && !in_test(i)
        {
            push(
                line,
                RuleId::NoAdhocThreads,
                "ad-hoc std::thread parallelism; route work through mb-pool so \
                 results stay deterministic at any thread count",
            );
        }

        if rules.contains(&RuleId::NoAdhocClock)
            && matches!(ident(i), Some("Instant" | "SystemTime"))
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && ident(i + 3) == Some("now")
            && !in_test(i)
        {
            push(
                line,
                RuleId::NoAdhocClock,
                "direct clock read; time through mb_obs (StageTimer) so disabled \
                 telemetry stays branch-only and clocks stay mockable",
            );
        }

        if rules.contains(&RuleId::NoUnwrapInExecutors)
            && matches!(ident(i), Some("unwrap" | "expect"))
            && i >= 1
            && punct(i - 1, '.')
            && punct(i + 1, '(')
            && !in_test(i)
        {
            push(
                line,
                RuleId::NoUnwrapInExecutors,
                "unwrap/expect on an executor/server hot path; return a typed \
                 error or recover instead of panicking",
            );
        }

        if rules.contains(&RuleId::HashmapOrderHazard) && !in_test(i) {
            // `name.iter()` / `name.keys()` / … where `name` is hash-typed.
            if let Some(m) = ident(i) {
                if ITER_METHODS.contains(&m)
                    && i >= 2
                    && punct(i - 1, '.')
                    && punct(i + 1, '(')
                    && matches!(ident(i - 2), Some(n) if hash_names.contains(n))
                {
                    push(
                        line,
                        RuleId::HashmapOrderHazard,
                        "HashMap/HashSet iteration order is nondeterministic; sort \
                         before anything output-bearing or justify with an allow \
                         pragma",
                    );
                }
            }
            // `for pat in [&][mut] path.to.name {` where `name` is hash-typed.
            if ident(i) == Some("in") {
                if let Some((last, next)) = for_loop_iterated_name(&code, i) {
                    if punct(next, '{') && hash_names.contains(last) {
                        push(
                            code[i].line,
                            RuleId::HashmapOrderHazard,
                            "HashMap/HashSet iteration order is nondeterministic; \
                             sort before anything output-bearing or justify with an \
                             allow pragma",
                        );
                    }
                }
            }
        }
    }

    if rules.contains(&RuleId::UnsafeNeedsSafetyComment) {
        check_unsafe_safety_comments(path, toks, &code, &mut diags);
    }

    diags
}

/// After `in` at `code[i]`, skip `&`/`mut`, then walk a dotted identifier
/// path. Returns the final identifier and the index just past it.
fn for_loop_iterated_name<'a>(code: &'a [CodeTok<'a>], i: usize) -> Option<(&'a str, usize)> {
    let mut j = i + 1;
    while matches!(code.get(j), Some(t) if *t.kind == TokenKind::Punct('&'))
        || matches!(code.get(j), Some(t) if t.kind.ident() == Some("mut"))
    {
        j += 1;
    }
    let mut last = code.get(j)?.kind.ident()?;
    loop {
        let dot = matches!(code.get(j + 1), Some(t) if *t.kind == TokenKind::Punct('.'));
        let next_ident = code.get(j + 2).and_then(|t| t.kind.ident());
        match (dot, next_ident) {
            (true, Some(name)) => {
                last = name;
                j += 2;
            }
            _ => break,
        }
    }
    Some((last, j + 1))
}

/// Names bound to a `HashMap`/`HashSet` in this file: type-ascribed bindings,
/// struct fields, fn params (`name: HashMap<…>`, through `&`/`&mut`), and
/// direct constructions (`name = HashMap::new()`).
fn collect_hash_typed_names<'a>(code: &'a [CodeTok<'a>]) -> HashSet<&'a str> {
    let mut names = HashSet::new();
    for i in 0..code.len() {
        if !matches!(code[i].kind.ident(), Some("HashMap" | "HashSet")) {
            continue;
        }
        // Skip path tails (`std::collections::HashMap`) back to the start of
        // the type expression.
        let mut j = i;
        while j >= 2
            && matches!(code[j - 1].kind, TokenKind::Punct(':'))
            && matches!(code[j - 2].kind, TokenKind::Punct(':'))
        {
            if j >= 3 && code[j - 3].kind.ident().is_some() {
                j -= 3;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        // `name : [&] [mut] ['a] <type>` — ascription, field, or param.
        let mut k = j - 1;
        while k >= 1
            && (matches!(code[k].kind, TokenKind::Punct('&') | TokenKind::Lifetime)
                || code[k].kind.ident() == Some("mut"))
        {
            k -= 1;
        }
        if matches!(code[k].kind, TokenKind::Punct(':'))
            && k >= 1
            && !matches!(code[k - 1].kind, TokenKind::Punct(':'))
        {
            if let Some(name) = code[k - 1].kind.ident() {
                names.insert(name);
                continue;
            }
        }
        // `name = HashMap::new()` without an ascription.
        if matches!(code[j - 1].kind, TokenKind::Punct('='))
            && j >= 2
            && punct_at(code, i + 1, ':')
            && punct_at(code, i + 2, ':')
        {
            if let Some(name) = code[j - 2].kind.ident() {
                names.insert(name);
            }
        }
    }
    names
}

fn punct_at(code: &[CodeTok<'_>], i: usize, c: char) -> bool {
    matches!(code.get(i), Some(t) if *t.kind == TokenKind::Punct(c))
}

/// Every `unsafe` token must be covered by a `// SAFETY:` (or `/* SAFETY:`)
/// comment on its own line or in the contiguous comment block directly above.
fn check_unsafe_safety_comments(
    path: &str,
    toks: &[Token],
    code: &[CodeTok<'_>],
    diags: &mut Vec<Diagnostic>,
) {
    let mut commented: HashSet<u32> = HashSet::new();
    let mut safety: HashSet<u32> = HashSet::new();
    for t in toks {
        match &t.kind {
            TokenKind::LineComment(text) => {
                commented.insert(t.line);
                if text.contains("SAFETY:") {
                    safety.insert(t.line);
                }
            }
            TokenKind::BlockComment { text, end_line } => {
                for l in t.line..=*end_line {
                    commented.insert(l);
                    if text.contains("SAFETY:") {
                        safety.insert(l);
                    }
                }
            }
            _ => {}
        }
    }
    for t in code {
        if t.kind.ident() != Some("unsafe") {
            continue;
        }
        let mut ok = safety.contains(&t.line);
        let mut l = t.line.saturating_sub(1);
        while !ok && l > 0 && commented.contains(&l) {
            ok = safety.contains(&l);
            l -= 1;
        }
        if !ok {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: RuleId::UnsafeNeedsSafetyComment,
                message: "unsafe without an immediately preceding `// SAFETY:` \
                          comment stating the invariant it relies on"
                    .to_string(),
            });
        }
    }
}

/// Spans (inclusive, over non-comment token indices) of items annotated
/// `#[test]` or `#[cfg(test)]` — the file's test code, exempt from the
/// determinism rules.
fn find_test_spans(code: &[CodeTok<'_>]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let Some((attr_end, is_test)) = parse_attribute(code, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end + 1;
        while let Some((next_end, _)) = parse_attribute(code, j) {
            j = next_end + 1;
        }
        // The item runs to its matching close brace, or to `;` for
        // brace-less items (`mod tests;`).
        let mut depth = 0usize;
        let mut end = code.len().saturating_sub(1);
        for (k, t) in code.iter().enumerate().skip(j) {
            match t.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
        }
        spans.push((i, end));
        i = end + 1;
    }
    spans
}

/// If `code[i]` opens an attribute (`#` `[` … `]`), return the index of its
/// closing `]` and whether it marks test code (`#[test]`, `#[cfg(test)]`,
/// or any `cfg` attribute mentioning `test`).
fn parse_attribute(code: &[CodeTok<'_>], i: usize) -> Option<(usize, bool)> {
    if !punct_at(code, i, '#') {
        return None;
    }
    let mut j = i + 1;
    if punct_at(code, j, '!') {
        j += 1;
    }
    if !punct_at(code, j, '[') {
        return None;
    }
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    for (k, t) in code.iter().enumerate().skip(j) {
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    // `#[cfg(not(test))]` gates *production* code; only a
                    // positive `test` mention marks a test item.
                    let is_test = idents.first() == Some(&"test")
                        || (idents.first() == Some(&"cfg")
                            && idents.contains(&"test")
                            && !idents.contains(&"not"));
                    return Some((k, is_test));
                }
            }
            TokenKind::Ident(s) => idents.push(s.as_str()),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str, rules: &[RuleId]) -> Vec<String> {
        lint_tokens(path, &lex(src), rules)
            .into_iter()
            .map(|d| d.render())
            .collect()
    }

    #[test]
    fn float_rule_fires_outside_tests_only() {
        let src = "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n#[cfg(test)]\nmod tests {\n    fn g(a: f64, b: f64) { let _ = a.partial_cmp(&b); }\n}\n";
        let got = run("x.rs", src, &[RuleId::FloatTotalOrder]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].starts_with("x.rs:2: float-total-order:"), "{got:?}");
    }

    #[test]
    fn thread_rule_catches_spawn_scope_builder() {
        for call in ["std::thread::spawn(f)", "thread::scope(|s| {})", "std::thread::Builder::new()"] {
            let src = format!("fn f() {{ let _ = {call}; }}");
            let got = run("x.rs", &src, &[RuleId::NoAdhocThreads]);
            assert_eq!(got.len(), 1, "{call}: {got:?}");
        }
        let ok = run(
            "x.rs",
            "fn f() { std::thread::sleep(d); std::thread::yield_now(); }",
            &[RuleId::NoAdhocThreads],
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unsafe_rule_accepts_contiguous_safety_blocks() {
        let ok = "// SAFETY: the scope outlives every borrow;\n// see Pool::scope.\nlet run = unsafe { transmute(x) };\n";
        assert!(run("x.rs", ok, &[RuleId::UnsafeNeedsSafetyComment]).is_empty());
        let trailing = "unsafe { /* SAFETY: checked above */ go(); }\n";
        assert!(run("x.rs", trailing, &[RuleId::UnsafeNeedsSafetyComment]).is_empty());
        let bad = "// waits for pending to hit zero\nlet run = unsafe { transmute(x) };\n";
        let got = run("x.rs", bad, &[RuleId::UnsafeNeedsSafetyComment]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains(":2: unsafe-needs-safety-comment:"), "{got:?}");
    }

    #[test]
    fn hashmap_rule_needs_a_hash_typed_receiver() {
        let src = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m {}\n    let total: f64 = m.values().sum();\n    let v = vec![1];\n    for x in &v {}\n    let _ = v.iter().count();\n}\n";
        let got = run("x.rs", src, &[RuleId::HashmapOrderHazard]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got[0].contains(":3: hashmap-order-hazard:"));
        assert!(got[1].contains(":4: hashmap-order-hazard:"));
    }

    #[test]
    fn hashmap_rule_sees_fields_and_params() {
        let src = "struct S { counts: HashMap<u32, f64> }\nimpl S {\n    fn decay(&mut self) { for c in self.counts.values_mut() { *c *= 0.5; } }\n}\nfn g(keep: &HashSet<u32>) { let _ = keep.iter().count(); }\n";
        let got = run("x.rs", src, &[RuleId::HashmapOrderHazard]);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn vec_of_hashsets_is_not_flagged() {
        let src = "fn f(sets: Vec<HashSet<u32>>) { for s in &sets {} let _ = sets.iter().count(); }\n";
        let got = run("x.rs", src, &[RuleId::HashmapOrderHazard]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn unwrap_rule_ignores_unwrap_or_family() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap_or(0);\n    let b = x.unwrap_or_else(|| 1);\n    let c = x.unwrap_or_default();\n    x.unwrap() + a + b + c\n}\n";
        let got = run("x.rs", src, &[RuleId::NoUnwrapInExecutors]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains(":5: no-unwrap-in-executors:"));
    }

    #[test]
    fn violations_inside_literals_never_fire() {
        let src = "fn f() {\n    let s = \"xs.partial_cmp(b) std::thread::spawn Instant::now\";\n    let r = r#\"m.iter() unsafe .unwrap()\"#;\n}\n";
        let got = run(
            "crates/core/src/executor.rs",
            src,
            &RuleId::SUPPRESSIBLE,
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
