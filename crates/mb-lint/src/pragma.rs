//! Inline suppression pragmas.
//!
//! Syntax, in a `//` comment on the flagged line or the line directly above:
//!
//! ```text
//! // mb-lint: allow(no-adhoc-threads) -- baseline measures spawn cost
//! ```
//!
//! Several rules may be listed comma-separated. The `-- <reason>` clause is
//! mandatory and must be non-empty: a suppression that cannot say *why* is
//! itself a violation (`invalid-pragma`), and an unparseable or unknown-rule
//! pragma is rejected the same way rather than silently ignored.

use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, RuleId};

/// A parsed, valid suppression. A pragma trailing code silences `line`
/// itself; a pragma alone on its line silences `line + 1`. The two forms
/// never bleed further, so one justification covers exactly one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    pub line: u32,
    pub rules: Vec<RuleId>,
    /// No code shares the pragma's line (the comment stands alone).
    pub standalone: bool,
}

const MARKER: &str = "mb-lint:";

/// Extract pragmas from a token stream. Malformed pragmas come back as
/// `invalid-pragma` diagnostics (never as silent no-ops) and suppress
/// nothing.
pub fn collect_pragmas(path: &str, toks: &[Token]) -> (Vec<Pragma>, Vec<Diagnostic>) {
    let code_lines: std::collections::HashSet<u32> = toks
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment(_) | TokenKind::BlockComment { .. }
            )
        })
        .map(|t| t.line)
        .collect();
    let mut pragmas = Vec::new();
    let mut diags = Vec::new();
    for t in toks {
        let TokenKind::LineComment(text) = &t.kind else {
            continue;
        };
        let Some(at) = text.find(MARKER) else {
            continue;
        };
        // Only the marker followed by `allow(..)` is a pragma attempt;
        // prose that merely mentions the tool's name (docs, this crate's
        // own headers) is not.
        if !text[at + MARKER.len()..].trim_start().starts_with("allow") {
            continue;
        }
        match parse_pragma(&text[at + MARKER.len()..]) {
            Ok(rules) => pragmas.push(Pragma {
                line: t.line,
                rules,
                standalone: !code_lines.contains(&t.line),
            }),
            Err(why) => diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                rule: RuleId::InvalidPragma,
                message: why,
            }),
        }
    }
    (pragmas, diags)
}

/// Parse `allow(rule[, rule…]) -- reason` (the text after the marker).
fn parse_pragma(rest: &str) -> Result<Vec<RuleId>, String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>) -- <reason>` after `mb-lint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        match RuleId::parse(name) {
            Some(rule) => rules.push(rule),
            None => return Err(format!("unknown rule '{name}' in allow(..)")),
        }
    }
    if rules.is_empty() {
        return Err("allow(..) lists no rules".to_string());
    }
    let tail = rest[close + 1..].trim();
    let reason_ok = tail
        .strip_prefix("--")
        .map(str::trim)
        .is_some_and(|reason| !reason.is_empty());
    if !reason_ok {
        return Err(
            "suppression needs a non-empty justification: `-- <reason>`".to_string(),
        );
    }
    Ok(rules)
}

/// Whether `diag` is silenced by any pragma: a trailing pragma covers its
/// own line, a standalone pragma covers the next line. `invalid-pragma`
/// diagnostics are never suppressible.
pub fn suppressed(diag: &Diagnostic, pragmas: &[Pragma]) -> bool {
    if diag.rule == RuleId::InvalidPragma {
        return false;
    }
    pragmas.iter().any(|p| {
        let covered = if p.standalone {
            diag.line == p.line + 1
        } else {
            diag.line == p.line
        };
        covered && p.rules.contains(&diag.rule)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragma_src(comment: &str) -> String {
        format!("fn f() {{}} {comment}\n")
    }

    #[test]
    fn well_formed_pragma_parses() {
        let src = pragma_src("// mb-lint: allow(no-adhoc-threads) -- baseline measures spawn cost");
        let (pragmas, diags) = collect_pragmas("x.rs", &lex(&src));
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].rules, vec![RuleId::NoAdhocThreads]);
    }

    #[test]
    fn multi_rule_pragma_parses() {
        let src = pragma_src(
            "// mb-lint: allow(float-total-order, hashmap-order-hazard) -- test fixture",
        );
        let (pragmas, diags) = collect_pragmas("x.rs", &lex(&src));
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(
            pragmas[0].rules,
            vec![RuleId::FloatTotalOrder, RuleId::HashmapOrderHazard]
        );
    }

    #[test]
    fn empty_reason_is_rejected() {
        for bad in [
            "// mb-lint: allow(no-adhoc-threads)",
            "// mb-lint: allow(no-adhoc-threads) --",
            "// mb-lint: allow(no-adhoc-threads) --   ",
        ] {
            let (pragmas, diags) = collect_pragmas("x.rs", &lex(&pragma_src(bad)));
            assert!(pragmas.is_empty(), "{bad}");
            assert_eq!(diags.len(), 1, "{bad}");
            assert_eq!(diags[0].rule, RuleId::InvalidPragma, "{bad}");
            assert!(diags[0].message.contains("non-empty justification"), "{bad}");
        }
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let src = pragma_src("// mb-lint: allow(made-up-rule) -- because");
        let (pragmas, diags) = collect_pragmas("x.rs", &lex(&src));
        assert!(pragmas.is_empty());
        assert!(diags[0].message.contains("unknown rule 'made-up-rule'"));
    }

    #[test]
    fn pragma_inside_string_is_ignored() {
        let src = "fn f() { let s = \"// mb-lint: allow(float-total-order)\"; }\n";
        let (pragmas, diags) = collect_pragmas("x.rs", &lex(src));
        assert!(pragmas.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn trailing_pragma_covers_only_its_line() {
        let diag = |line| Diagnostic {
            file: "x.rs".to_string(),
            line,
            rule: RuleId::FloatTotalOrder,
            message: String::new(),
        };
        let trailing = vec![Pragma {
            line: 10,
            rules: vec![RuleId::FloatTotalOrder],
            standalone: false,
        }];
        assert!(suppressed(&diag(10), &trailing));
        assert!(!suppressed(&diag(11), &trailing));
        let standalone = vec![Pragma {
            line: 10,
            rules: vec![RuleId::FloatTotalOrder],
            standalone: true,
        }];
        assert!(!suppressed(&diag(10), &standalone));
        assert!(suppressed(&diag(11), &standalone));
        assert!(!suppressed(&diag(12), &standalone));
    }
}
