//! mb-lint: the workspace-invariant static analyzer.
//!
//! MacroBase-RS promises bit-identical reports at any partition/thread
//! count. That guarantee rests on source-level contracts no compiler checks:
//! float orderings must be total (`total_cmp`, never `partial_cmp`),
//! parallelism must flow through `mb-pool`'s deterministic merges, clock
//! reads stay inside the observability/benchmark layers, `unsafe` must state
//! its invariant, hash-iteration order must never reach report bytes, and
//! the executor/server hot paths must fail typed, not panic. This crate is a
//! from-scratch, dependency-free lexer + rule engine that enforces those
//! contracts in CI; see [`rules::RuleId`] for the rule set and [`pragma`]
//! for the inline suppression syntax.
//!
//! ```
//! use mb_lint::{lint_source, rules::RuleId};
//!
//! let diags = lint_source(
//!     "crates/core/src/demo.rs",
//!     "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, RuleId::FloatTotalOrder);
//! assert_eq!(diags[0].line, 1);
//! ```

pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod walk;

use rules::{Diagnostic, RuleId};

/// Whether `path` sits in test or bench scaffolding (integration `tests/`
/// and `benches/` trees). In-file `#[cfg(test)]` modules are handled
/// separately, by token spans.
fn in_tests_or_benches(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.contains("/tests/")
        || path.contains("/benches/")
}

/// The rule set that applies to a workspace-relative path.
///
/// Policy (see ARCHITECTURE.md's rule table):
/// - `float-total-order`, `no-adhoc-threads`, `no-adhoc-clock`,
///   `no-unwrap-in-executors`, `hashmap-order-hazard` skip `tests/` and
///   `benches/` trees — those never feed report bytes.
/// - `no-adhoc-threads` exempts `mb-pool` (the sanctioned thread owner).
/// - `no-adhoc-clock` exempts `mb-obs` (owns the clock), `mb-bench`
///   (measures wall time by design), and `mb-serve` (scheduler timing).
/// - `hashmap-order-hazard` covers only the output-bearing crates: core,
///   mb-explain, mb-fpgrowth, mb-sketch.
/// - `no-unwrap-in-executors` pins the three hot-path files.
/// - `unsafe-needs-safety-comment` applies everywhere, tests included.
pub fn rules_for_path(path: &str) -> Vec<RuleId> {
    let mut rules = vec![RuleId::UnsafeNeedsSafetyComment];
    if in_tests_or_benches(path) {
        return rules;
    }
    rules.push(RuleId::FloatTotalOrder);
    if !path.starts_with("crates/mb-pool/") {
        rules.push(RuleId::NoAdhocThreads);
    }
    if !path.starts_with("crates/mb-obs/")
        && !path.starts_with("crates/mb-bench/")
        && !path.starts_with("crates/mb-serve/")
    {
        rules.push(RuleId::NoAdhocClock);
    }
    if path.starts_with("crates/core/")
        || path.starts_with("crates/mb-explain/")
        || path.starts_with("crates/mb-fpgrowth/")
        || path.starts_with("crates/mb-sketch/")
    {
        rules.push(RuleId::HashmapOrderHazard);
    }
    if matches!(
        path,
        "crates/core/src/executor.rs"
            | "crates/core/src/streaming.rs"
            | "crates/mb-serve/src/server.rs"
    ) {
        rules.push(RuleId::NoUnwrapInExecutors);
    }
    rules
}

/// Lint one file's source under its workspace-relative `path` (the path
/// drives the rule policy and labels diagnostics). Pragma handling included:
/// valid suppressions are applied, malformed ones surface as
/// `invalid-pragma`. Diagnostics come back sorted by line then rule.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let toks = lexer::lex(src);
    let (pragmas, mut diags) = pragma::collect_pragmas(path, &toks);
    let rules = rules_for_path(path);
    diags.extend(
        rules::lint_tokens(path, &toks, &rules)
            .into_iter()
            .filter(|d| !pragma::suppressed(d, &pragmas)),
    );
    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    diags
}

/// Lint every workspace source file under `root`. Diagnostics are sorted by
/// (file, line, rule) so output is stable for CI diffing.
pub fn lint_workspace(root: &std::path::Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let files = walk::workspace_sources(root)?;
    let checked = files.len();
    let mut diags = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        diags.extend(lint_source(&rel, &src));
    }
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
    Ok((checked, diags))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_exempts_the_owning_layers() {
        assert!(!rules_for_path("crates/mb-pool/src/lib.rs").contains(&RuleId::NoAdhocThreads));
        assert!(rules_for_path("crates/core/src/lib.rs").contains(&RuleId::NoAdhocThreads));
        assert!(!rules_for_path("crates/mb-obs/src/trace.rs").contains(&RuleId::NoAdhocClock));
        assert!(!rules_for_path("crates/mb-bench/src/bin/fig11.rs").contains(&RuleId::NoAdhocClock));
        assert!(rules_for_path("examples/quickstart.rs").contains(&RuleId::NoAdhocClock));
        assert!(rules_for_path("crates/mb-sketch/src/amc.rs").contains(&RuleId::HashmapOrderHazard));
        assert!(!rules_for_path("crates/mb-stats/src/matrix.rs")
            .contains(&RuleId::HashmapOrderHazard));
    }

    #[test]
    fn tests_and_benches_keep_only_the_unsafe_rule() {
        for path in [
            "tests/query_executor.rs",
            "crates/core/tests/wire.rs",
            "crates/mb-bench/benches/bench_sketch.rs",
        ] {
            assert_eq!(
                rules_for_path(path),
                vec![RuleId::UnsafeNeedsSafetyComment],
                "{path}"
            );
        }
    }

    #[test]
    fn hot_path_files_get_the_unwrap_rule() {
        assert!(rules_for_path("crates/core/src/executor.rs")
            .contains(&RuleId::NoUnwrapInExecutors));
        assert!(rules_for_path("crates/mb-serve/src/server.rs")
            .contains(&RuleId::NoUnwrapInExecutors));
        assert!(
            !rules_for_path("crates/core/src/oneshot.rs").contains(&RuleId::NoUnwrapInExecutors)
        );
    }

    #[test]
    fn suppression_and_empty_reason_interplay() {
        let src = "fn f() {\n    let t = std::thread::spawn(g); // mb-lint: allow(no-adhoc-threads) -- spawn-overhead baseline\n    let u = std::thread::spawn(g); // mb-lint: allow(no-adhoc-threads) --\n}\n";
        let diags = lint_source("crates/core/src/demo.rs", src);
        // Line 2 is suppressed with a reason; line 3's pragma is invalid so
        // BOTH the violation and the bad pragma surface.
        let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
        assert_eq!(diags.len(), 2, "{rendered:?}");
        assert_eq!(diags[0].rule, RuleId::NoAdhocThreads);
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[1].rule, RuleId::InvalidPragma);
        assert_eq!(diags[1].line, 3);
    }
}
