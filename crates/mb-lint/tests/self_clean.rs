//! The workspace must lint clean against its own analyzer: every violation
//! is either fixed or carries a justified suppression. This is the same
//! check CI runs via the `mb_lint` binary; running it as a test keeps
//! `cargo test` sufficient to catch a regression locally.

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (checked, diags) = mb_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        checked > 100,
        "suspiciously few files checked ({checked}); did the walker break?"
    );
    assert!(
        diags.is_empty(),
        "workspace has unjustified violations:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
