//! Each rule is proven live against a seeded fixture: the fixture contains
//! exactly one violation plus a raw-string false-positive trap (the same
//! violating text inside an `r#"…"#` literal, which must never fire). The
//! expected diagnostics are pinned down to `file:line: rule-id`, so a rule
//! that drifts off its line, stops firing, or starts firing on the trap
//! fails here.
//!
//! Fixtures are linted under *virtual* workspace paths (the path drives the
//! rule policy — e.g. the unwrap rule only applies to the three hot-path
//! files), and the tree under `tests/fixtures/` is excluded from the
//! workspace walk so the seeded violations never pollute the self-scan.

use mb_lint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint `fixture_name` as though it lived at `virtual_path`, returning the
/// rendered diagnostics truncated to their `file:line: rule-id` prefix.
fn lint_fixture(fixture_name: &str, virtual_path: &str) -> Vec<String> {
    lint_source(virtual_path, &fixture(fixture_name))
        .iter()
        .map(|d| {
            format!("{}:{}: {}", d.file, d.line, d.rule.as_str())
        })
        .collect()
}

#[test]
fn float_total_order_fires_once_on_the_seeded_line() {
    assert_eq!(
        lint_fixture("float_total_order.rs", "crates/core/src/demo.rs"),
        vec!["crates/core/src/demo.rs:7: float-total-order"]
    );
}

#[test]
fn no_adhoc_threads_fires_once_on_the_seeded_line() {
    assert_eq!(
        lint_fixture("no_adhoc_threads.rs", "crates/core/src/demo.rs"),
        vec!["crates/core/src/demo.rs:6: no-adhoc-threads"]
    );
}

#[test]
fn no_adhoc_clock_fires_once_on_the_seeded_line() {
    assert_eq!(
        lint_fixture("no_adhoc_clock.rs", "crates/core/src/demo.rs"),
        vec!["crates/core/src/demo.rs:6: no-adhoc-clock"]
    );
}

#[test]
fn unsafe_without_safety_comment_fires_once_on_the_seeded_line() {
    // The fixture's second unsafe block HAS a SAFETY comment and must pass.
    assert_eq!(
        lint_fixture("unsafe_needs_safety_comment.rs", "crates/core/src/demo.rs"),
        vec!["crates/core/src/demo.rs:6: unsafe-needs-safety-comment"]
    );
}

#[test]
fn hashmap_order_hazard_fires_once_on_the_seeded_line() {
    assert_eq!(
        lint_fixture("hashmap_order_hazard.rs", "crates/mb-explain/src/demo.rs"),
        vec!["crates/mb-explain/src/demo.rs:7: hashmap-order-hazard"]
    );
}

#[test]
fn hashmap_rule_is_scoped_to_output_bearing_crates() {
    // The same fixture under a non-output-bearing crate path is clean.
    assert_eq!(
        lint_fixture("hashmap_order_hazard.rs", "crates/mb-stats/src/demo.rs"),
        Vec::<String>::new()
    );
}

#[test]
fn no_unwrap_in_executors_fires_once_on_the_seeded_line() {
    assert_eq!(
        lint_fixture("no_unwrap_in_executors.rs", "crates/core/src/executor.rs"),
        vec!["crates/core/src/executor.rs:6: no-unwrap-in-executors"]
    );
}

#[test]
fn unwrap_rule_is_scoped_to_the_hot_path_files() {
    // The same fixture anywhere else is clean.
    assert_eq!(
        lint_fixture("no_unwrap_in_executors.rs", "crates/core/src/oneshot.rs"),
        Vec::<String>::new()
    );
}

#[test]
fn reasonless_pragma_surfaces_both_violation_and_invalid_pragma() {
    assert_eq!(
        lint_fixture("invalid_pragma.rs", "crates/core/src/demo.rs"),
        vec![
            "crates/core/src/demo.rs:8: float-total-order",
            "crates/core/src/demo.rs:8: invalid-pragma",
        ]
    );
}

#[test]
fn justified_suppression_lints_clean() {
    assert_eq!(
        lint_fixture("suppressed_clean.rs", "crates/core/src/demo.rs"),
        Vec::<String>::new()
    );
}
