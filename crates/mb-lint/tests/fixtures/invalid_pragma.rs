// Seeded invalid-pragma: the suppression lacks a reason, so BOTH the
// underlying violation and the bad pragma must surface. The raw string is
// a trap.
fn trap() -> &'static str {
    r#"// mb-lint: allow(float-total-order) --"#
}
fn bad(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // mb-lint: allow(float-total-order) --
}
