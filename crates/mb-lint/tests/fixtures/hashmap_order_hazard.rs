// Seeded hashmap-order-hazard violation; the raw string is a trap.
use std::collections::HashMap;
fn trap() -> &'static str {
    r#"for (k, v) in counts.iter() { emit(k, v); }"#
}
fn bad(counts: &HashMap<u32, f64>) -> Vec<f64> {
    counts.values().copied().collect()
}
