// Seeded no-adhoc-clock violation; the raw string is a trap.
fn trap() -> &'static str {
    r#"let t = std::time::Instant::now();"#
}
fn bad() -> std::time::Instant {
    std::time::Instant::now()
}
