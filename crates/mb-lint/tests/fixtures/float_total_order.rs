// Seeded float-total-order violation; the raw string above it is a
// false-positive trap the lexer must skip.
fn trap() -> &'static str {
    r#"xs.sort_by(|a, b| a.partial_cmp(b).unwrap());"#
}
fn bad(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
