// Seeded unsafe-needs-safety-comment violation; the raw string is a trap.
fn trap() -> &'static str {
    r#"unsafe { std::hint::unreachable_unchecked() }"#
}
fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}
fn fine(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid and aligned for a u8 read.
    unsafe { *p }
}
