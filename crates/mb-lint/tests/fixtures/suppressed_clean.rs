// A justified suppression: the pragma names the rule and carries a
// non-empty reason, so this file must lint clean.
fn fine(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // mb-lint: allow(float-total-order) -- fixture demonstrating a justified suppression
}
