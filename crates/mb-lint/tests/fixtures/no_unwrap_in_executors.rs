// Seeded no-unwrap-in-executors violation; the raw string is a trap.
fn trap() -> &'static str {
    r#"let v = maybe.unwrap();"#
}
fn bad(maybe: Option<u32>) -> u32 {
    maybe.unwrap()
}
