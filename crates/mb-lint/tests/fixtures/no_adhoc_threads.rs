// Seeded no-adhoc-threads violation; the raw string is a trap.
fn trap() -> &'static str {
    r#"std::thread::spawn(|| {});"#
}
fn bad() {
    std::thread::spawn(|| {}).join().ok();
}
