//! Property test for the lexer's literal/comment skipping: violating text
//! embedded inside string literals, raw strings, line comments, or block
//! comments must NEVER produce a diagnostic, no matter how the snippets are
//! combined. Each case assembles a random function body from randomly
//! chosen violation snippets, each wrapped in a randomly chosen inert
//! embedding.

use mb_lint::lint_source;
use proptest::prelude::*;

/// Texts that each fire at least one rule when they appear as code in
/// `crates/core/src/executor.rs` (a path where every rule is active). The
/// reasonless-pragma text is deliberately absent: a pragma in a *comment*
/// is a real pragma, not an embedding — pragma-in-string inertness is
/// covered by the pragma module's unit tests.
const VIOLATIONS: &[&str] = &[
    "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());",
    "std::thread::spawn(|| {});",
    "let t = std::time::Instant::now();",
    "unsafe { *p }",
    "let v: Vec<f64> = counts.values().copied().collect();",
    "maybe.unwrap();",
];

/// Inert wrappers: each embeds the snippet where only the lexer's
/// literal/comment handling keeps it out of the token stream the rules see.
fn embed(kind: usize, snippet: &str) -> String {
    // Quote/hash-bearing snippets can't nest inside every literal form;
    // strip the characters the wrapper can't carry.
    let clean: String = snippet.replace(['"', '#'], " ");
    match kind % 4 {
        0 => format!("    let _s = \"{clean}\";\n"),
        1 => format!("    let _r = r#\"{clean}\"#;\n"),
        2 => format!("    // {snippet}\n"),
        _ => format!("    /* {clean} */\n"),
    }
}

/// A signature that puts every receiver the snippets need in scope — and,
/// crucially, ascribes `counts` a `HashMap` type so the hashmap rule WOULD
/// fire on un-embedded code.
const HEADER: &str =
    "fn f(p: *const u8, maybe: Option<u32>, counts: &std::collections::HashMap<u32, f64>, xs: &mut [f64]) {\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn embedded_violations_never_fire(
        picks in prop::collection::vec(0usize..1000, 1..12),
    ) {
        let mut src = String::from(HEADER);
        for (i, &p) in picks.iter().enumerate() {
            let snippet = VIOLATIONS[p % VIOLATIONS.len()];
            src.push_str(&embed(p / VIOLATIONS.len() + i, snippet));
        }
        src.push_str("}\n");
        // Lint under the hot-path file so every rule is live.
        let diags = lint_source("crates/core/src/executor.rs", &src);
        prop_assert!(
            diags.is_empty(),
            "embedded-only source produced diagnostics: {:?}\nsource:\n{}",
            diags.iter().map(|d| d.render()).collect::<Vec<_>>(),
            src
        );
    }
}

/// The same snippets as real code DO fire — guarding against the proptest
/// above passing because the rules are dead.
#[test]
fn unembedded_violations_do_fire() {
    for snippet in VIOLATIONS {
        let src = format!("{HEADER}    {snippet}\n}}\n");
        let diags = lint_source("crates/core/src/executor.rs", &src);
        assert!(
            !diags.is_empty(),
            "snippet produced no diagnostic as code: {snippet}"
        );
    }
}
