//! Univariate descriptive statistics: mean, variance, median, quantiles, MAD.
//!
//! The median and MAD here are the robust location/scatter estimates that
//! back MacroBase's default univariate classifier (Section 4.1). Selection
//! uses an in-place quickselect to stay `O(n)` on average; callers on the hot
//! path are expected to hand in scratch buffers they own so no per-point
//! allocation occurs.

use crate::{Result, StatsError};

/// Arithmetic mean of a sample. Returns an error on empty input.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population variance (dividing by `n`). Returns an error on empty input.
pub fn population_variance(data: &[f64]) -> Result<f64> {
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Sample variance (dividing by `n - 1`). Requires at least two points.
pub fn sample_variance(data: &[f64]) -> Result<f64> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            provided: data.len(),
        });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Population standard deviation.
pub fn population_std(data: &[f64]) -> Result<f64> {
    Ok(population_variance(data)?.sqrt())
}

/// Sample standard deviation.
pub fn sample_std(data: &[f64]) -> Result<f64> {
    Ok(sample_variance(data)?.sqrt())
}

/// In-place quickselect: partially sorts `data` so that `data[k]` is the
/// element that would be at index `k` in fully sorted order.
///
/// Average `O(n)`; used by [`median_in_place`] and [`quantile_in_place`].
pub fn select_in_place(data: &mut [f64], k: usize) -> f64 {
    assert!(k < data.len(), "selection index out of range");
    let (mut lo, mut hi) = (0usize, data.len() - 1);
    // Deterministic median-of-three pivot selection keeps worst cases rare
    // without pulling in an RNG on the scoring hot path.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // Order data[lo], data[mid], data[hi] and use the median as pivot.
        if data[mid] < data[lo] {
            data.swap(mid, lo);
        }
        if data[hi] < data[lo] {
            data.swap(hi, lo);
        }
        if data[hi] < data[mid] {
            data.swap(hi, mid);
        }
        let pivot = data[mid];
        // Hoare partition.
        let (mut i, mut j) = (lo, hi);
        loop {
            while data[i] < pivot {
                i += 1;
            }
            while data[j] > pivot {
                j -= 1;
            }
            if i >= j {
                break;
            }
            data.swap(i, j);
            i += 1;
            j -= 1;
        }
        if k <= j {
            hi = j;
        } else {
            lo = j + 1;
        }
    }
    data[k]
}

/// Median of a sample, scrambling `data` in the process (no allocation).
///
/// For even-length samples this returns the average of the two central order
/// statistics, matching the textbook definition used by the paper.
pub fn median_in_place(data: &mut [f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let n = data.len();
    if n % 2 == 1 {
        Ok(select_in_place(data, n / 2))
    } else {
        let hi = select_in_place(data, n / 2);
        // The lower central element is the maximum of the left partition.
        let lo = data[..n / 2]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok((lo + hi) / 2.0)
    }
}

/// Median of a sample, leaving the input untouched (allocates a copy).
pub fn median(data: &[f64]) -> Result<f64> {
    let mut scratch = data.to_vec();
    median_in_place(&mut scratch)
}

/// Quantile (`q` in `[0, 1]`) using linear interpolation between order
/// statistics, scrambling `data` in the process.
pub fn quantile_in_place(data: &mut [f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter(format!(
            "quantile must be in [0, 1], got {q}"
        )));
    }
    let n = data.len();
    if n == 1 {
        return Ok(data[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo_idx = pos.floor() as usize;
    let hi_idx = pos.ceil() as usize;
    let frac = pos - lo_idx as f64;
    if lo_idx == hi_idx {
        return Ok(select_in_place(data, lo_idx));
    }
    let hi = select_in_place(data, hi_idx);
    let lo = data[..hi_idx]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    Ok(lo + frac * (hi - lo))
}

/// Quantile of a sample without modifying it (allocates a copy).
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    let mut scratch = data.to_vec();
    quantile_in_place(&mut scratch, q)
}

/// Median Absolute Deviation: `median(|x_i - median(x)|)`.
///
/// Returns `(median, mad)`. The caller typically multiplies the MAD by the
/// consistency constant `1.4826` to make it comparable to a standard
/// deviation under normality; [`crate::mad::MadEstimator`] does this.
pub fn median_absolute_deviation(data: &[f64]) -> Result<(f64, f64)> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    let mut scratch = data.to_vec();
    let med = median_in_place(&mut scratch)?;
    for (slot, x) in scratch.iter_mut().zip(data.iter()) {
        *slot = (x - med).abs();
    }
    let mad = median_in_place(&mut scratch)?;
    Ok((med, mad))
}

/// Running (Welford) mean/variance accumulator for single-pass statistics.
///
/// Used by feature transforms (normalization) and the synthetic workload
/// verification tests; numerically stable for large streams.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Observe one value.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observed values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observed values (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance of observed values (0 if fewer than 2 values).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn mean_of_known_values() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn mean_rejects_empty() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn variance_of_known_values() {
        // Var([2, 4, 4, 4, 5, 5, 7, 9]) = 4 (population)
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(population_variance(&data).unwrap(), 4.0, 1e-12);
        assert_close(sample_variance(&data).unwrap(), 32.0 / 7.0, 1e-12);
    }

    #[test]
    fn sample_variance_needs_two_points() {
        assert!(matches!(
            sample_variance(&[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn median_odd_and_even() {
        assert_close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0, 1e-12);
        assert_close(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5, 1e-12);
        assert_close(median(&[5.0]).unwrap(), 5.0, 1e-12);
    }

    #[test]
    fn median_with_duplicates() {
        assert_close(median(&[1.0, 1.0, 1.0, 1.0]).unwrap(), 1.0, 1e-12);
        assert_close(median(&[2.0, 2.0, 1.0]).unwrap(), 2.0, 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_close(quantile(&data, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(quantile(&data, 1.0).unwrap(), 5.0, 1e-12);
        assert_close(quantile(&data, 0.5).unwrap(), 3.0, 1e-12);
        assert_close(quantile(&data, 0.25).unwrap(), 2.0, 1e-12);
        assert_close(quantile(&data, 0.1).unwrap(), 1.4, 1e-12);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn mad_of_known_values() {
        // data: 1 1 2 2 4 6 9 -> median 2, abs dev: 1 1 0 0 2 4 7 -> MAD 1
        let data = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        let (med, mad) = median_absolute_deviation(&data).unwrap();
        assert_close(med, 2.0, 1e-12);
        assert_close(mad, 1.0, 1e-12);
    }

    #[test]
    fn mad_rejects_nan() {
        assert_eq!(
            median_absolute_deviation(&[1.0, f64::NAN]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn mad_resists_outliers() {
        // A single huge outlier should not move the MAD much, unlike the std.
        let clean = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8];
        let mut dirty = clean.to_vec();
        dirty.push(10_000.0);
        let (_, mad_clean) = median_absolute_deviation(&clean).unwrap();
        let (_, mad_dirty) = median_absolute_deviation(&dirty).unwrap();
        assert!((mad_dirty - mad_clean).abs() < 1.0);
        let std_clean = population_std(&clean).unwrap();
        let std_dirty = population_std(&dirty).unwrap();
        assert!(std_dirty > 100.0 * std_clean);
    }

    #[test]
    fn running_stats_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.observe(x);
        }
        assert_close(rs.mean(), mean(&data).unwrap(), 1e-12);
        assert_close(rs.variance(), population_variance(&data).unwrap(), 1e-12);
        assert_close(rs.min(), 1.0, 1e-12);
        assert_close(rs.max(), 9.0, 1e-12);
    }

    #[test]
    fn running_stats_merge_matches_single_pass() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut ra = RunningStats::new();
        let mut rb = RunningStats::new();
        for &x in &a {
            ra.observe(x);
        }
        for &x in &b {
            rb.observe(x);
        }
        ra.merge(&rb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_close(ra.mean(), mean(&all).unwrap(), 1e-9);
        assert_close(ra.variance(), population_variance(&all).unwrap(), 1e-9);
        assert_eq!(ra.count(), 7);
    }

    proptest! {
        #[test]
        fn select_matches_sort(mut data in prop::collection::vec(-1e6f64..1e6, 1..200), k_seed in 0usize..1000) {
            let k = k_seed % data.len();
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let got = select_in_place(&mut data, k);
            prop_assert_eq!(got, sorted[k]);
        }

        #[test]
        fn median_is_permutation_invariant(data in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let m1 = median(&data).unwrap();
            let mut rev = data.clone();
            rev.reverse();
            let m2 = median(&rev).unwrap();
            prop_assert!((m1 - m2).abs() < 1e-9);
        }

        #[test]
        fn median_translation_equivariant(data in prop::collection::vec(-1e3f64..1e3, 1..100), shift in -1e3f64..1e3) {
            let m1 = median(&data).unwrap();
            let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
            let m2 = median(&shifted).unwrap();
            prop_assert!((m1 + shift - m2).abs() < 1e-6);
        }

        #[test]
        fn mad_translation_invariant(data in prop::collection::vec(-1e3f64..1e3, 1..100), shift in -1e3f64..1e3) {
            let (_, mad1) = median_absolute_deviation(&data).unwrap();
            let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
            let (_, mad2) = median_absolute_deviation(&shifted).unwrap();
            prop_assert!((mad1 - mad2).abs() < 1e-6);
        }

        #[test]
        fn quantile_is_monotone(data in prop::collection::vec(-1e6f64..1e6, 2..100)) {
            let q25 = quantile(&data, 0.25).unwrap();
            let q50 = quantile(&data, 0.50).unwrap();
            let q75 = quantile(&data, 0.75).unwrap();
            prop_assert!(q25 <= q50 + 1e-9);
            prop_assert!(q50 <= q75 + 1e-9);
        }

        #[test]
        fn running_stats_variance_nonnegative(data in prop::collection::vec(-1e6f64..1e6, 0..200)) {
            let mut rs = RunningStats::new();
            for &x in &data {
                rs.observe(x);
            }
            prop_assert!(rs.variance() >= 0.0);
        }
    }
}
