//! Confidence intervals and multiple-testing corrections (Appendix B).
//!
//! MDP's explanations are repeated statistical tests over attribute
//! combinations, so MacroBase reports a confidence interval on each risk
//! ratio (the epidemiology formula of Morris & Gardner) and optionally
//! applies a Bonferroni correction for the number of combinations tested.
//! A binomial proportion interval is also provided for quantile-drift
//! detection in the percentile classifier (Section 4.2, footnote 4).

use crate::{Result, StatsError};

/// Inverse of the standard normal CDF (quantile function) via the
/// Acklam/Beasley-Springer-Moro rational approximation; max absolute error
/// ~1.15e-9, far below what confidence reporting needs.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..1.0).contains(&p) || p == 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "quantile probability must be in (0, 1), got {p}"
        )));
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    Ok(x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via the Abramowitz & Stegun 7.1.26 approximation
/// (max error 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Whether the entire interval lies at or above `threshold` — the test
    /// MacroBase uses to report an explanation "with confidence".
    pub fn entirely_above(&self, threshold: f64) -> bool {
        self.lower >= threshold
    }
}

/// Confidence interval on a relative risk ratio (Appendix B / Morris &
/// Gardner): given an attribute combination appearing `ao` times among
/// outliers and `ai` times among inliers, with `bo` other outliers and `bi`
/// other inliers, and the point estimate `risk_ratio`, the `1 − p` interval is
///
/// ```text
/// rr × exp(± z_p √(1/ao − 1/(ao+ai) + 1/bo − 1/(bo+bi)))
/// ```
pub fn risk_ratio_confidence_interval(
    risk_ratio: f64,
    ao: f64,
    ai: f64,
    bo: f64,
    bi: f64,
    level: f64,
) -> Result<ConfidenceInterval> {
    if !(0.0..1.0).contains(&level) || level == 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "confidence level must be in (0, 1), got {level}"
        )));
    }
    if ao <= 0.0 || bo <= 0.0 {
        // No outlier occurrences (or no other outliers): the interval is
        // undefined; report a degenerate interval at the point estimate.
        return Ok(ConfidenceInterval {
            lower: risk_ratio,
            upper: risk_ratio,
            level,
        });
    }
    let z = normal_quantile(1.0 - (1.0 - level) / 2.0)?;
    let se = (1.0 / ao - 1.0 / (ao + ai) + 1.0 / bo - 1.0 / (bo + bi)).max(0.0).sqrt();
    Ok(ConfidenceInterval {
        lower: risk_ratio * (-z * se).exp(),
        upper: risk_ratio * (z * se).exp(),
        level,
    })
}

/// Bonferroni-corrected confidence level: to keep family-wise confidence
/// `level` across `num_tests` tests, each individual interval is computed at
/// `1 − (1 − level) / num_tests`.
pub fn bonferroni_level(level: f64, num_tests: usize) -> Result<f64> {
    if !(0.0..1.0).contains(&level) || level == 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "confidence level must be in (0, 1), got {level}"
        )));
    }
    if num_tests == 0 {
        return Err(StatsError::InvalidParameter(
            "num_tests must be positive".to_string(),
        ));
    }
    Ok(1.0 - (1.0 - level) / num_tests as f64)
}

/// Wilson score interval for a binomial proportion (`successes` out of
/// `trials`). Used to detect quantile drift: if the observed fraction of
/// points classified as outliers deviates significantly from the target
/// percentile, the classifier should recompute its threshold.
pub fn binomial_proportion_interval(
    successes: u64,
    trials: u64,
    level: f64,
) -> Result<ConfidenceInterval> {
    if trials == 0 {
        return Err(StatsError::EmptyInput);
    }
    if successes > trials {
        return Err(StatsError::InvalidParameter(format!(
            "successes ({successes}) cannot exceed trials ({trials})"
        )));
    }
    let z = normal_quantile(1.0 - (1.0 - level) / 2.0)?;
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z * ((p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt()) / denom;
    Ok(ConfidenceInterval {
        lower: (center - half).max(0.0),
        upper: (center + half).min(1.0),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5).unwrap() - 0.0).abs() < 1e-8);
        assert!((normal_quantile(0.975).unwrap() - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995).unwrap() - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.025).unwrap() + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_rejects_bounds() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
    }

    #[test]
    fn normal_cdf_and_quantile_are_inverses() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = normal_quantile(p).unwrap();
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn paper_example_risk_ratio_interval() {
        // Appendix B: "an attribute combination with risk ratio of 5 that
        // appears in 1% of 10M points has a 95th percentile confidence
        // interval of (3.93, 6.07)".  1% of 10M = 100K outliers; the example
        // treats ao = ai = 50K-ish with bo/bi as the rest — we reproduce the
        // order of magnitude and tightness rather than the exact split: with
        // ao = 100_000 occurrences among 100_000 outliers-of-interest out of
        // 10M total, the interval is tight around 5.
        let n = 10_000_000.0;
        let outliers = 0.01 * n;
        let ao = outliers * 0.5;
        let ai = outliers * 0.5; // occurrences among inliers
        let bo = outliers - ao;
        let bi = n - outliers - ai;
        let ci = risk_ratio_confidence_interval(5.0, ao, ai, bo, bi, 0.95).unwrap();
        assert!(ci.lower > 3.5 && ci.lower < 5.0, "lower = {}", ci.lower);
        assert!(ci.upper < 6.5 && ci.upper > 5.0, "upper = {}", ci.upper);
        assert!(ci.entirely_above(3.0));
    }

    #[test]
    fn small_sample_interval_is_wide() {
        // Appendix B: the same ratio on a dataset of only 1000 points gives an
        // effectively meaningless (enormous) interval.
        let ci_small = risk_ratio_confidence_interval(5.0, 5.0, 5.0, 5.0, 985.0, 0.95).unwrap();
        let ci_large = risk_ratio_confidence_interval(
            5.0,
            50_000.0,
            50_000.0,
            50_000.0,
            9_850_000.0,
            0.95,
        )
        .unwrap();
        assert!(ci_small.upper - ci_small.lower > 10.0 * (ci_large.upper - ci_large.lower));
    }

    #[test]
    fn degenerate_interval_when_no_outlier_occurrences() {
        let ci = risk_ratio_confidence_interval(2.0, 0.0, 10.0, 5.0, 100.0, 0.95).unwrap();
        assert_eq!(ci.lower, 2.0);
        assert_eq!(ci.upper, 2.0);
    }

    #[test]
    fn bonferroni_tightens_level() {
        let corrected = bonferroni_level(0.95, 100).unwrap();
        assert!((corrected - 0.9995).abs() < 1e-12);
        assert!(bonferroni_level(0.95, 0).is_err());
        // Correcting for one test is a no-op.
        assert!((bonferroni_level(0.95, 1).unwrap() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn bonferroni_widens_interval_but_big_data_keeps_it_usable() {
        // Appendix B claim: even with k = 10M tests, a 10M-point stream keeps
        // the interval above a risk ratio threshold of 3.
        let level = bonferroni_level(0.95, 10_000_000).unwrap();
        let ci = risk_ratio_confidence_interval(
            5.0,
            50_000.0,
            50_000.0,
            50_000.0,
            9_850_000.0,
            level,
        )
        .unwrap();
        assert!(ci.lower > 3.0, "lower = {}", ci.lower);
        assert!(ci.upper < 7.0, "upper = {}", ci.upper);
    }

    #[test]
    fn wilson_interval_contains_true_proportion() {
        let ci = binomial_proportion_interval(10, 1000, 0.95).unwrap();
        assert!(ci.contains(0.01));
        assert!(!ci.contains(0.10));
        assert!(ci.lower >= 0.0 && ci.upper <= 1.0);
    }

    #[test]
    fn wilson_interval_edge_cases() {
        assert!(binomial_proportion_interval(0, 0, 0.95).is_err());
        assert!(binomial_proportion_interval(5, 3, 0.95).is_err());
        let all = binomial_proportion_interval(100, 100, 0.95).unwrap();
        assert!(all.upper <= 1.0);
        assert!(all.lower > 0.9);
        let none = binomial_proportion_interval(0, 100, 0.95).unwrap();
        assert!(none.lower >= 0.0);
        assert!(none.upper < 0.1);
    }
}
