//! Robust statistics and small dense linear algebra for MacroBase-RS.
//!
//! This crate provides the statistical substrate used by MacroBase's default
//! pipeline (MDP, Section 4 of the paper):
//!
//! * [`univariate`] — means, variances, medians, quantiles, and the Median
//!   Absolute Deviation (MAD).
//! * [`matrix`] — a small, dependency-free dense matrix type with the
//!   reusable factorizations FastMCD's C-step needs
//!   ([`matrix::LuFactors`], [`matrix::CholeskyFactors`]): factor once,
//!   derive solve/inverse/log-determinant from the shared factors.
//! * [`mad`] — the robust univariate outlier scorer based on median/MAD.
//! * [`mcd`] — the Minimum Covariance Determinant estimator (FastMCD) and
//!   Mahalanobis-distance scoring for multivariate metrics; training
//!   scatters its restarts and distance passes on the shared `mb_pool`.
//! * [`zscore`] — the non-robust Z-score baseline used in Figure 3.
//! * [`rand_ext`] — in-repo Gaussian/exponential samplers (Box–Muller) so the
//!   workspace does not need `rand_distr`.
//! * [`confidence`] — risk-ratio confidence intervals, binomial proportion
//!   intervals, and Bonferroni correction (Appendix B).
//! * [`corrmax`] — the corr-max transformation used to attribute an MCD
//!   outlier score to individual metric dimensions (Appendix A).
//!
//! All estimators implement the common [`Estimator`] trait so the
//! classification layer can treat them uniformly.
//!
//! ## Example
//!
//! Train the robust MAD scorer on a univariate sample and score points;
//! values far from the median score much higher than values in the bulk:
//!
//! ```
//! use mb_stats::mad::MadEstimator;
//!
//! let mut est = MadEstimator::new();
//! est.train_univariate(&[9.0, 10.0, 10.5, 11.0, 10.2, 9.8, 10.1]).unwrap();
//! assert!(est.score_value(10.0).unwrap() < est.score_value(100.0).unwrap());
//! ```

#![warn(missing_docs)]

pub mod confidence;
pub mod corrmax;
pub mod mad;
pub mod matrix;
pub mod mcd;
pub mod rand_ext;
pub mod univariate;
pub mod zscore;

/// Errors produced by statistical estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input sample was empty.
    EmptyInput,
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite,
    /// Matrix dimensions were incompatible for the requested operation.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension encountered.
        actual: usize,
    },
    /// A matrix required to be invertible was (numerically) singular.
    SingularMatrix,
    /// The estimator has not been trained yet.
    NotTrained,
    /// Not enough data points to fit the requested model.
    InsufficientData {
        /// Minimum number of points required.
        required: usize,
        /// Number of points provided.
        provided: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample is empty"),
            StatsError::NonFinite => write!(f, "input contains a non-finite value"),
            StatsError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            StatsError::SingularMatrix => write!(f, "matrix is singular"),
            StatsError::NotTrained => write!(f, "estimator has not been trained"),
            StatsError::InsufficientData { required, provided } => {
                write!(f, "insufficient data: need {required}, got {provided}")
            }
            StatsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

/// A trainable scoring model over fixed-dimension metric vectors.
///
/// This is the contract used by MacroBase's classification stage: a model is
/// (re)trained on a sample of metric vectors (typically drawn from an
/// [ADR](https://docs.rs/mb-sketch) reservoir) and then assigns each incoming
/// point a non-negative *outlier score*; higher scores indicate points
/// farther from the bulk of the distribution.
pub trait Estimator {
    /// Fit the model to a sample of metric vectors.
    ///
    /// Every row of `sample` must have the same dimensionality. Returns an
    /// error when the sample is empty, contains non-finite values, or is too
    /// small/degenerate for the estimator.
    fn train(&mut self, sample: &[Vec<f64>]) -> Result<()>;

    /// Fit the estimator on a contiguous row-major sample (`dim` values per
    /// row) — the columnar counterpart of [`train`].
    ///
    /// The default materializes row vectors and delegates to [`train`];
    /// univariate estimators override it to fit straight off the flat
    /// buffer without per-row allocation. Must produce exactly the model
    /// [`train`] would fit on the same rows.
    ///
    /// [`train`]: Estimator::train
    fn train_flat(&mut self, flat: &[f64], dim: usize) -> Result<()> {
        if dim == 0 {
            return Err(StatsError::EmptyInput);
        }
        if flat.len() % dim != 0 {
            return Err(StatsError::DimensionMismatch {
                expected: dim,
                actual: flat.len() % dim,
            });
        }
        let rows: Vec<Vec<f64>> = flat.chunks_exact(dim).map(|row| row.to_vec()).collect();
        self.train(&rows)
    }

    /// Score a single metric vector. Requires a prior successful [`train`].
    ///
    /// [`train`]: Estimator::train
    fn score(&self, metrics: &[f64]) -> Result<f64>;

    /// Score many metric vectors, returning one score per row in row order.
    ///
    /// The default loops over [`score`]; estimators with a cheaper or
    /// parallel bulk path (e.g. MCD's pool-scattered Mahalanobis distance
    /// pass) override it. Implementations must return exactly the scores
    /// the row-by-row loop would, so callers can batch freely without
    /// perturbing results.
    ///
    /// [`score`]: Estimator::score
    fn score_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        rows.iter().map(|row| self.score(row)).collect()
    }

    /// Score many metric vectors stored contiguously (row-major, `dim` values
    /// per row), returning one score per row in row order.
    ///
    /// This is the columnar counterpart of [`score_batch`] used by the batch
    /// pipeline, which keeps metrics in one flat buffer instead of a
    /// `Vec<Vec<f64>>`. Must return exactly what scoring each `dim`-length
    /// chunk individually would.
    ///
    /// [`score_batch`]: Estimator::score_batch
    fn score_batch_flat(&self, flat: &[f64], dim: usize) -> Result<Vec<f64>> {
        if dim == 0 {
            return Err(StatsError::EmptyInput);
        }
        if flat.len() % dim != 0 {
            return Err(StatsError::DimensionMismatch {
                expected: dim,
                actual: flat.len() % dim,
            });
        }
        flat.chunks_exact(dim).map(|row| self.score(row)).collect()
    }

    /// Dimensionality the model was trained on, if trained.
    fn dimension(&self) -> Option<usize>;

    /// Whether the model has been trained and can score points.
    fn is_trained(&self) -> bool {
        self.dimension().is_some()
    }
}

/// Validate that a slice of metric rows is non-empty, rectangular, and finite.
pub(crate) fn validate_sample(sample: &[Vec<f64>]) -> Result<usize> {
    let first = sample.first().ok_or(StatsError::EmptyInput)?;
    let dim = first.len();
    if dim == 0 {
        return Err(StatsError::EmptyInput);
    }
    for row in sample {
        if row.len() != dim {
            return Err(StatsError::DimensionMismatch {
                expected: dim,
                actual: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_sample_rejects_empty() {
        assert_eq!(validate_sample(&[]), Err(StatsError::EmptyInput));
        assert_eq!(validate_sample(&[vec![]]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn validate_sample_rejects_ragged() {
        let sample = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            validate_sample(&sample),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_sample_rejects_nan() {
        let sample = vec![vec![1.0, f64::NAN]];
        assert_eq!(validate_sample(&sample), Err(StatsError::NonFinite));
    }

    #[test]
    fn validate_sample_accepts_rectangular() {
        let sample = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(validate_sample(&sample), Ok(2));
    }

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::InsufficientData {
            required: 10,
            provided: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }
}
