//! Minimum Covariance Determinant estimation via FastMCD (Section 4.1,
//! Appendix A) and Mahalanobis-distance scoring for multivariate metrics.
//!
//! The exact MCD — the `h`-point subset whose covariance matrix has minimum
//! determinant — is combinatorial, so MacroBase adopts the FastMCD iterative
//! approximation [Rousseeuw & Van Driessen 1999]: start from several random
//! small subsets, repeatedly apply *C-steps* (re-fit location/scatter on the
//! `h` points with smallest Mahalanobis distance under the current fit) until
//! the determinant stops decreasing, and keep the best run.
//!
//! The Mahalanobis-distance pass inside each C-step — the dominant cost of
//! training — scatters across the shared [`mb_pool`] work-stealing pool for
//! large samples. The per-row arithmetic is unchanged, so training remains
//! deterministic and bit-identical at any thread count.

use crate::matrix::{covariance_matrix, Matrix};
use crate::rand_ext::SplitMix64;
use crate::{Estimator, Result, StatsError};
use std::sync::Mutex;

/// Minimum rows per task when the distance pass fans out on the shared
/// work-stealing pool. Below this (per chunk) the arithmetic is cheaper
/// than the queue round-trip, so the pass runs inline on the caller.
const DISTANCE_GRAIN: usize = 2048;

/// Squared Mahalanobis distance of `row` under `(mean, inv)`, shared by the
/// serial scoring path and the parallel C-step distance pass.
fn squared_distance(inv: &Matrix, mean: &[f64], row: &[f64]) -> Result<f64> {
    let centered: Vec<f64> = row.iter().zip(mean.iter()).map(|(a, b)| a - b).collect();
    let transformed = inv.matvec(&centered)?;
    Ok(centered
        .iter()
        .zip(transformed.iter())
        .map(|(a, b)| a * b)
        .sum::<f64>())
}

/// Fill `distances` with `(d², row index)` for every row of `sample` under
/// `(mean, inv)`, scattering chunks onto the global pool when the sample is
/// large enough to amortize submission. The arithmetic per row is identical
/// to the serial loop, so results are bit-identical regardless of thread
/// count.
fn distance_pass(
    sample: &[Vec<f64>],
    mean: &[f64],
    inv: &Matrix,
    distances: &mut Vec<(f64, usize)>,
) -> Result<()> {
    distances.clear();
    distances.resize(sample.len(), (0.0, 0));
    let first_error: Mutex<Option<StatsError>> = Mutex::new(None);
    mb_pool::global().parallel_for(distances, DISTANCE_GRAIN, |start, chunk| {
        for (offset, slot) in chunk.iter_mut().enumerate() {
            let index = start + offset;
            match squared_distance(inv, mean, &sample[index]) {
                Ok(d2) => *slot = (d2, index),
                Err(e) => {
                    let mut slot = first_error.lock().unwrap();
                    slot.get_or_insert(e);
                    return;
                }
            }
        }
    });
    match first_error.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Configuration for the FastMCD estimator.
#[derive(Debug, Clone)]
pub struct FastMcdConfig {
    /// Fraction of the sample used for the robust subset `h` (`0.5..=1.0`).
    /// The paper (and the reference implementation) default to `0.5`, the
    /// maximum-breakdown choice.
    pub support_fraction: f64,
    /// Number of random restarts. More restarts improve the chance of
    /// escaping a bad initial subset; FastMCD's authors recommend a handful.
    pub num_starts: usize,
    /// Maximum number of C-steps per restart.
    pub max_iterations: usize,
    /// Convergence threshold on the decrease of the covariance log-determinant.
    pub tolerance: f64,
    /// Seed for the internal subset-selection RNG (deterministic training).
    pub seed: u64,
}

impl Default for FastMcdConfig {
    fn default() -> Self {
        FastMcdConfig {
            support_fraction: 0.5,
            num_starts: 4,
            max_iterations: 50,
            tolerance: 1e-7,
            seed: 0xC0FFEE,
        }
    }
}

/// FastMCD robust multivariate location/scatter estimator with
/// Mahalanobis-distance scoring.
#[derive(Debug, Clone)]
pub struct McdEstimator {
    config: FastMcdConfig,
    mean: Vec<f64>,
    covariance: Option<Matrix>,
    inverse_covariance: Option<Matrix>,
}

impl Default for McdEstimator {
    fn default() -> Self {
        Self::new(FastMcdConfig::default())
    }
}

impl McdEstimator {
    /// Create an untrained estimator with the given configuration.
    pub fn new(config: FastMcdConfig) -> Self {
        McdEstimator {
            config,
            mean: Vec::new(),
            covariance: None,
            inverse_covariance: None,
        }
    }

    /// Create an untrained estimator with default configuration.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The robust location estimate, if trained.
    pub fn location(&self) -> Option<&[f64]> {
        self.covariance.as_ref().map(|_| self.mean.as_slice())
    }

    /// The robust scatter (covariance) estimate, if trained.
    pub fn scatter(&self) -> Option<&Matrix> {
        self.covariance.as_ref()
    }

    /// The inverse scatter matrix, if trained (used by scoring and corr-max).
    pub fn inverse_scatter(&self) -> Option<&Matrix> {
        self.inverse_covariance.as_ref()
    }

    /// Squared Mahalanobis distance of `x` from the fitted distribution.
    pub fn squared_mahalanobis(&self, x: &[f64]) -> Result<f64> {
        let inv = self
            .inverse_covariance
            .as_ref()
            .ok_or(StatsError::NotTrained)?;
        if x.len() != self.mean.len() {
            return Err(StatsError::DimensionMismatch {
                expected: self.mean.len(),
                actual: x.len(),
            });
        }
        Ok(squared_distance(inv, &self.mean, x)?.max(0.0))
    }

    /// Mahalanobis distance (square root of [`squared_mahalanobis`]).
    ///
    /// [`squared_mahalanobis`]: McdEstimator::squared_mahalanobis
    pub fn mahalanobis(&self, x: &[f64]) -> Result<f64> {
        Ok(self.squared_mahalanobis(x)?.sqrt())
    }

    /// Compute mean and covariance of the rows selected by `indices`,
    /// regularizing the covariance if it is singular.
    fn fit_subset(sample: &[Vec<f64>], indices: &[usize]) -> Result<(Vec<f64>, Matrix)> {
        let rows: Vec<Vec<f64>> = indices.iter().map(|&i| sample[i].clone()).collect();
        let (mean, mut cov) = covariance_matrix(&rows)?;
        // Ridge-regularize until invertible; degenerate subsets (e.g. repeated
        // points) otherwise break the C-step.
        let mut ridge = 1e-9;
        while cov.inverse().is_err() && ridge < 1e3 {
            cov.add_diagonal(ridge);
            ridge *= 10.0;
        }
        Ok((mean, cov))
    }

    /// One C-step: given a fit, select the `h` points with the smallest
    /// Mahalanobis distances under that fit. The distance pass — the
    /// dominant cost of FastMCD training — fans out across the shared
    /// work-stealing pool for large samples.
    fn c_step(
        sample: &[Vec<f64>],
        mean: &[f64],
        cov: &Matrix,
        h: usize,
        distances: &mut Vec<(f64, usize)>,
    ) -> Result<Vec<usize>> {
        let inv = cov.inverse()?;
        distance_pass(sample, mean, &inv, distances)?;
        distances.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Ok(distances.iter().take(h).map(|&(_, idx)| idx).collect())
    }

    /// Squared Mahalanobis distances of every row of `rows` from the fitted
    /// distribution, computed in parallel on the shared pool — the same
    /// pass a C-step performs during training, exposed for batch scoring
    /// and the hot-path micro-benchmarks.
    pub fn squared_mahalanobis_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let inv = self
            .inverse_covariance
            .as_ref()
            .ok_or(StatsError::NotTrained)?;
        if let Some(row) = rows.iter().find(|row| row.len() != self.mean.len()) {
            return Err(StatsError::DimensionMismatch {
                expected: self.mean.len(),
                actual: row.len(),
            });
        }
        let mut distances = Vec::new();
        distance_pass(rows, &self.mean, inv, &mut distances)?;
        Ok(distances.into_iter().map(|(d2, _)| d2.max(0.0)).collect())
    }
}

impl Estimator for McdEstimator {
    fn train(&mut self, sample: &[Vec<f64>]) -> Result<()> {
        let dim = crate::validate_sample(sample)?;
        let n = sample.len();
        // Need enough points for a non-degenerate covariance of a subset.
        let min_required = (dim + 2).max(4);
        if n < min_required {
            return Err(StatsError::InsufficientData {
                required: min_required,
                provided: n,
            });
        }
        if !(0.5..=1.0).contains(&self.config.support_fraction) {
            return Err(StatsError::InvalidParameter(format!(
                "support_fraction must be in [0.5, 1.0], got {}",
                self.config.support_fraction
            )));
        }

        let h = ((n as f64 * self.config.support_fraction).ceil() as usize)
            .max(dim + 1)
            .min(n);
        let mut rng = SplitMix64::new(self.config.seed);
        let mut distances: Vec<(f64, usize)> = Vec::with_capacity(n);

        let mut best: Option<(f64, Vec<f64>, Matrix)> = None;

        for _start in 0..self.config.num_starts.max(1) {
            // Initial subset: d + 1 random distinct points (FastMCD's elemental
            // start), falling back to h points when the sample is tiny.
            let init_size = (dim + 1).min(n).max(2);
            let mut indices: Vec<usize> = (0..n).collect();
            // Partial Fisher-Yates to pick `init_size` distinct indices.
            for i in 0..init_size {
                let j = i + rng.next_below(n - i);
                indices.swap(i, j);
            }
            let mut subset: Vec<usize> = indices[..init_size].to_vec();

            let (mut mean, mut cov) = Self::fit_subset(sample, &subset)?;
            let mut last_logdet = cov.log_abs_determinant().unwrap_or(f64::INFINITY);

            for _iter in 0..self.config.max_iterations {
                subset = match Self::c_step(sample, &mean, &cov, h, &mut distances) {
                    Ok(s) => s,
                    Err(_) => break,
                };
                let (new_mean, new_cov) = Self::fit_subset(sample, &subset)?;
                let logdet = new_cov.log_abs_determinant().unwrap_or(f64::INFINITY);
                mean = new_mean;
                cov = new_cov;
                if (last_logdet - logdet).abs() < self.config.tolerance {
                    last_logdet = logdet;
                    break;
                }
                last_logdet = logdet;
            }

            let replace = match &best {
                None => true,
                Some((best_logdet, _, _)) => last_logdet < *best_logdet,
            };
            if replace {
                best = Some((last_logdet, mean, cov));
            }
        }

        let (_, mean, mut cov) = best.ok_or(StatsError::SingularMatrix)?;
        // Final safety regularization before inverting for the scoring path.
        let inv = match cov.inverse() {
            Ok(inv) => inv,
            Err(_) => {
                cov.add_diagonal(1e-6);
                cov.inverse()?
            }
        };
        self.mean = mean;
        self.covariance = Some(cov);
        self.inverse_covariance = Some(inv);
        Ok(())
    }

    fn score(&self, metrics: &[f64]) -> Result<f64> {
        self.mahalanobis(metrics)
    }

    fn dimension(&self) -> Option<usize> {
        self.covariance.as_ref().map(|_| self.mean.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_ext::{normal, SplitMix64};

    fn gaussian_cloud(
        rng: &mut SplitMix64,
        n: usize,
        center: &[f64],
        std_dev: f64,
    ) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| center.iter().map(|&c| normal(rng, c, std_dev)).collect())
            .collect()
    }

    #[test]
    fn untrained_estimator_errors() {
        let est = McdEstimator::with_defaults();
        assert_eq!(est.score(&[1.0, 2.0]), Err(StatsError::NotTrained));
        assert!(!est.is_trained());
    }

    #[test]
    fn insufficient_data_is_rejected() {
        let mut est = McdEstimator::with_defaults();
        assert!(matches!(
            est.train(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn invalid_support_fraction_rejected() {
        let cfg = FastMcdConfig {
            support_fraction: 0.3,
            ..FastMcdConfig::default()
        };
        let mut est = McdEstimator::new(cfg);
        let mut rng = SplitMix64::new(1);
        let sample = gaussian_cloud(&mut rng, 100, &[0.0, 0.0], 1.0);
        assert!(matches!(
            est.train(&sample),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn recovers_gaussian_center() {
        let mut rng = SplitMix64::new(11);
        let sample = gaussian_cloud(&mut rng, 2000, &[5.0, -3.0], 2.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let loc = est.location().unwrap();
        assert!((loc[0] - 5.0).abs() < 0.5, "location[0] = {}", loc[0]);
        assert!((loc[1] + 3.0).abs() < 0.5, "location[1] = {}", loc[1]);
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        let mut rng = SplitMix64::new(21);
        let sample = gaussian_cloud(&mut rng, 1000, &[0.0, 0.0, 0.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let inlier_score = est.score(&[0.5, -0.5, 0.2]).unwrap();
        let outlier_score = est.score(&[20.0, 20.0, 20.0]).unwrap();
        assert!(outlier_score > 10.0 * inlier_score);
    }

    #[test]
    fn robust_to_forty_percent_contamination() {
        // The defining property of MCD (Figure 3): a 40% cluster of extreme
        // points must not drag the fitted center toward itself.
        let mut rng = SplitMix64::new(31);
        let mut sample = gaussian_cloud(&mut rng, 600, &[0.0, 0.0], 1.0);
        sample.extend(gaussian_cloud(&mut rng, 400, &[1000.0, 1000.0], 1.0));
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let loc = est.location().unwrap();
        assert!(loc[0].abs() < 5.0, "location dragged to {loc:?}");
        assert!(loc[1].abs() < 5.0, "location dragged to {loc:?}");
        // And the contaminating cluster still scores as extremely outlying.
        assert!(est.score(&[1000.0, 1000.0]).unwrap() > 50.0);
    }

    #[test]
    fn mahalanobis_of_center_is_zero() {
        let mut rng = SplitMix64::new(41);
        let sample = gaussian_cloud(&mut rng, 500, &[2.0, 2.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let loc: Vec<f64> = est.location().unwrap().to_vec();
        assert!(est.score(&loc).unwrap() < 1e-6);
    }

    #[test]
    fn dimension_mismatch_on_score() {
        let mut rng = SplitMix64::new(51);
        let sample = gaussian_cloud(&mut rng, 100, &[0.0, 0.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(matches!(
            est.score(&[1.0, 2.0, 3.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn handles_degenerate_dimension_via_regularization() {
        // Third dimension is constant -> covariance singular without ridging.
        let mut rng = SplitMix64::new(61);
        let sample: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0), 7.0])
            .collect();
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(est.score(&[0.0, 0.0, 7.0]).unwrap().is_finite());
        assert!(est.score(&[10.0, 10.0, 7.0]).unwrap() > 1.0);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let mut rng = SplitMix64::new(71);
        let sample = gaussian_cloud(&mut rng, 300, &[1.0, 2.0], 1.5);
        let mut a = McdEstimator::with_defaults();
        let mut b = McdEstimator::with_defaults();
        a.train(&sample).unwrap();
        b.train(&sample).unwrap();
        assert_eq!(a.location().unwrap(), b.location().unwrap());
        assert_eq!(
            a.score(&[3.0, 3.0]).unwrap(),
            b.score(&[3.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn batch_distances_match_single_point_scoring() {
        // The batch pass must agree with per-point scoring even when the
        // sample is large enough for the parallel path to engage.
        let mut rng = SplitMix64::new(91);
        let sample = gaussian_cloud(&mut rng, 1_000, &[1.0, -1.0, 0.5], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let rows = gaussian_cloud(&mut rng, 10_000, &[1.0, -1.0, 0.5], 3.0);
        let batch = est.squared_mahalanobis_batch(&rows).unwrap();
        assert_eq!(batch.len(), rows.len());
        for (row, &d2) in rows.iter().zip(batch.iter()) {
            assert_eq!(d2, est.squared_mahalanobis(row).unwrap());
        }
    }

    #[test]
    fn batch_distances_validate_training_and_dimensions() {
        let untrained = McdEstimator::with_defaults();
        assert_eq!(
            untrained.squared_mahalanobis_batch(&[vec![0.0]]),
            Err(StatsError::NotTrained)
        );
        let mut rng = SplitMix64::new(92);
        let sample = gaussian_cloud(&mut rng, 200, &[0.0, 0.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(matches!(
            est.squared_mahalanobis_batch(&[vec![1.0, 2.0, 3.0]]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn training_is_identical_above_the_parallel_threshold() {
        // 6_000 rows puts every C-step's distance pass on the pool; the fit
        // must be bit-identical to what the serial path produced (same
        // arithmetic per row, same sort input).
        let mut rng = SplitMix64::new(93);
        let sample = gaussian_cloud(&mut rng, 6_000, &[3.0, -2.0], 1.5);
        let mut a = McdEstimator::with_defaults();
        let mut b = McdEstimator::with_defaults();
        a.train(&sample).unwrap();
        b.train(&sample).unwrap();
        assert_eq!(a.location().unwrap(), b.location().unwrap());
        assert_eq!(a.score(&[5.0, 5.0]).unwrap(), b.score(&[5.0, 5.0]).unwrap());
    }

    #[test]
    fn univariate_mcd_works() {
        let mut rng = SplitMix64::new(81);
        let sample: Vec<Vec<f64>> = (0..400).map(|_| vec![normal(&mut rng, 10.0, 2.0)]).collect();
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(est.score(&[10.0]).unwrap() < est.score(&[40.0]).unwrap());
    }
}
