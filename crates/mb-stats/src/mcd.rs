//! Minimum Covariance Determinant estimation via FastMCD (Section 4.1,
//! Appendix A) and Mahalanobis-distance scoring for multivariate metrics.
//!
//! The exact MCD — the `h`-point subset whose covariance matrix has minimum
//! determinant — is combinatorial, so MacroBase adopts the FastMCD iterative
//! approximation [Rousseeuw & Van Driessen 1999]: start from several random
//! small subsets, repeatedly apply *C-steps* (re-fit location/scatter on the
//! `h` points with smallest Mahalanobis distance under the current fit) until
//! the determinant stops decreasing, and keep the best run.
//!
//! Training parallelizes at two nested levels on the shared [`mb_pool`]
//! work-stealing pool:
//!
//! * **Restarts** — FastMCD's random restarts are embarrassingly parallel:
//!   each becomes one pool task with a restart-local RNG split
//!   deterministically from the seed ([`SplitMix64::split`]), and the winner
//!   is chosen by a deterministic best-of-restarts merge (lowest covariance
//!   log-determinant, ties broken by restart index).
//! * **Distance pass** — the Mahalanobis pass inside each C-step, the
//!   dominant per-iteration cost, scatters row chunks on the same pool
//!   (nested parallelism: the pool's helping waits let restart tasks fan
//!   out further).
//!
//! Both levels keep per-row/per-restart arithmetic independent of the
//! schedule, so training is bit-identical at any thread count and pool size.
//! Each C-step performs exactly one O(d³) matrix factorization
//! ([`SpdFactors`]: Cholesky for the SPD covariance, LU fallback), from
//! which the inverse (distance pass) and log-determinant (convergence and
//! merge) are both derived.

use crate::matrix::{covariance_of_indices, Matrix, SpdFactors};
use crate::rand_ext::SplitMix64;
use crate::{Estimator, Result, StatsError};
use mb_pool::Pool;

/// Minimum rows per task when the distance pass fans out on the shared
/// work-stealing pool. Below this (per chunk) the arithmetic is cheaper
/// than the queue round-trip, so the pass runs inline on the caller.
const DISTANCE_GRAIN: usize = 2048;

/// Squared Mahalanobis distance of `row` under `(mean, inv)`, shared by the
/// serial scoring path and the parallel C-step distance pass. `centered` is
/// caller-provided scratch of dimension length: the kernel is allocation-
/// free, which matters because it runs once per row per C-step. The
/// accumulation order matches the original `matvec`-based kernel
/// bit-for-bit.
#[inline]
fn squared_distance(inv: &Matrix, mean: &[f64], row: &[f64], centered: &mut [f64]) -> f64 {
    debug_assert_eq!(row.len(), mean.len());
    debug_assert_eq!(centered.len(), mean.len());
    for ((c, r), m) in centered.iter_mut().zip(row.iter()).zip(mean.iter()) {
        *c = r - m;
    }
    let mut total = 0.0;
    for (i, &ci) in centered.iter().enumerate() {
        let row_i = inv.row(i);
        let transformed: f64 = row_i
            .iter()
            .zip(centered.iter())
            .map(|(a, b)| a * b)
            .sum();
        total += ci * transformed;
    }
    total
}

/// Fill `distances` with `(d², row index)` for every row of `sample` under
/// `(mean, inv)`, scattering chunks onto `pool` when the sample is large
/// enough to amortize submission. Scratch is per *chunk*, not per row, so
/// the pass performs O(tasks) allocations instead of O(rows). The
/// arithmetic per row is identical to the serial loop, so results are
/// bit-identical regardless of thread count.
fn distance_pass(
    pool: &Pool,
    sample: &[Vec<f64>],
    mean: &[f64],
    inv: &Matrix,
    distances: &mut Vec<(f64, usize)>,
) {
    distances.clear();
    distances.resize(sample.len(), (0.0, 0));
    pool.parallel_for(distances, DISTANCE_GRAIN, |start, chunk| {
        let mut centered = vec![0.0; mean.len()];
        for (offset, slot) in chunk.iter_mut().enumerate() {
            let index = start + offset;
            *slot = (
                squared_distance(inv, mean, &sample[index], &mut centered),
                index,
            );
        }
    });
}

/// Configuration for the FastMCD estimator.
#[derive(Debug, Clone)]
pub struct FastMcdConfig {
    /// Fraction of the sample used for the robust subset `h` (`0.5..=1.0`).
    /// The paper (and the reference implementation) default to `0.5`, the
    /// maximum-breakdown choice.
    pub support_fraction: f64,
    /// Number of random restarts. More restarts improve the chance of
    /// escaping a bad initial subset; FastMCD's authors recommend a handful.
    pub num_starts: usize,
    /// Maximum number of C-steps per restart.
    pub max_iterations: usize,
    /// Convergence threshold on the decrease of the covariance log-determinant.
    pub tolerance: f64,
    /// Seed for the internal subset-selection RNG (deterministic training).
    pub seed: u64,
}

impl Default for FastMcdConfig {
    fn default() -> Self {
        FastMcdConfig {
            support_fraction: 0.5,
            num_starts: 4,
            max_iterations: 50,
            tolerance: 1e-7,
            seed: 0xC0FFEE,
        }
    }
}

/// FastMCD robust multivariate location/scatter estimator with
/// Mahalanobis-distance scoring.
#[derive(Debug, Clone)]
pub struct McdEstimator {
    config: FastMcdConfig,
    mean: Vec<f64>,
    covariance: Option<Matrix>,
    inverse_covariance: Option<Matrix>,
}

impl Default for McdEstimator {
    fn default() -> Self {
        Self::new(FastMcdConfig::default())
    }
}

impl McdEstimator {
    /// Create an untrained estimator with the given configuration.
    pub fn new(config: FastMcdConfig) -> Self {
        McdEstimator {
            config,
            mean: Vec::new(),
            covariance: None,
            inverse_covariance: None,
        }
    }

    /// Create an untrained estimator with default configuration.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The robust location estimate, if trained.
    pub fn location(&self) -> Option<&[f64]> {
        self.covariance.as_ref().map(|_| self.mean.as_slice())
    }

    /// The robust scatter (covariance) estimate, if trained.
    pub fn scatter(&self) -> Option<&Matrix> {
        self.covariance.as_ref()
    }

    /// The inverse scatter matrix, if trained (used by scoring and corr-max).
    pub fn inverse_scatter(&self) -> Option<&Matrix> {
        self.inverse_covariance.as_ref()
    }

    /// Squared Mahalanobis distance of `x` from the fitted distribution.
    pub fn squared_mahalanobis(&self, x: &[f64]) -> Result<f64> {
        let inv = self
            .inverse_covariance
            .as_ref()
            .ok_or(StatsError::NotTrained)?;
        if x.len() != self.mean.len() {
            return Err(StatsError::DimensionMismatch {
                expected: self.mean.len(),
                actual: x.len(),
            });
        }
        let mut centered = vec![0.0; self.mean.len()];
        Ok(squared_distance(inv, &self.mean, x, &mut centered).max(0.0))
    }

    /// Mahalanobis distance (square root of [`squared_mahalanobis`]).
    ///
    /// [`squared_mahalanobis`]: McdEstimator::squared_mahalanobis
    pub fn mahalanobis(&self, x: &[f64]) -> Result<f64> {
        Ok(self.squared_mahalanobis(x)?.sqrt())
    }

    /// Compute mean, covariance, and covariance factors of the rows
    /// selected by `indices` — without cloning a single row — ridge-
    /// regularizing the covariance until it factors. The factors are the
    /// *only* decomposition a C-step performs: the caller derives both the
    /// inverse and the log-determinant from them.
    fn fit_subset(
        sample: &[Vec<f64>],
        indices: &[usize],
    ) -> Result<(Vec<f64>, Matrix, SpdFactors)> {
        let (mean, mut cov) = covariance_of_indices(sample, indices)?;
        // Ridge-regularize until factorable; degenerate subsets (e.g.
        // repeated points) otherwise break the C-step.
        let mut ridge = 1e-9;
        loop {
            match SpdFactors::factor(&cov) {
                Ok(factors) => return Ok((mean, cov, factors)),
                Err(e) if ridge >= 1e3 => return Err(e),
                Err(_) => {
                    cov.add_diagonal(ridge);
                    ridge *= 10.0;
                }
            }
        }
    }

    /// One C-step: given a fit's inverse scatter, select the `h` points
    /// with the smallest Mahalanobis distances under it. The distance pass
    /// — the dominant cost of FastMCD training — fans out across `pool`
    /// for large samples. A NaN distance (a numerically destroyed fit)
    /// fails the step: silently sorting NaNs used to make the selected
    /// subset depend on the sort's encounter order.
    fn c_step(
        pool: &Pool,
        sample: &[Vec<f64>],
        mean: &[f64],
        inv: &Matrix,
        h: usize,
        distances: &mut Vec<(f64, usize)>,
    ) -> Result<Vec<usize>> {
        distance_pass(pool, sample, mean, inv, distances);
        if distances.iter().any(|(d2, _)| d2.is_nan()) {
            return Err(StatsError::NonFinite);
        }
        // Total order (no NaNs remain), stable so equal distances keep
        // ascending row order.
        distances.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(distances.iter().take(h).map(|&(_, idx)| idx).collect())
    }

    /// One full FastMCD restart: draw an elemental start with the restart-
    /// local RNG, then iterate C-steps to convergence. Exactly one matrix
    /// factorization per C-step (inside [`fit_subset`]); the inverse and
    /// log-determinant both come from those factors. Any failure —
    /// unfactorable subset after maximal ridging, NaN distances — fails
    /// *this restart only*; the caller skips to the next start.
    ///
    /// [`fit_subset`]: McdEstimator::fit_subset
    fn run_restart(
        config: &FastMcdConfig,
        pool: &Pool,
        sample: &[Vec<f64>],
        dim: usize,
        h: usize,
        start_index: usize,
    ) -> Result<RestartFit> {
        let n = sample.len();
        let mut rng = SplitMix64::new(config.seed).split(start_index as u64);
        // Initial subset: d + 1 random distinct points (FastMCD's elemental
        // start), falling back to 2 points when the sample is tiny.
        let init_size = (dim + 1).min(n).max(2);
        let mut indices: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates to pick `init_size` distinct indices.
        for i in 0..init_size {
            let j = i + rng.next_below(n - i);
            indices.swap(i, j);
        }
        let mut subset: Vec<usize> = indices[..init_size].to_vec();
        let mut distances: Vec<(f64, usize)> = Vec::with_capacity(n);

        let (mut mean, mut cov, mut factors) = Self::fit_subset(sample, &subset)?;
        let mut logdet = factors.log_abs_determinant();

        for _iter in 0..config.max_iterations {
            let inv = factors.inverse();
            subset = Self::c_step(pool, sample, &mean, &inv, h, &mut distances)?;
            let (new_mean, new_cov, new_factors) = Self::fit_subset(sample, &subset)?;
            let new_logdet = new_factors.log_abs_determinant();
            mean = new_mean;
            cov = new_cov;
            factors = new_factors;
            let converged = (logdet - new_logdet).abs() < config.tolerance;
            logdet = new_logdet;
            if converged {
                break;
            }
        }
        Ok(RestartFit {
            logdet,
            mean,
            cov,
            factors,
        })
    }

    /// [`Estimator::train`] on an explicit pool instead of the process-wide
    /// one. Restarts scatter as pool tasks and each restart's C-step
    /// distance passes fan out on the same pool (nested parallelism); the
    /// best-of-restarts merge is by lowest covariance log-determinant with
    /// ties broken by restart index, so the fit is a pure function of
    /// `(sample, config)` — bit-identical at any thread count, including
    /// `Pool::new(1)`.
    ///
    /// A failed restart (degenerate beyond ridging, NaN distances) is
    /// skipped; training errors only when *every* restart fails.
    pub fn train_on_pool(&mut self, pool: &Pool, sample: &[Vec<f64>]) -> Result<()> {
        let dim = crate::validate_sample(sample)?;
        let n = sample.len();
        // Need enough points for a non-degenerate covariance of a subset.
        let min_required = (dim + 2).max(4);
        if n < min_required {
            return Err(StatsError::InsufficientData {
                required: min_required,
                provided: n,
            });
        }
        if !(0.5..=1.0).contains(&self.config.support_fraction) {
            return Err(StatsError::InvalidParameter(format!(
                "support_fraction must be in [0.5, 1.0], got {}",
                self.config.support_fraction
            )));
        }

        let h = ((n as f64 * self.config.support_fraction).ceil() as usize)
            .max(dim + 1)
            .min(n);

        // Scatter: one pool task per restart, each with an RNG split
        // deterministically from the seed by restart index.
        let config = &self.config;
        let starts: Vec<usize> = (0..self.config.num_starts.max(1)).collect();
        let results: Vec<Result<RestartFit>> = pool.map_vec(starts, |start| {
            Self::run_restart(config, pool, sample, dim, h, start)
        });

        // Gather: deterministic best-of-restarts merge — lowest covariance
        // log-determinant wins; the strict `<` over index order breaks ties
        // toward the lowest restart index. Failed restarts are skipped;
        // the first failure is surfaced only if no restart succeeded.
        let mut best: Option<RestartFit> = None;
        let mut first_error: Option<StatsError> = None;
        for result in results {
            match result {
                Ok(fit) => {
                    if best.as_ref().map_or(true, |b| fit.logdet < b.logdet) {
                        best = Some(fit);
                    }
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        let Some(fit) = best else {
            return Err(first_error.unwrap_or(StatsError::SingularMatrix));
        };

        // The winning restart's factors are already the factors of its
        // (ridged-if-needed) covariance: the scoring inverse reuses them
        // instead of decomposing a third time.
        self.mean = fit.mean;
        self.inverse_covariance = Some(fit.factors.inverse());
        self.covariance = Some(fit.cov);
        Ok(())
    }

    /// Squared Mahalanobis distances of every row of `rows` from the fitted
    /// distribution, computed in parallel on the shared pool — the same
    /// pass a C-step performs during training, exposed for batch scoring
    /// and the hot-path micro-benchmarks.
    pub fn squared_mahalanobis_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        let inv = self
            .inverse_covariance
            .as_ref()
            .ok_or(StatsError::NotTrained)?;
        if let Some(row) = rows.iter().find(|row| row.len() != self.mean.len()) {
            return Err(StatsError::DimensionMismatch {
                expected: self.mean.len(),
                actual: row.len(),
            });
        }
        let mut distances = Vec::new();
        distance_pass(mb_pool::global(), rows, &self.mean, inv, &mut distances);
        Ok(distances.into_iter().map(|(d2, _)| d2.max(0.0)).collect())
    }
}

/// The outcome of one successful FastMCD restart: the converged fit and
/// the factors of its covariance (reused for the final scoring inverse).
struct RestartFit {
    logdet: f64,
    mean: Vec<f64>,
    cov: Matrix,
    factors: SpdFactors,
}

impl Estimator for McdEstimator {
    fn train(&mut self, sample: &[Vec<f64>]) -> Result<()> {
        self.train_on_pool(mb_pool::global(), sample)
    }

    fn score(&self, metrics: &[f64]) -> Result<f64> {
        self.mahalanobis(metrics)
    }

    fn score_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        // The parallel distance pass, then the same clamp-and-sqrt as
        // `score` — bit-identical to scoring row by row.
        Ok(self
            .squared_mahalanobis_batch(rows)?
            .into_iter()
            .map(f64::sqrt)
            .collect())
    }

    fn score_batch_flat(&self, flat: &[f64], dim: usize) -> Result<Vec<f64>> {
        // Same parallel distance pass over the contiguous row-major buffer;
        // per-row arithmetic and clamp-and-sqrt are identical to `score`,
        // so results are bit-identical regardless of layout or threads.
        let inv = self
            .inverse_covariance
            .as_ref()
            .ok_or(StatsError::NotTrained)?;
        if dim != self.mean.len() || flat.len() % self.mean.len() != 0 {
            return Err(StatsError::DimensionMismatch {
                expected: self.mean.len(),
                actual: if dim != self.mean.len() {
                    dim
                } else {
                    flat.len() % self.mean.len()
                },
            });
        }
        let mut scores = vec![0.0; flat.len() / dim];
        let mean = &self.mean;
        mb_pool::global().parallel_for(&mut scores, DISTANCE_GRAIN, |start, chunk| {
            let mut centered = vec![0.0; dim];
            for (offset, slot) in chunk.iter_mut().enumerate() {
                let row = &flat[(start + offset) * dim..(start + offset + 1) * dim];
                *slot = squared_distance(inv, mean, row, &mut centered)
                    .max(0.0)
                    .sqrt();
            }
        });
        Ok(scores)
    }

    fn dimension(&self) -> Option<usize> {
        self.covariance.as_ref().map(|_| self.mean.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_ext::{normal, SplitMix64};

    fn gaussian_cloud(
        rng: &mut SplitMix64,
        n: usize,
        center: &[f64],
        std_dev: f64,
    ) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| center.iter().map(|&c| normal(rng, c, std_dev)).collect())
            .collect()
    }

    #[test]
    fn untrained_estimator_errors() {
        let est = McdEstimator::with_defaults();
        assert_eq!(est.score(&[1.0, 2.0]), Err(StatsError::NotTrained));
        assert!(!est.is_trained());
    }

    #[test]
    fn insufficient_data_is_rejected() {
        let mut est = McdEstimator::with_defaults();
        assert!(matches!(
            est.train(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn invalid_support_fraction_rejected() {
        let cfg = FastMcdConfig {
            support_fraction: 0.3,
            ..FastMcdConfig::default()
        };
        let mut est = McdEstimator::new(cfg);
        let mut rng = SplitMix64::new(1);
        let sample = gaussian_cloud(&mut rng, 100, &[0.0, 0.0], 1.0);
        assert!(matches!(
            est.train(&sample),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn recovers_gaussian_center() {
        let mut rng = SplitMix64::new(11);
        let sample = gaussian_cloud(&mut rng, 2000, &[5.0, -3.0], 2.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let loc = est.location().unwrap();
        assert!((loc[0] - 5.0).abs() < 0.5, "location[0] = {}", loc[0]);
        assert!((loc[1] + 3.0).abs() < 0.5, "location[1] = {}", loc[1]);
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        let mut rng = SplitMix64::new(21);
        let sample = gaussian_cloud(&mut rng, 1000, &[0.0, 0.0, 0.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let inlier_score = est.score(&[0.5, -0.5, 0.2]).unwrap();
        let outlier_score = est.score(&[20.0, 20.0, 20.0]).unwrap();
        assert!(outlier_score > 10.0 * inlier_score);
    }

    #[test]
    fn robust_to_forty_percent_contamination() {
        // The defining property of MCD (Figure 3): a 40% cluster of extreme
        // points must not drag the fitted center toward itself.
        let mut rng = SplitMix64::new(31);
        let mut sample = gaussian_cloud(&mut rng, 600, &[0.0, 0.0], 1.0);
        sample.extend(gaussian_cloud(&mut rng, 400, &[1000.0, 1000.0], 1.0));
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let loc = est.location().unwrap();
        assert!(loc[0].abs() < 5.0, "location dragged to {loc:?}");
        assert!(loc[1].abs() < 5.0, "location dragged to {loc:?}");
        // And the contaminating cluster still scores as extremely outlying.
        assert!(est.score(&[1000.0, 1000.0]).unwrap() > 50.0);
    }

    #[test]
    fn mahalanobis_of_center_is_zero() {
        let mut rng = SplitMix64::new(41);
        let sample = gaussian_cloud(&mut rng, 500, &[2.0, 2.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let loc: Vec<f64> = est.location().unwrap().to_vec();
        assert!(est.score(&loc).unwrap() < 1e-6);
    }

    #[test]
    fn score_batch_flat_is_bit_identical_to_row_scoring() {
        let mut rng = SplitMix64::new(61);
        let sample = gaussian_cloud(&mut rng, 400, &[1.0, -2.0, 0.5], 1.5);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let queries = gaussian_cloud(&mut rng, 257, &[0.0, 0.0, 0.0], 3.0);
        let flat: Vec<f64> = queries.iter().flatten().copied().collect();
        let flat_scores = est.score_batch_flat(&flat, 3).unwrap();
        assert_eq!(est.score_batch(&queries).unwrap(), flat_scores);
        let serial: Vec<f64> = queries.iter().map(|q| est.score(q).unwrap()).collect();
        assert_eq!(serial, flat_scores);
        assert!(matches!(
            est.score_batch_flat(&flat, 4),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_on_score() {
        let mut rng = SplitMix64::new(51);
        let sample = gaussian_cloud(&mut rng, 100, &[0.0, 0.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(matches!(
            est.score(&[1.0, 2.0, 3.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn handles_degenerate_dimension_via_regularization() {
        // Third dimension is constant -> covariance singular without ridging.
        let mut rng = SplitMix64::new(61);
        let sample: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0), 7.0])
            .collect();
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(est.score(&[0.0, 0.0, 7.0]).unwrap().is_finite());
        assert!(est.score(&[10.0, 10.0, 7.0]).unwrap() > 1.0);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let mut rng = SplitMix64::new(71);
        let sample = gaussian_cloud(&mut rng, 300, &[1.0, 2.0], 1.5);
        let mut a = McdEstimator::with_defaults();
        let mut b = McdEstimator::with_defaults();
        a.train(&sample).unwrap();
        b.train(&sample).unwrap();
        assert_eq!(a.location().unwrap(), b.location().unwrap());
        assert_eq!(
            a.score(&[3.0, 3.0]).unwrap(),
            b.score(&[3.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn batch_distances_match_single_point_scoring() {
        // The batch pass must agree with per-point scoring even when the
        // sample is large enough for the parallel path to engage.
        let mut rng = SplitMix64::new(91);
        let sample = gaussian_cloud(&mut rng, 1_000, &[1.0, -1.0, 0.5], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let rows = gaussian_cloud(&mut rng, 10_000, &[1.0, -1.0, 0.5], 3.0);
        let batch = est.squared_mahalanobis_batch(&rows).unwrap();
        assert_eq!(batch.len(), rows.len());
        for (row, &d2) in rows.iter().zip(batch.iter()) {
            assert_eq!(d2, est.squared_mahalanobis(row).unwrap());
        }
    }

    #[test]
    fn batch_distances_validate_training_and_dimensions() {
        let untrained = McdEstimator::with_defaults();
        assert_eq!(
            untrained.squared_mahalanobis_batch(&[vec![0.0]]),
            Err(StatsError::NotTrained)
        );
        let mut rng = SplitMix64::new(92);
        let sample = gaussian_cloud(&mut rng, 200, &[0.0, 0.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(matches!(
            est.squared_mahalanobis_batch(&[vec![1.0, 2.0, 3.0]]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn training_is_identical_above_the_parallel_threshold() {
        // 6_000 rows puts every C-step's distance pass on the pool; the fit
        // must be bit-identical to what the serial path produced (same
        // arithmetic per row, same sort input).
        let mut rng = SplitMix64::new(93);
        let sample = gaussian_cloud(&mut rng, 6_000, &[3.0, -2.0], 1.5);
        let mut a = McdEstimator::with_defaults();
        let mut b = McdEstimator::with_defaults();
        a.train(&sample).unwrap();
        b.train(&sample).unwrap();
        assert_eq!(a.location().unwrap(), b.location().unwrap());
        assert_eq!(a.score(&[5.0, 5.0]).unwrap(), b.score(&[5.0, 5.0]).unwrap());
    }

    #[test]
    fn trains_on_small_scaled_data() {
        // Covariance entries of 1e-7-unit data are ~1e-14: the old absolute
        // pivot threshold misreported them as singular, so the ridge loop
        // swamped the real covariance with a 1e-9 ridge and scores went
        // flat. With the scale-relative threshold the fit is correct and a
        // 10-sigma point scores like one.
        let mut rng = SplitMix64::new(101);
        let sample: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![normal(&mut rng, 0.0, 1e-7), normal(&mut rng, 0.0, 1e-7)])
            .collect();
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let center: Vec<f64> = est.location().unwrap().to_vec();
        assert!(est.score(&center).unwrap() < 1e-3);
        let ten_sigma = est.score(&[1e-6, -1e-6]).unwrap();
        assert!(ten_sigma > 5.0, "10-sigma point scored only {ten_sigma}");
    }

    #[test]
    fn c_step_rejects_nan_distances() {
        // A NaN in the inverse scatter poisons every distance; the C-step
        // must surface that as an error instead of sorting NaNs into an
        // encounter-order-dependent subset.
        let pool = mb_pool::Pool::new(1);
        let sample = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let inv = Matrix::from_vec(1, 1, vec![f64::NAN]);
        let mut distances = Vec::new();
        assert_eq!(
            McdEstimator::c_step(&pool, &sample, &[0.0], &inv, 2, &mut distances),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn failed_restarts_are_skipped_not_fatal() {
        // 40% of the sample sits at ±1e160: any elemental start touching
        // one of those points overflows its covariance to infinity and the
        // restart fails. Training must skip such restarts and fit from the
        // clean ones.
        let mut rng = SplitMix64::new(77);
        let mut sample = gaussian_cloud(&mut rng, 120, &[0.0], 1.0);
        for i in 0..80 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sample.push(vec![sign * 1e160]);
        }
        let config = FastMcdConfig {
            num_starts: 8,
            ..FastMcdConfig::default()
        };
        // Pin the mixed outcome this sample is built to produce: some
        // restarts fail (their elemental start hits an overflow point),
        // some succeed — exercising the skip-and-merge path for real.
        let n = sample.len();
        let dim = 1;
        let h = ((n as f64 * config.support_fraction).ceil() as usize)
            .max(dim + 1)
            .min(n);
        let pool = mb_pool::Pool::new(2);
        let outcomes: Vec<bool> = (0..config.num_starts)
            .map(|start| {
                McdEstimator::run_restart(&config, &pool, &sample, dim, h, start).is_ok()
            })
            .collect();
        assert!(
            outcomes.iter().any(|&ok| ok) && outcomes.iter().any(|&ok| !ok),
            "sample should produce both failed and successful restarts, got {outcomes:?}"
        );
        let mut est = McdEstimator::new(config);
        est.train(&sample).unwrap();
        let loc = est.location().unwrap();
        assert!(loc[0].abs() < 2.0, "location dragged to {loc:?}");
    }

    #[test]
    fn training_errors_only_when_every_restart_fails() {
        // Every pair of these points is ~1e160 apart, so every subset's
        // covariance overflows to infinity, every restart fails, and the
        // first restart error is surfaced.
        let sample: Vec<Vec<f64>> = (0..40).map(|i| vec![(i + 1) as f64 * 1e160]).collect();
        let mut est = McdEstimator::with_defaults();
        assert_eq!(est.train(&sample), Err(StatsError::SingularMatrix));
        assert!(!est.is_trained());
    }

    #[test]
    fn score_batch_matches_per_row_scoring_exactly() {
        let mut rng = SplitMix64::new(83);
        let sample = gaussian_cloud(&mut rng, 800, &[0.0, 1.0], 1.0);
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        let rows = gaussian_cloud(&mut rng, 3_000, &[0.0, 1.0], 2.0);
        let batch = est.score_batch(&rows).unwrap();
        for (row, &s) in rows.iter().zip(batch.iter()) {
            assert_eq!(s, est.score(row).unwrap());
        }
    }

    #[test]
    fn explicit_pools_reproduce_global_pool_training_bitwise() {
        // 6_000 rows puts every C-step's distance pass over the parallel
        // grain; restarts also scatter. The fit must be a pure function of
        // (sample, config): one worker, four workers, and the global pool
        // must agree to the bit.
        let mut rng = SplitMix64::new(97);
        let sample = gaussian_cloud(&mut rng, 6_000, &[3.0, -2.0], 1.5);
        let mut serial = McdEstimator::with_defaults();
        let mut wide = McdEstimator::with_defaults();
        let mut global = McdEstimator::with_defaults();
        serial
            .train_on_pool(&mb_pool::Pool::new(1), &sample)
            .unwrap();
        wide.train_on_pool(&mb_pool::Pool::new(4), &sample).unwrap();
        global.train(&sample).unwrap();
        assert_eq!(serial.location().unwrap(), wide.location().unwrap());
        assert_eq!(serial.location().unwrap(), global.location().unwrap());
        assert_eq!(serial.scatter().unwrap(), wide.scatter().unwrap());
        assert_eq!(serial.scatter().unwrap(), global.scatter().unwrap());
        assert_eq!(
            serial.score(&[5.0, 5.0]).unwrap(),
            wide.score(&[5.0, 5.0]).unwrap()
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        // Parallel-restart training is bit-identical to serial for any
        // seed and dimension: location, scatter, and scores all match
        // between a one-worker pool and a multi-worker pool.
        #[test]
        fn parallel_restart_training_is_bit_identical_to_serial(
            seed in 0u64..1_000,
            dim in 1usize..4,
        ) {
            let mut rng = SplitMix64::new(seed.wrapping_add(0x5EED));
            let center: Vec<f64> = (0..dim).map(|i| i as f64 - 1.0).collect();
            let sample = gaussian_cloud(&mut rng, 150, &center, 1.5);
            let mut serial = McdEstimator::with_defaults();
            let mut parallel = McdEstimator::with_defaults();
            serial.train_on_pool(&mb_pool::Pool::new(1), &sample).unwrap();
            parallel.train_on_pool(&mb_pool::Pool::new(3), &sample).unwrap();
            proptest::prop_assert_eq!(serial.location().unwrap(), parallel.location().unwrap());
            proptest::prop_assert_eq!(serial.scatter().unwrap(), parallel.scatter().unwrap());
            let probe: Vec<f64> = vec![2.5; dim];
            proptest::prop_assert_eq!(
                serial.score(&probe).unwrap(),
                parallel.score(&probe).unwrap()
            );
        }
    }

    #[test]
    fn univariate_mcd_works() {
        let mut rng = SplitMix64::new(81);
        let sample: Vec<Vec<f64>> = (0..400).map(|_| vec![normal(&mut rng, 10.0, 2.0)]).collect();
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();
        assert!(est.score(&[10.0]).unwrap() < est.score(&[40.0]).unwrap());
    }
}
