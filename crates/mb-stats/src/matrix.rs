//! A small, dependency-free dense matrix type.
//!
//! FastMCD (Section 4.1 / Appendix A) needs covariance matrices, their
//! determinants, and their inverses for Mahalanobis distances. MacroBase
//! queries have at most a few dozen metrics, so a straightforward row-major
//! `Vec<f64>` with LU decomposition is more than fast enough and avoids
//! pulling a linear-algebra dependency into the workspace.

use crate::{Result, StatsError};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major vector. Panics if the length does not
    /// equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length must equal rows * cols"
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(StatsError::EmptyInput);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(StatsError::DimensionMismatch {
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix-matrix product. Returns an error on incompatible shapes.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *slot = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Scale every entry by a constant.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Element-wise addition. Returns an error on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Singularity threshold relative to the magnitude of this matrix's
    /// entries: `n · ε · max|a_ij|`. A pivot (or Cholesky diagonal term)
    /// below this is indistinguishable from rounding noise *at the scale of
    /// the input*, which is what "numerically singular" should mean — an
    /// absolute cutoff misreports well-conditioned but small-scaled matrices
    /// (e.g. the covariance of data measured in 1e-7 units) as singular.
    fn singularity_threshold(&self) -> f64 {
        self.max_abs() * self.rows.max(self.cols) as f64 * f64::EPSILON
    }

    /// LU-decompose this square matrix with partial pivoting (Doolittle)
    /// into reusable [`LuFactors`]. Returns an error for non-square or
    /// numerically singular matrices (pivot below the scale-relative
    /// threshold).
    pub fn lu(&self) -> Result<LuFactors> {
        if !self.is_square() {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let threshold = self.singularity_threshold();
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Partial pivot: find the largest |value| in this column.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            // A NaN pivot means the input held non-finite values; report
            // that distinctly instead of poisoning the factors (or
            // misreporting the matrix as singular).
            if pivot_val.is_nan() {
                return Err(StatsError::NonFinite);
            }
            if pivot_val <= threshold {
                return Err(StatsError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for j in (col + 1)..n {
                    let delta = factor * lu[(col, j)];
                    lu[(r, j)] -= delta;
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Determinant via LU decomposition. Returns 0.0 for singular matrices;
    /// non-finite input is an error ([`StatsError::NonFinite`]), never a
    /// confidently-zero answer.
    pub fn determinant(&self) -> Result<f64> {
        match self.lu() {
            Ok(factors) => Ok(factors.determinant()),
            Err(StatsError::SingularMatrix) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Log-determinant (natural log of |det|) via LU; numerically preferable
    /// to `determinant()` for high-dimensional covariance matrices whose
    /// determinant under/overflows. Returns an error if singular.
    ///
    /// Callers that also need `solve`/`inverse` should factor once with
    /// [`Matrix::lu`] and reuse the [`LuFactors`].
    pub fn log_abs_determinant(&self) -> Result<f64> {
        Ok(self.lu()?.log_abs_determinant())
    }

    /// Solve `A x = b` via the LU decomposition of `self`.
    ///
    /// One-shot convenience; to solve against several right-hand sides,
    /// factor once with [`Matrix::lu`] and call [`LuFactors::solve`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        self.lu()?.solve(b)
    }

    /// Matrix inverse via LU decomposition (column-by-column solve over one
    /// shared factorization).
    pub fn inverse(&self) -> Result<Matrix> {
        Ok(self.lu()?.inverse())
    }

    /// Cholesky decomposition of a symmetric positive-definite matrix,
    /// returning the lower-triangular factor `L` such that `L Lᵀ = A`.
    ///
    /// Rejects matrices whose pivot `L_ii²` falls below the scale-relative
    /// singularity threshold (or is NaN from overflowed input): those are
    /// numerically semi-definite and their factors would amplify rounding
    /// noise unboundedly.
    pub fn cholesky(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let threshold = self.singularity_threshold();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    // NaN (non-finite input) is reported distinctly; it
                    // must never reach the factors.
                    if sum.is_nan() {
                        return Err(StatsError::NonFinite);
                    }
                    if sum <= threshold {
                        return Err(StatsError::SingularMatrix);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Cholesky-decompose this symmetric positive-definite matrix into
    /// reusable [`CholeskyFactors`].
    pub fn cholesky_factors(&self) -> Result<CholeskyFactors> {
        Ok(CholeskyFactors {
            l: self.cholesky()?,
        })
    }

    /// Add `value` to every diagonal entry (ridge regularization used when a
    /// covariance matrix is numerically singular).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry (used in tests and convergence checks).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }
}

/// A reusable LU factorization of a square, non-singular matrix.
///
/// FastMCD's C-step needs the covariance *inverse* (for Mahalanobis
/// distances) and its *log-determinant* (for the convergence test and the
/// best-of-restarts merge). Computing each through one-shot [`Matrix`]
/// methods re-runs the O(d³) decomposition every time — and
/// [`Matrix::inverse`] used to re-decompose once per *column*, making a
/// single inversion O(d⁴). Factoring once and deriving every product from
/// the shared factors makes the whole C-step cost exactly one
/// decomposition.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// L (unit diagonal, strictly below) and U (on and above the diagonal).
    lu: Matrix,
    /// Row permutation applied by partial pivoting.
    perm: Vec<usize>,
    /// Permutation parity (+1/-1).
    sign: f64,
}

impl LuFactors {
    /// Size of the factored matrix.
    pub fn dimension(&self) -> usize {
        self.lu.rows
    }

    /// Solve `A x = b` by forward/backward substitution through the factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.lu.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.lu.rows,
                actual: b.len(),
            });
        }
        let mut x = vec![0.0; b.len()];
        self.solve_into(b, &mut x);
        Ok(x)
    }

    /// [`solve`](LuFactors::solve) into a caller-provided buffer
    /// (allocation-free; `b` and `x` must both have the factored dimension).
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "rhs length must equal the factored dimension");
        assert_eq!(x.len(), n, "out length must equal the factored dimension");
        // Forward substitution on the permuted RHS (L has unit diagonal),
        // writing y into x ...
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            let row = self.lu.row(i);
            for (j, xj) in x[..i].iter().enumerate() {
                acc -= row[j] * xj;
            }
            x[i] = acc;
        }
        // ... then backward substitution through U in place: entries above
        // `i` are already final when row `i` reads them.
        for i in (0..n).rev() {
            let mut acc = x[i];
            let row = self.lu.row(i);
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= row[j] * xj;
            }
            x[i] = acc / row[i];
        }
    }

    /// Matrix inverse: one unit-vector solve per column over the shared
    /// factors — O(d³) total, not O(d⁴).
    pub fn inverse(&self) -> Matrix {
        let n = self.lu.rows;
        let mut out = Matrix::zeros(n, n);
        let mut unit = vec![0.0; n];
        let mut x = vec![0.0; n];
        for col in 0..n {
            unit.iter_mut().for_each(|v| *v = 0.0);
            unit[col] = 1.0;
            self.solve_into(&unit, &mut x);
            for row in 0..n {
                out[(row, col)] = x[row];
            }
        }
        out
    }

    /// Natural log of |det A| — `Σ ln |U_ii|`. Cannot fail: the pivot
    /// threshold guarantees every diagonal entry is nonzero.
    pub fn log_abs_determinant(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.lu.rows {
            acc += self.lu[(i, i)].abs().ln();
        }
        acc
    }

    /// Determinant — permutation parity times `Π U_ii`.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.lu.rows {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// A reusable Cholesky factorization `A = L Lᵀ` of a symmetric
/// positive-definite matrix.
///
/// For SPD input (covariance matrices) this is the fast path: roughly half
/// the flops of LU, no pivoting, and the log-determinant falls out of the
/// factor diagonal. Same factor-once contract as [`LuFactors`].
#[derive(Debug, Clone)]
pub struct CholeskyFactors {
    l: Matrix,
}

impl CholeskyFactors {
    /// Size of the factored matrix.
    pub fn dimension(&self) -> usize {
        self.l.rows
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via `L y = b` then `Lᵀ x = y`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.l.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.l.rows,
                actual: b.len(),
            });
        }
        let mut x = vec![0.0; b.len()];
        self.solve_into(b, &mut x);
        Ok(x)
    }

    /// [`solve`](CholeskyFactors::solve) into a caller-provided buffer.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.l.rows;
        assert_eq!(b.len(), n, "rhs length must equal the factored dimension");
        assert_eq!(x.len(), n, "out length must equal the factored dimension");
        // Forward substitution through L (non-unit diagonal).
        for i in 0..n {
            let mut acc = b[i];
            let row = self.l.row(i);
            for (j, xj) in x[..i].iter().enumerate() {
                acc -= row[j] * xj;
            }
            x[i] = acc / row[i];
        }
        // Backward substitution through Lᵀ (column access on L).
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.l[(j, i)] * xj;
            }
            x[i] = acc / self.l[(i, i)];
        }
    }

    /// Matrix inverse: one unit-vector solve per column over the shared
    /// factors.
    pub fn inverse(&self) -> Matrix {
        let n = self.l.rows;
        let mut out = Matrix::zeros(n, n);
        let mut unit = vec![0.0; n];
        let mut x = vec![0.0; n];
        for col in 0..n {
            unit.iter_mut().for_each(|v| *v = 0.0);
            unit[col] = 1.0;
            self.solve_into(&unit, &mut x);
            for row in 0..n {
                out[(row, col)] = x[row];
            }
        }
        out
    }

    /// Natural log of det A — `2 Σ ln L_ii` (an SPD determinant is positive).
    pub fn log_abs_determinant(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.l.rows {
            acc += self.l[(i, i)].ln();
        }
        2.0 * acc
    }
}

/// Factors of a symmetric positive-definite matrix: Cholesky when the
/// matrix is numerically positive-definite, LU with partial pivoting as the
/// fallback for merely-invertible (e.g. slightly asymmetric or indefinite
/// after ridging) input.
///
/// This is the decomposition object FastMCD carries through a C-step: one
/// factorization yields the inverse for the distance pass *and* the
/// log-determinant for convergence/merging.
#[derive(Debug, Clone)]
pub enum SpdFactors {
    /// Cholesky fast path (SPD input).
    Cholesky(CholeskyFactors),
    /// LU fallback (invertible but not numerically SPD).
    Lu(LuFactors),
}

impl SpdFactors {
    /// Factor `m`, preferring Cholesky and falling back to LU. Errors only
    /// when both report the matrix as numerically singular.
    pub fn factor(m: &Matrix) -> Result<SpdFactors> {
        match m.cholesky_factors() {
            Ok(c) => Ok(SpdFactors::Cholesky(c)),
            Err(_) => m.lu().map(SpdFactors::Lu),
        }
    }

    /// Size of the factored matrix.
    pub fn dimension(&self) -> usize {
        match self {
            SpdFactors::Cholesky(c) => c.dimension(),
            SpdFactors::Lu(l) => l.dimension(),
        }
    }

    /// Matrix inverse from the shared factors.
    pub fn inverse(&self) -> Matrix {
        match self {
            SpdFactors::Cholesky(c) => c.inverse(),
            SpdFactors::Lu(l) => l.inverse(),
        }
    }

    /// Natural log of |det| from the shared factors.
    pub fn log_abs_determinant(&self) -> f64 {
        match self {
            SpdFactors::Cholesky(c) => c.log_abs_determinant(),
            SpdFactors::Lu(l) => l.log_abs_determinant(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Compute the column-wise mean of a set of equal-length rows.
pub fn column_means(rows: &[Vec<f64>]) -> Result<Vec<f64>> {
    let dim = crate::validate_sample(rows)?;
    let mut means = vec![0.0; dim];
    for row in rows {
        for (m, v) in means.iter_mut().zip(row.iter()) {
            *m += v;
        }
    }
    let n = rows.len() as f64;
    means.iter_mut().for_each(|m| *m /= n);
    Ok(means)
}

/// Sample covariance matrix (dividing by `n - 1`) of a set of rows.
///
/// Returns `(mean, covariance)`.
pub fn covariance_matrix(rows: &[Vec<f64>]) -> Result<(Vec<f64>, Matrix)> {
    let dim = crate::validate_sample(rows)?;
    if rows.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            provided: rows.len(),
        });
    }
    let means = column_means(rows)?;
    let mut cov = Matrix::zeros(dim, dim);
    for row in rows {
        for i in 0..dim {
            let di = row[i] - means[i];
            for j in i..dim {
                let dj = row[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let denom = (rows.len() - 1) as f64;
    for i in 0..dim {
        for j in i..dim {
            cov[(i, j)] /= denom;
            if i != j {
                cov[(j, i)] = cov[(i, j)];
            }
        }
    }
    Ok((means, cov))
}

/// Sample mean and covariance of the rows of `sample` selected by
/// `indices`, visited in `indices` order — the arithmetic (and therefore
/// the bits) matches materializing the selected rows and calling
/// [`covariance_matrix`], without cloning a single row. FastMCD re-fits a
/// subset of up to half the sample on *every* C-step, so the clone-free
/// path matters there.
///
/// Indices are bounds-checked and the selected rows length-checked
/// (typed errors, no panics). Unlike [`covariance_matrix`], rows are *not*
/// re-scanned for non-finite values — callers like FastMCD validate the
/// sample once up front; a NaN row yields a NaN covariance, which the
/// factorization routines reject as [`StatsError::NonFinite`].
pub fn covariance_of_indices(
    sample: &[Vec<f64>],
    indices: &[usize],
) -> Result<(Vec<f64>, Matrix)> {
    if indices.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            provided: indices.len(),
        });
    }
    let dim = sample
        .first()
        .map(|row| row.len())
        .ok_or(StatsError::EmptyInput)?;
    for &idx in indices {
        let row = sample.get(idx).ok_or_else(|| {
            StatsError::InvalidParameter(format!(
                "row index {idx} out of bounds for sample of {} rows",
                sample.len()
            ))
        })?;
        if row.len() != dim {
            return Err(StatsError::DimensionMismatch {
                expected: dim,
                actual: row.len(),
            });
        }
    }
    let mut means = vec![0.0; dim];
    for &idx in indices {
        for (m, v) in means.iter_mut().zip(sample[idx].iter()) {
            *m += v;
        }
    }
    let n = indices.len() as f64;
    means.iter_mut().for_each(|m| *m /= n);
    let mut cov = Matrix::zeros(dim, dim);
    for &idx in indices {
        let row = &sample[idx];
        for i in 0..dim {
            let di = row[i] - means[i];
            for j in i..dim {
                let dj = row[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let denom = (indices.len() - 1) as f64;
    for i in 0..dim {
        for j in i..dim {
            cov[(i, j)] /= denom;
            if i != j {
                cov[(j, i)] = cov[(i, j)];
            }
        }
    }
    Ok((means, cov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn identity_is_identity() {
        let id = Matrix::identity(3);
        let m = Matrix::from_vec(3, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_close(c[(0, 0)], 58.0, 1e-12);
        assert_close(c[(0, 1)], 64.0, 1e-12);
        assert_close(c[(1, 0)], 139.0, 1e-12);
        assert_close(c[(1, 1)], 154.0, 1e-12);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_known_values() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 8.0, 4.0, 6.0]);
        assert_close(m.determinant().unwrap(), -14.0, 1e-9);
        let m3 = Matrix::from_vec(3, 3, vec![6.0, 1.0, 1.0, 4.0, -2.0, 5.0, 2.0, 8.0, 7.0]);
        assert_close(m3.determinant().unwrap(), -306.0, 1e-9);
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_close(m.determinant().unwrap(), 0.0, 1e-9);
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::from_vec(3, 3, vec![4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0]);
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv).unwrap();
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_close(prod[(i, j)], id[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn inverse_of_singular_fails() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.inverse(), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5 ; 3x + 4y = 11 -> x = 1, y = 2
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let x = a.solve(&[5.0, 11.0]).unwrap();
        assert_close(x[0], 1.0, 1e-9);
        assert_close(x[1], 2.0, 1e-9);
    }

    #[test]
    fn cholesky_round_trip() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 2.0, 2.0, 5.0, 1.0, 2.0, 1.0, 6.0]);
        let l = a.cholesky().unwrap();
        let lt = l.transpose();
        let prod = l.matmul(&lt).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(prod[(i, j)], a[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_positive_definite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert_eq!(a.cholesky(), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn log_determinant_matches_determinant() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]);
        let det = m.determinant().unwrap();
        let logdet = m.log_abs_determinant().unwrap();
        assert_close(logdet, det.abs().ln(), 1e-9);
    }

    #[test]
    fn covariance_of_known_sample() {
        let rows = vec![
            vec![2.0, 8.0],
            vec![4.0, 10.0],
            vec![6.0, 12.0],
            vec![8.0, 14.0],
        ];
        let (means, cov) = covariance_matrix(&rows).unwrap();
        assert_close(means[0], 5.0, 1e-12);
        assert_close(means[1], 11.0, 1e-12);
        // Perfectly correlated with variance 20/3 each (sample variance).
        assert_close(cov[(0, 0)], 20.0 / 3.0, 1e-9);
        assert_close(cov[(1, 1)], 20.0 / 3.0, 1e-9);
        assert_close(cov[(0, 1)], 20.0 / 3.0, 1e-9);
        assert_close(cov[(1, 0)], cov[(0, 1)], 1e-12);
    }

    #[test]
    fn covariance_requires_two_rows() {
        assert!(matches!(
            covariance_matrix(&[vec![1.0, 2.0]]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn small_scaled_matrices_are_not_misreported_as_singular() {
        // Regression: the old absolute pivot cutoff (1e-12) reported any
        // well-conditioned matrix with small-scaled entries — e.g. the
        // covariance of data measured in 1e-7 units, whose entries are
        // ~1e-14 — as singular (det 0.0, inverse Err). The threshold is now
        // relative to the matrix scale.
        let base = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let tiny = base.scale(1e-14);
        // det(base) = 3, so det(tiny) = 3e-28 — nonzero.
        let det = tiny.determinant().unwrap();
        assert!((det - 3e-28).abs() < 1e-37, "det = {det:e}");
        assert_close(tiny.log_abs_determinant().unwrap(), det.ln(), 1e-9);
        // The inverse round-trips.
        let inv = tiny.inverse().unwrap();
        let prod = tiny.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(prod[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-9);
            }
        }
        // And an exactly singular matrix at the same scale is still caught.
        let singular = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).scale(1e-14);
        assert_close(singular.determinant().unwrap(), 0.0, 1e-40);
        assert_eq!(singular.inverse(), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn cholesky_accepts_small_scales_and_rejects_overflow() {
        let tiny = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).scale(1e-14);
        let l = tiny.cholesky().unwrap();
        let prod = l.matmul(&l.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(prod[(i, j)], tiny[(i, j)], 1e-22);
            }
        }
        // An overflowed (infinite) covariance must be rejected, not
        // silently factored into NaN.
        let overflowed = Matrix::from_vec(2, 2, vec![f64::INFINITY, 0.0, 0.0, 1.0]);
        assert_eq!(overflowed.cholesky(), Err(StatsError::SingularMatrix));
        assert!(overflowed.lu().is_err());
    }

    #[test]
    fn nan_input_is_an_error_not_a_zero_determinant() {
        // NaN entries mean the input is corrupt, which must surface as
        // NonFinite — not as "singular" (and certainly not as det 0.0).
        let poisoned = Matrix::from_vec(2, 2, vec![f64::NAN, 0.0, 0.0, 1.0]);
        assert_eq!(poisoned.determinant(), Err(StatsError::NonFinite));
        assert_eq!(poisoned.lu().err(), Some(StatsError::NonFinite));
        assert_eq!(poisoned.cholesky(), Err(StatsError::NonFinite));
        assert_eq!(poisoned.inverse(), Err(StatsError::NonFinite));
    }

    #[test]
    fn lu_factors_match_single_shot_operations_exactly() {
        // Regression pin for the factor-once refactor: LuFactors must
        // reproduce Matrix::{solve, inverse, log_abs_determinant,
        // determinant} bit-for-bit — same elimination, same substitutions,
        // shared rather than repeated.
        let m = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, -2.0, 2.0, 1.0, 2.0, 0.0, 1.0, -2.0, 0.0, 3.0, -2.0, 2.0, 1.0, -2.0,
                -1.0,
            ],
        );
        let factors = m.lu().unwrap();
        assert_eq!(factors.dimension(), 4);
        let b = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(factors.solve(&b).unwrap(), m.solve(&b).unwrap());
        assert_eq!(factors.inverse(), m.inverse().unwrap());
        assert_eq!(
            factors.log_abs_determinant(),
            m.log_abs_determinant().unwrap()
        );
        assert_eq!(factors.determinant(), m.determinant().unwrap());
        // solve_into writes the same bits as solve.
        let mut out = [0.0; 4];
        factors.solve_into(&b, &mut out);
        assert_eq!(out.to_vec(), factors.solve(&b).unwrap());
    }

    #[test]
    fn cholesky_factors_agree_with_lu_numerically() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 2.0, 2.0, 5.0, 1.0, 2.0, 1.0, 6.0]);
        let chol = a.cholesky_factors().unwrap();
        let lu = a.lu().unwrap();
        assert_eq!(chol.dimension(), 3);
        assert_close(chol.log_abs_determinant(), lu.log_abs_determinant(), 1e-9);
        let b = [1.0, 2.0, 3.0];
        let xc = chol.solve(&b).unwrap();
        let xl = lu.solve(&b).unwrap();
        for (c, l) in xc.iter().zip(xl.iter()) {
            assert_close(*c, *l, 1e-9);
        }
        let ic = chol.inverse();
        let il = lu.inverse();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(ic[(i, j)], il[(i, j)], 1e-9);
            }
        }
        // The SPD dispatcher picks Cholesky here and LU for a non-SPD but
        // invertible matrix.
        assert!(matches!(
            SpdFactors::factor(&a).unwrap(),
            SpdFactors::Cholesky(_)
        ));
        let non_spd = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let f = SpdFactors::factor(&non_spd).unwrap();
        assert!(matches!(f, SpdFactors::Lu(_)));
        assert_eq!(f.dimension(), 2);
        assert_close(f.log_abs_determinant(), 0.0, 1e-12);
    }

    #[test]
    fn factor_solve_rejects_wrong_length_rhs() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]);
        assert!(matches!(
            m.lu().unwrap().solve(&[1.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            m.cholesky_factors().unwrap().solve(&[1.0, 2.0, 3.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn covariance_of_indices_matches_materialized_covariance() {
        let sample = vec![
            vec![2.0, 8.0],
            vec![4.0, 10.0],
            vec![6.0, 12.0],
            vec![8.0, 14.0],
            vec![1.0, -3.0],
        ];
        let indices = [3usize, 0, 4, 2];
        let rows: Vec<Vec<f64>> = indices.iter().map(|&i| sample[i].clone()).collect();
        let (mean_ref, cov_ref) = covariance_matrix(&rows).unwrap();
        let (mean, cov) = covariance_of_indices(&sample, &indices).unwrap();
        assert_eq!(mean, mean_ref);
        assert_eq!(cov, cov_ref);
        assert!(matches!(
            covariance_of_indices(&sample, &[0]),
            Err(StatsError::InsufficientData { .. })
        ));
        // Out-of-range indices and ragged selected rows are typed errors,
        // not panics.
        assert!(matches!(
            covariance_of_indices(&sample, &[0, 99]),
            Err(StatsError::InvalidParameter(_))
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            covariance_of_indices(&ragged, &[0, 1]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn add_diagonal_regularizes() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.inverse(), Err(StatsError::SingularMatrix));
        m.add_diagonal(0.5);
        assert!(m.inverse().is_ok());
    }

    proptest! {
        #[test]
        fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut m = Matrix::zeros(rows, cols);
            let mut state = seed.wrapping_add(1);
            for i in 0..rows {
                for j in 0..cols {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    m[(i, j)] = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                }
            }
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn solve_then_matvec_recovers_rhs(n in 1usize..5, seed in 0u64..1000) {
            let mut state = seed.wrapping_add(7);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            // Diagonally dominant matrices are always invertible.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += n as f64 + 1.0;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            for (orig, rec) in b.iter().zip(back.iter()) {
                prop_assert!((orig - rec).abs() < 1e-6);
            }
        }

        #[test]
        fn covariance_is_symmetric_psd_diagonal(nrows in 3usize..30, seed in 0u64..1000) {
            let mut state = seed.wrapping_add(13);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
            };
            let rows: Vec<Vec<f64>> = (0..nrows).map(|_| vec![next(), next(), next()]).collect();
            let (_, cov) = covariance_matrix(&rows).unwrap();
            for i in 0..3 {
                prop_assert!(cov[(i, i)] >= -1e-9);
                for j in 0..3 {
                    prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-9);
                }
            }
        }
    }
}
