//! A small, dependency-free dense matrix type.
//!
//! FastMCD (Section 4.1 / Appendix A) needs covariance matrices, their
//! determinants, and their inverses for Mahalanobis distances. MacroBase
//! queries have at most a few dozen metrics, so a straightforward row-major
//! `Vec<f64>` with LU decomposition is more than fast enough and avoids
//! pulling a linear-algebra dependency into the workspace.

use crate::{Result, StatsError};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major vector. Panics if the length does not
    /// equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length must equal rows * cols"
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(StatsError::EmptyInput);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(StatsError::DimensionMismatch {
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix-matrix product. Returns an error on incompatible shapes.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *slot = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Scale every entry by a constant.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Element-wise addition. Returns an error on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// LU decomposition with partial pivoting (Doolittle).
    ///
    /// Returns `(lu, perm, sign)` where `lu` stores L (unit diagonal,
    /// below) and U (on and above the diagonal), `perm` is the row
    /// permutation, and `sign` is the permutation parity (+1/-1). Returns an
    /// error for non-square or numerically singular matrices.
    fn lu_decompose(&self) -> Result<(Matrix, Vec<usize>, f64)> {
        if !self.is_square() {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Partial pivot: find the largest |value| in this column.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(StatsError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for j in (col + 1)..n {
                    let delta = factor * lu[(col, j)];
                    lu[(r, j)] -= delta;
                }
            }
        }
        Ok((lu, perm, sign))
    }

    /// Determinant via LU decomposition. Returns 0.0 for singular matrices.
    pub fn determinant(&self) -> Result<f64> {
        match self.lu_decompose() {
            Ok((lu, _, sign)) => {
                let mut det = sign;
                for i in 0..self.rows {
                    det *= lu[(i, i)];
                }
                Ok(det)
            }
            Err(StatsError::SingularMatrix) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Log-determinant (natural log of |det|) via LU; numerically preferable
    /// to `determinant()` for high-dimensional covariance matrices whose
    /// determinant under/overflows. Returns an error if singular.
    pub fn log_abs_determinant(&self) -> Result<f64> {
        let (lu, _, _) = self.lu_decompose()?;
        let mut acc = 0.0;
        for i in 0..self.rows {
            let d = lu[(i, i)].abs();
            if d <= 0.0 {
                return Err(StatsError::SingularMatrix);
            }
            acc += d.ln();
        }
        Ok(acc)
    }

    /// Solve `A x = b` via the LU decomposition of `self`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let (lu, perm, _) = self.lu_decompose()?;
        let n = self.rows;
        // Forward substitution on the permuted RHS (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[perm[i]];
            for j in 0..i {
                acc -= lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Backward substitution through U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= lu[(i, j)] * x[j];
            }
            x[i] = acc / lu[(i, i)];
        }
        Ok(x)
    }

    /// Matrix inverse via LU decomposition (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        let mut unit = vec![0.0; n];
        for col in 0..n {
            unit.iter_mut().for_each(|v| *v = 0.0);
            unit[col] = 1.0;
            let x = self.solve(&unit)?;
            for row in 0..n {
                out[(row, col)] = x[row];
            }
        }
        Ok(out)
    }

    /// Cholesky decomposition of a symmetric positive-definite matrix,
    /// returning the lower-triangular factor `L` such that `L Lᵀ = A`.
    pub fn cholesky(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(StatsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::SingularMatrix);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Add `value` to every diagonal entry (ridge regularization used when a
    /// covariance matrix is numerically singular).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry (used in tests and convergence checks).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Compute the column-wise mean of a set of equal-length rows.
pub fn column_means(rows: &[Vec<f64>]) -> Result<Vec<f64>> {
    let dim = crate::validate_sample(rows)?;
    let mut means = vec![0.0; dim];
    for row in rows {
        for (m, v) in means.iter_mut().zip(row.iter()) {
            *m += v;
        }
    }
    let n = rows.len() as f64;
    means.iter_mut().for_each(|m| *m /= n);
    Ok(means)
}

/// Sample covariance matrix (dividing by `n - 1`) of a set of rows.
///
/// Returns `(mean, covariance)`.
pub fn covariance_matrix(rows: &[Vec<f64>]) -> Result<(Vec<f64>, Matrix)> {
    let dim = crate::validate_sample(rows)?;
    if rows.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            provided: rows.len(),
        });
    }
    let means = column_means(rows)?;
    let mut cov = Matrix::zeros(dim, dim);
    for row in rows {
        for i in 0..dim {
            let di = row[i] - means[i];
            for j in i..dim {
                let dj = row[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let denom = (rows.len() - 1) as f64;
    for i in 0..dim {
        for j in i..dim {
            cov[(i, j)] /= denom;
            if i != j {
                cov[(j, i)] = cov[(i, j)];
            }
        }
    }
    Ok((means, cov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn identity_is_identity() {
        let id = Matrix::identity(3);
        let m = Matrix::from_vec(3, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_close(c[(0, 0)], 58.0, 1e-12);
        assert_close(c[(0, 1)], 64.0, 1e-12);
        assert_close(c[(1, 0)], 139.0, 1e-12);
        assert_close(c[(1, 1)], 154.0, 1e-12);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_known_values() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 8.0, 4.0, 6.0]);
        assert_close(m.determinant().unwrap(), -14.0, 1e-9);
        let m3 = Matrix::from_vec(3, 3, vec![6.0, 1.0, 1.0, 4.0, -2.0, 5.0, 2.0, 8.0, 7.0]);
        assert_close(m3.determinant().unwrap(), -306.0, 1e-9);
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_close(m.determinant().unwrap(), 0.0, 1e-9);
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::from_vec(3, 3, vec![4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0]);
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv).unwrap();
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_close(prod[(i, j)], id[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn inverse_of_singular_fails() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.inverse(), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5 ; 3x + 4y = 11 -> x = 1, y = 2
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let x = a.solve(&[5.0, 11.0]).unwrap();
        assert_close(x[0], 1.0, 1e-9);
        assert_close(x[1], 2.0, 1e-9);
    }

    #[test]
    fn cholesky_round_trip() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 2.0, 2.0, 5.0, 1.0, 2.0, 1.0, 6.0]);
        let l = a.cholesky().unwrap();
        let lt = l.transpose();
        let prod = l.matmul(&lt).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(prod[(i, j)], a[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_positive_definite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert_eq!(a.cholesky(), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn log_determinant_matches_determinant() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]);
        let det = m.determinant().unwrap();
        let logdet = m.log_abs_determinant().unwrap();
        assert_close(logdet, det.abs().ln(), 1e-9);
    }

    #[test]
    fn covariance_of_known_sample() {
        let rows = vec![
            vec![2.0, 8.0],
            vec![4.0, 10.0],
            vec![6.0, 12.0],
            vec![8.0, 14.0],
        ];
        let (means, cov) = covariance_matrix(&rows).unwrap();
        assert_close(means[0], 5.0, 1e-12);
        assert_close(means[1], 11.0, 1e-12);
        // Perfectly correlated with variance 20/3 each (sample variance).
        assert_close(cov[(0, 0)], 20.0 / 3.0, 1e-9);
        assert_close(cov[(1, 1)], 20.0 / 3.0, 1e-9);
        assert_close(cov[(0, 1)], 20.0 / 3.0, 1e-9);
        assert_close(cov[(1, 0)], cov[(0, 1)], 1e-12);
    }

    #[test]
    fn covariance_requires_two_rows() {
        assert!(matches!(
            covariance_matrix(&[vec![1.0, 2.0]]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn add_diagonal_regularizes() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.inverse(), Err(StatsError::SingularMatrix));
        m.add_diagonal(0.5);
        assert!(m.inverse().is_ok());
    }

    proptest! {
        #[test]
        fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut m = Matrix::zeros(rows, cols);
            let mut state = seed.wrapping_add(1);
            for i in 0..rows {
                for j in 0..cols {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    m[(i, j)] = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                }
            }
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn solve_then_matvec_recovers_rhs(n in 1usize..5, seed in 0u64..1000) {
            let mut state = seed.wrapping_add(7);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            // Diagonally dominant matrices are always invertible.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += n as f64 + 1.0;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            for (orig, rec) in b.iter().zip(back.iter()) {
                prop_assert!((orig - rec).abs() < 1e-6);
            }
        }

        #[test]
        fn covariance_is_symmetric_psd_diagonal(nrows in 3usize..30, seed in 0u64..1000) {
            let mut state = seed.wrapping_add(13);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
            };
            let rows: Vec<Vec<f64>> = (0..nrows).map(|_| vec![next(), next(), next()]).collect();
            let (_, cov) = covariance_matrix(&rows).unwrap();
            for i in 0..3 {
                prop_assert!(cov[(i, i)] >= -1e-9);
                for j in 0..3 {
                    prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-9);
                }
            }
        }
    }
}
