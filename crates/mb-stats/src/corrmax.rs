//! Attribution of a multivariate outlier score to individual metric
//! dimensions (the "corr-max" step of Appendix A).
//!
//! When the MCD classifier flags a point, operators want to know *which*
//! metrics drove the score (was it battery drain, or trip time?). The paper
//! cites the corr-max transformation of Garthwaite & Koch for decomposing a
//! quadratic form into per-variable contributions. We implement the standard
//! additive decomposition of the squared Mahalanobis distance,
//!
//! ```text
//! D²(x) = (x − µ)ᵀ C⁻¹ (x − µ) = Σ_i (x_i − µ_i) · [C⁻¹ (x − µ)]_i
//! ```
//!
//! whose terms sum exactly to the squared distance; each term is the
//! contribution of dimension `i` *including* its interactions with the other
//! dimensions through the precision matrix. Negative contributions are
//! possible for strongly correlated metrics and simply mean the dimension
//! pulled the point back toward the bulk.

use crate::matrix::Matrix;
use crate::{Result, StatsError};

/// Per-dimension contribution to a squared Mahalanobis distance.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionContribution {
    /// Index of the metric dimension.
    pub dimension: usize,
    /// Additive contribution to the squared distance.
    pub contribution: f64,
    /// Contribution as a fraction of the total squared distance
    /// (0 when the total is 0).
    pub fraction: f64,
}

/// Decompose the squared Mahalanobis distance of `x` (with location `mean`
/// and precision matrix `precision = C⁻¹`) into per-dimension contributions,
/// sorted by decreasing contribution.
pub fn mahalanobis_contributions(
    x: &[f64],
    mean: &[f64],
    precision: &Matrix,
) -> Result<Vec<DimensionContribution>> {
    let d = mean.len();
    if x.len() != d {
        return Err(StatsError::DimensionMismatch {
            expected: d,
            actual: x.len(),
        });
    }
    if precision.rows() != d || precision.cols() != d {
        return Err(StatsError::DimensionMismatch {
            expected: d,
            actual: precision.rows(),
        });
    }
    let centered: Vec<f64> = x.iter().zip(mean.iter()).map(|(a, b)| a - b).collect();
    let transformed = precision.matvec(&centered)?;
    let contributions: Vec<f64> = centered
        .iter()
        .zip(transformed.iter())
        .map(|(a, b)| a * b)
        .collect();
    let total: f64 = contributions.iter().sum();
    let mut out: Vec<DimensionContribution> = contributions
        .into_iter()
        .enumerate()
        .map(|(dimension, contribution)| DimensionContribution {
            dimension,
            contribution,
            fraction: if total.abs() > f64::EPSILON {
                contribution / total
            } else {
                0.0
            },
        })
        .collect();
    out.sort_by(|a, b| b.contribution.total_cmp(&a.contribution));
    Ok(out)
}

/// Convenience: the index of the dimension contributing most to the score.
pub fn dominant_dimension(x: &[f64], mean: &[f64], precision: &Matrix) -> Result<usize> {
    let contributions = mahalanobis_contributions(x, mean, precision)?;
    contributions
        .first()
        .map(|c| c.dimension)
        .ok_or(StatsError::EmptyInput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcd::McdEstimator;
    use crate::rand_ext::{normal, SplitMix64};
    use crate::Estimator;

    #[test]
    fn contributions_sum_to_squared_distance() {
        // Identity precision: contributions are just squared deviations.
        let precision = Matrix::identity(3);
        let mean = vec![0.0, 0.0, 0.0];
        let x = vec![3.0, 4.0, 0.0];
        let contributions = mahalanobis_contributions(&x, &mean, &precision).unwrap();
        let total: f64 = contributions.iter().map(|c| c.contribution).sum();
        assert!((total - 25.0).abs() < 1e-9);
        // Dimension 1 (value 4.0) dominates.
        assert_eq!(contributions[0].dimension, 1);
        assert!((contributions[0].contribution - 16.0).abs() < 1e-9);
        assert!((contributions[0].fraction - 16.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let precision = Matrix::identity(2);
        assert!(mahalanobis_contributions(&[1.0], &[0.0, 0.0], &precision).is_err());
        assert!(mahalanobis_contributions(&[1.0, 1.0], &[0.0], &precision).is_err());
    }

    #[test]
    fn zero_distance_has_zero_fractions() {
        let precision = Matrix::identity(2);
        let contributions =
            mahalanobis_contributions(&[1.0, 2.0], &[1.0, 2.0], &precision).unwrap();
        for c in contributions {
            assert_eq!(c.contribution, 0.0);
            assert_eq!(c.fraction, 0.0);
        }
    }

    #[test]
    fn agrees_with_mcd_score_and_identifies_anomalous_metric() {
        let mut rng = SplitMix64::new(99);
        // Two metrics: dimension 0 ~ N(0, 1), dimension 1 ~ N(50, 5).
        let sample: Vec<Vec<f64>> = (0..1000)
            .map(|_| vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 50.0, 5.0)])
            .collect();
        let mut est = McdEstimator::with_defaults();
        est.train(&sample).unwrap();

        // A point anomalous only in dimension 1.
        let point = vec![0.1, 200.0];
        let d2 = est.squared_mahalanobis(&point).unwrap();
        let contributions = mahalanobis_contributions(
            &point,
            est.location().unwrap(),
            est.inverse_scatter().unwrap(),
        )
        .unwrap();
        let total: f64 = contributions.iter().map(|c| c.contribution).sum();
        assert!((total - d2).abs() / d2.max(1e-9) < 1e-6);
        assert_eq!(dominant_dimension(
            &point,
            est.location().unwrap(),
            est.inverse_scatter().unwrap()
        )
        .unwrap(), 1);
    }
}
