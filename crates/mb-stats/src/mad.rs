//! MAD-based robust univariate outlier scoring (Section 4.1).
//!
//! Given a univariate metric, the MAD estimator fits the sample median and
//! the Median Absolute Deviation and scores each point by its normalized
//! distance from the median — a robust analogue of the Z-score whose
//! breakdown point is 50% (a contaminating minority cannot move it).

use crate::univariate::median_absolute_deviation;
use crate::{Estimator, Result, StatsError};

/// Consistency constant making the MAD comparable to a standard deviation
/// under a normal distribution (1 / Φ⁻¹(3/4)).
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Floor applied to a zero MAD so constant-valued samples still produce
/// finite scores. Mirrors the "trimmed" fallback used by the reference
/// implementation: when more than half the sample is identical the MAD is
/// zero and every other point would otherwise score infinity.
const MIN_MAD: f64 = 1e-12;

/// Robust univariate outlier scorer based on the median and MAD.
#[derive(Debug, Clone, Default)]
pub struct MadEstimator {
    median: f64,
    scaled_mad: f64,
    trained: bool,
}

impl MadEstimator {
    /// Create an untrained estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit directly from a univariate slice (convenience over [`Estimator::train`]).
    pub fn train_univariate(&mut self, sample: &[f64]) -> Result<()> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let (median, mad) = median_absolute_deviation(sample)?;
        self.median = median;
        self.scaled_mad = (mad * MAD_TO_SIGMA).max(MIN_MAD);
        self.trained = true;
        Ok(())
    }

    /// Score a single univariate value: `|x - median| / (1.4826 * MAD)`.
    pub fn score_value(&self, x: f64) -> Result<f64> {
        if !self.trained {
            return Err(StatsError::NotTrained);
        }
        Ok((x - self.median).abs() / self.scaled_mad)
    }

    /// The fitted median (location), if trained.
    pub fn median(&self) -> Option<f64> {
        self.trained.then_some(self.median)
    }

    /// The fitted scaled MAD (scatter), if trained.
    pub fn scaled_mad(&self) -> Option<f64> {
        self.trained.then_some(self.scaled_mad)
    }
}

impl Estimator for MadEstimator {
    fn train(&mut self, sample: &[Vec<f64>]) -> Result<()> {
        let dim = crate::validate_sample(sample)?;
        if dim != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: dim,
            });
        }
        let values: Vec<f64> = sample.iter().map(|row| row[0]).collect();
        self.train_univariate(&values)
    }

    // Univariate: a flat dim-1 buffer IS the value column — fit on it
    // directly, skipping the default's per-row materialization. Error
    // precedence matches the row path (finiteness before dimension).
    fn train_flat(&mut self, flat: &[f64], dim: usize) -> Result<()> {
        if flat.is_empty() || dim == 0 {
            return Err(StatsError::EmptyInput);
        }
        if flat.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        if dim != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: dim,
            });
        }
        self.train_univariate(flat)
    }

    fn score(&self, metrics: &[f64]) -> Result<f64> {
        if metrics.len() != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: metrics.len(),
            });
        }
        self.score_value(metrics[0])
    }

    // One branch-free pass over the flat buffer — same arithmetic as
    // `score_value` per element, without a `Result` round-trip per row.
    fn score_batch_flat(&self, flat: &[f64], dim: usize) -> Result<Vec<f64>> {
        if dim == 0 {
            return Err(StatsError::EmptyInput);
        }
        if dim != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: dim,
            });
        }
        if !self.trained {
            return Err(StatsError::NotTrained);
        }
        Ok(flat
            .iter()
            .map(|x| (x - self.median).abs() / self.scaled_mad)
            .collect())
    }

    fn dimension(&self) -> Option<usize> {
        self.trained.then_some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_ext::{normal, SplitMix64};
    use proptest::prelude::*;

    #[test]
    fn untrained_estimator_errors() {
        let est = MadEstimator::new();
        assert_eq!(est.score_value(1.0), Err(StatsError::NotTrained));
        assert_eq!(est.dimension(), None);
        assert!(!est.is_trained());
    }

    #[test]
    fn scores_center_low_tail_high() {
        let mut est = MadEstimator::new();
        let sample: Vec<f64> = (0..1001).map(|i| i as f64 / 100.0).collect(); // 0..10
        est.train_univariate(&sample).unwrap();
        let center = est.score_value(5.0).unwrap();
        let tail = est.score_value(30.0).unwrap();
        assert!(center < 0.1);
        assert!(tail > 5.0);
        assert!(tail > center);
    }

    #[test]
    fn robust_to_heavy_contamination() {
        // With 30% of points at an extreme value, the MAD estimator must stay
        // discriminative: typical inliers keep low scores and the
        // contaminating cluster keeps an extreme score. (A Z-score collapses
        // here — see `zscore::tests::not_robust_to_contamination_unlike_mad`.)
        let mut rng = SplitMix64::new(2);
        let mut data: Vec<f64> = (0..7000).map(|_| normal(&mut rng, 10.0, 1.0)).collect();
        data.extend((0..3000).map(|_| normal(&mut rng, 1000.0, 1.0)));
        let mut est = MadEstimator::new();
        est.train_univariate(&data).unwrap();

        assert!(est.score_value(10.0).unwrap() < 3.0);
        assert!(est.score_value(12.0).unwrap() < 5.0);
        assert!(est.score_value(1000.0).unwrap() > 50.0);
    }

    #[test]
    fn constant_sample_scores_finite() {
        let mut est = MadEstimator::new();
        est.train_univariate(&[5.0; 100]).unwrap();
        let same = est.score_value(5.0).unwrap();
        let other = est.score_value(6.0).unwrap();
        assert_eq!(same, 0.0);
        assert!(other.is_finite());
        assert!(other > 0.0);
    }

    #[test]
    fn estimator_trait_enforces_univariate() {
        let mut est = MadEstimator::new();
        let sample = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(matches!(
            est.train(&sample),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn estimator_trait_round_trip() {
        let mut est = MadEstimator::new();
        let sample: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        est.train(&sample).unwrap();
        assert_eq!(est.dimension(), Some(1));
        assert!(est.score(&[50.0]).unwrap() < est.score(&[500.0]).unwrap());
        assert!(matches!(
            est.score(&[1.0, 2.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn scaled_mad_matches_sigma_for_gaussian() {
        let mut rng = SplitMix64::new(77);
        let sample: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 0.0, 10.0)).collect();
        let mut est = MadEstimator::new();
        est.train_univariate(&sample).unwrap();
        let sigma_hat = est.scaled_mad().unwrap();
        assert!((sigma_hat - 10.0).abs() < 0.3, "scaled MAD was {sigma_hat}");
    }

    proptest! {
        #[test]
        fn scores_are_nonnegative_and_zero_at_median(data in prop::collection::vec(-1e4f64..1e4, 3..200)) {
            let mut est = MadEstimator::new();
            est.train_univariate(&data).unwrap();
            let med = est.median().unwrap();
            prop_assert!(est.score_value(med).unwrap().abs() < 1e-9);
            for &x in &data {
                prop_assert!(est.score_value(x).unwrap() >= 0.0);
            }
        }

        #[test]
        fn score_is_monotone_in_distance_from_median(data in prop::collection::vec(-1e4f64..1e4, 3..100), d1 in 0.0f64..100.0, d2 in 0.0f64..100.0) {
            let mut est = MadEstimator::new();
            est.train_univariate(&data).unwrap();
            let med = est.median().unwrap();
            let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(est.score_value(med + near).unwrap() <= est.score_value(med + far).unwrap() + 1e-12);
        }
    }
}
