//! Random-variate generation used by MacroBase's samplers and the synthetic
//! workload generators.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! instead of `rand`/`rand_distr` this module carries a minimal [`Rng`]
//! trait, the deterministic [`SplitMix64`] generator, and the Gaussian
//! (Box–Muller), exponential, and Zipfian samplers the evaluation needs.

/// Minimal uniform-variate source, standing in for `rand::Rng`.
///
/// Implementors only supply raw 64-bit output; `[0, 1)` doubles are derived
/// from the top 53 bits, which is the same construction `rand` uses.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Draw a standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draw an exponential variate with the given rate `lambda`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen_f64();
    -u.ln() / lambda
}

/// A Zipfian sampler over `{0, 1, ..., n-1}` with exponent `s`.
///
/// Heavy-hitter experiments (Figure 6) use Zipf-distributed attribute values
/// because production attribute streams (device IDs, firmware versions) are
/// highly skewed. Sampling uses the inverse-CDF over a precomputed table,
/// which is exact and fast for the cardinalities used in the benches.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `n` items with skew `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift: the last entry must be 1.0.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of distinct items.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one item index in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.total_cmp(&u))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }
}

/// Deterministic SplitMix64 RNG for tests and reproducible workloads.
///
/// A tiny local generator keeps state explicit in bench harnesses that must
/// be byte-for-byte reproducible across runs, and avoids any external
/// dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        Rng::gen_f64(self)
    }

    /// Uniform usize in `[0, bound)`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Derive an independent child generator for stream `index` without
    /// advancing `self`.
    ///
    /// Parallel workers (e.g. FastMCD's training restarts) each take
    /// `rng.split(i)` so their streams are (a) decorrelated — the index is
    /// spread by an odd multiplier and pushed through the full SplitMix64
    /// output avalanche before seeding the child, so child `i` and child
    /// `i+1` share no state trajectory, unlike seeding with `seed + i` —
    /// and (b) a pure function of `(parent seed, index)`, independent of
    /// scheduling, which keeps parallel runs bit-identical to serial ones.
    pub fn split(&self, index: u64) -> SplitMix64 {
        let mut seeder = SplitMix64 {
            state: self.state ^ index.wrapping_mul(0xA076_1D64_78BD_642F),
        };
        SplitMix64::new(seeder.next_u64())
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::univariate::{mean, population_std};
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn standard_normal_moments() {
        let mut rng = SplitMix64::new(42);
        let sample: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let m = mean(&sample).unwrap();
        let s = population_std(&sample).unwrap();
        assert!(m.abs() < 0.03, "mean was {m}");
        assert!((s - 1.0).abs() < 0.03, "std was {s}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = SplitMix64::new(7);
        let sample: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 70.0, 10.0)).collect();
        let m = mean(&sample).unwrap();
        let s = population_std(&sample).unwrap();
        assert!((m - 70.0).abs() < 0.3, "mean was {m}");
        assert!((s - 10.0).abs() < 0.3, "std was {s}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SplitMix64::new(11);
        let lambda = 2.0;
        let sample: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, lambda)).collect();
        let m = mean(&sample).unwrap();
        assert!((m - 0.5).abs() < 0.02, "mean was {m}");
        assert!(sample.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_nonpositive_rate() {
        let mut rng = SplitMix64::new(1);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SplitMix64::new(3);
        let zipf = Zipf::new(1000, 1.2);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            let idx = zipf.sample(&mut rng);
            assert!(idx < 1000);
            counts[idx] += 1;
        }
        // Item 0 must dominate item 100 by a wide margin under s=1.2.
        assert!(counts[0] > counts[100] * 5);
        // All the mass is somewhere.
        assert_eq!(counts.iter().sum::<usize>(), 100_000);
    }

    #[test]
    fn zipf_single_item() {
        let mut rng = SplitMix64::new(5);
        let zipf = Zipf::new(1, 1.0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_children_are_deterministic_and_decorrelated() {
        let parent = SplitMix64::new(42);
        let mut a1 = parent.split(0);
        let mut a2 = parent.split(0);
        let mut b = parent.split(1);
        let stream_a: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(stream_a, again, "split must be a pure function of (seed, index)");
        let stream_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(stream_a, stream_b);
        // Adjacent children are not shifted copies of one another — the
        // failure mode of naive `seed + index` splitting, where child i+1
        // replays child i's stream offset by one draw.
        assert_ne!(&stream_a[1..], &stream_b[..7]);
        assert_ne!(&stream_b[1..], &stream_a[..7]);
    }

    #[test]
    fn split_does_not_advance_the_parent() {
        let mut parent = SplitMix64::new(7);
        let probe = parent.clone().next_u64();
        let _child = parent.split(3);
        assert_eq!(parent.next_u64(), probe);
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Restart determinism (and the scenario corpus built on it) relies
        // on adjacent split() children behaving as independent streams: for
        // any parent seed and index, children i and i+1 must not share a
        // single value anywhere in their first 1 000 draws. A naive
        // `seed + index` child construction fails this immediately (child
        // i+1 replays child i's stream shifted by one).
        #[test]
        fn adjacent_split_streams_do_not_collide(
            seed in 0u64..u64::MAX,
            index in 0u64..(u64::MAX - 1),
        ) {
            let parent = SplitMix64::new(seed);
            let mut left = parent.split(index);
            let mut right = parent.split(index + 1);
            let draws: HashSet<u64> = (0..1_000).map(|_| left.next_u64()).collect();
            prop_assert_eq!(draws.len(), 1_000);
            for draw in 0..1_000u32 {
                let value = right.next_u64();
                prop_assert!(
                    !draws.contains(&value),
                    "children {} and {} collide on value {} (right draw {})",
                    index,
                    index + 1,
                    value,
                    draw
                );
            }
        }
    }
}
