//! Z-score estimator: the non-robust baseline of Figure 3.
//!
//! The Z-score measures how many standard deviations a point lies from the
//! sample mean. A single extreme value can move the mean and inflate the
//! standard deviation arbitrarily, so the Z-score loses discriminative power
//! as contamination grows — exactly the failure mode Figure 3 illustrates and
//! the reason MDP defaults to MAD/MCD instead.

use crate::univariate::{mean, population_std};
use crate::{Estimator, Result, StatsError};

/// Floor for a zero standard deviation, mirroring [`crate::mad::MadEstimator`].
const MIN_STD: f64 = 1e-12;

/// Classic mean/standard-deviation scorer over univariate metrics.
#[derive(Debug, Clone, Default)]
pub struct ZScoreEstimator {
    mean: f64,
    std: f64,
    trained: bool,
}

impl ZScoreEstimator {
    /// Create an untrained estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit directly from a univariate slice.
    pub fn train_univariate(&mut self, sample: &[f64]) -> Result<()> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if sample.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        self.mean = mean(sample)?;
        self.std = population_std(sample)?.max(MIN_STD);
        self.trained = true;
        Ok(())
    }

    /// Absolute Z-score of a single value.
    pub fn score_value(&self, x: f64) -> Result<f64> {
        if !self.trained {
            return Err(StatsError::NotTrained);
        }
        Ok((x - self.mean).abs() / self.std)
    }

    /// The fitted mean, if trained.
    pub fn mean(&self) -> Option<f64> {
        self.trained.then_some(self.mean)
    }

    /// The fitted standard deviation, if trained.
    pub fn std(&self) -> Option<f64> {
        self.trained.then_some(self.std)
    }
}

impl Estimator for ZScoreEstimator {
    fn train(&mut self, sample: &[Vec<f64>]) -> Result<()> {
        let dim = crate::validate_sample(sample)?;
        if dim != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: dim,
            });
        }
        let values: Vec<f64> = sample.iter().map(|row| row[0]).collect();
        self.train_univariate(&values)
    }

    // Univariate: fit straight off the flat dim-1 buffer (see
    // `MadEstimator::train_flat`).
    fn train_flat(&mut self, flat: &[f64], dim: usize) -> Result<()> {
        if flat.is_empty() || dim == 0 {
            return Err(StatsError::EmptyInput);
        }
        if flat.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        if dim != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: dim,
            });
        }
        self.train_univariate(flat)
    }

    fn score(&self, metrics: &[f64]) -> Result<f64> {
        if metrics.len() != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: metrics.len(),
            });
        }
        self.score_value(metrics[0])
    }

    // One branch-free pass over the flat buffer (see
    // `MadEstimator::score_batch_flat`).
    fn score_batch_flat(&self, flat: &[f64], dim: usize) -> Result<Vec<f64>> {
        if dim == 0 {
            return Err(StatsError::EmptyInput);
        }
        if dim != 1 {
            return Err(StatsError::DimensionMismatch {
                expected: 1,
                actual: dim,
            });
        }
        if !self.trained {
            return Err(StatsError::NotTrained);
        }
        Ok(flat.iter().map(|x| (x - self.mean).abs() / self.std).collect())
    }

    fn dimension(&self) -> Option<usize> {
        self.trained.then_some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mad::MadEstimator;
    use crate::rand_ext::{normal, SplitMix64};

    #[test]
    fn untrained_errors() {
        assert_eq!(
            ZScoreEstimator::new().score_value(0.0),
            Err(StatsError::NotTrained)
        );
    }

    #[test]
    fn known_zscore() {
        let mut est = ZScoreEstimator::new();
        est.train_univariate(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
            .unwrap(); // mean 5, std 2
        assert!((est.score_value(9.0).unwrap() - 2.0).abs() < 1e-9);
        assert!((est.score_value(5.0).unwrap() - 0.0).abs() < 1e-9);
        assert!((est.score_value(1.0).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn constant_sample_scores_finite() {
        let mut est = ZScoreEstimator::new();
        est.train_univariate(&[3.0; 50]).unwrap();
        assert!(est.score_value(4.0).unwrap().is_finite());
    }

    #[test]
    fn rejects_nan() {
        let mut est = ZScoreEstimator::new();
        assert_eq!(
            est.train_univariate(&[1.0, f64::NAN]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn not_robust_to_contamination_unlike_mad() {
        // Reproduces the qualitative claim behind Figure 3: under 30%
        // contamination at an extreme location, the Z-score of a true outlier
        // collapses while the MAD score stays high.
        let mut rng = SplitMix64::new(5);
        let mut data: Vec<f64> = (0..7000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
        data.extend((0..3000).map(|_| normal(&mut rng, 1000.0, 1.0)));

        let mut z = ZScoreEstimator::new();
        z.train_univariate(&data).unwrap();
        let mut mad = MadEstimator::new();
        mad.train_univariate(&data).unwrap();

        let z_score_of_outlier = z.score_value(1000.0).unwrap();
        let mad_score_of_outlier = mad.score_value(1000.0).unwrap();
        assert!(
            z_score_of_outlier < 3.0,
            "z-score should be diluted, was {z_score_of_outlier}"
        );
        assert!(
            mad_score_of_outlier > 100.0,
            "MAD should stay discriminative, was {mad_score_of_outlier}"
        );
    }

    #[test]
    fn estimator_trait_dimension_checks() {
        let mut est = ZScoreEstimator::new();
        assert!(matches!(
            est.train(&[vec![1.0, 2.0]]),
            Err(StatsError::DimensionMismatch { .. })
        ));
        est.train(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert!(matches!(
            est.score(&[]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }
}
