//! The single shared implementation of accuracy metrics.
//!
//! Every accuracy number the repo reports — the `fig4`/`fig11` F1 curves,
//! the `table4` DBSherlock ranks, the end-to-end integration tests, and the
//! `quality_matrix` gate — funnels through this module, so "precision"
//! always means the same arithmetic.
//!
//! Two levels of evaluation:
//!
//! * **Point level** ([`point_metrics`]): which rows were labeled outliers
//!   vs. which rows were planted ([`GroundTruth::outlier_rows`] against
//!   [`MdpReport::outlier_rows`]).
//! * **Explanation level**: which attribute combinations were indicted.
//!   [`explanation_jaccard`] scores the whole reported set against the
//!   guilty set; [`value_metrics`] scores the named attribute *values*
//!   (the figure 4/11 device-F1 convention); [`truth_rank`] finds where the
//!   true cause landed in the ranking (the Table 4 convention).
//!
//! [`GroundTruth::outlier_rows`]: crate::GroundTruth::outlier_rows
//! [`MdpReport::outlier_rows`]: macrobase_core::types::MdpReport::outlier_rows

use macrobase_core::types::RenderedExplanation;
use std::collections::{BTreeSet, HashSet};

/// Confusion counts for a binary decision, with the derived rates.
///
/// Degenerate cases follow the fleet-diagnosis convention the repo has
/// always used: an empty prediction set has perfect precision (no false
/// alarms), an empty truth set has perfect recall (nothing to find), so
/// empty-vs-empty scores F1 = 1.0 and any one-sided emptiness scores 0.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryMetrics {
    /// Predicted positives that were actually planted.
    pub true_positives: usize,
    /// Predicted positives that were not planted.
    pub false_positives: usize,
    /// Planted positives that were not predicted.
    pub false_negatives: usize,
}

impl BinaryMetrics {
    /// Build from explicit confusion counts.
    pub fn from_counts(true_positives: usize, false_positives: usize, false_negatives: usize) -> Self {
        BinaryMetrics {
            true_positives,
            false_positives,
            false_negatives,
        }
    }

    /// `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let predicted = self.true_positives + self.false_positives;
        if predicted == 0 {
            1.0
        } else {
            self.true_positives as f64 / predicted as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when nothing was planted.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }

    /// Harmonic mean of precision and recall; 0.0 when both are zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Point-level confusion counts: predicted outlier rows vs. planted rows.
/// Both slices are treated as sets (duplicates ignored).
pub fn point_metrics(predicted_rows: &[usize], truth_rows: &[usize]) -> BinaryMetrics {
    let predicted: HashSet<usize> = predicted_rows.iter().copied().collect();
    let truth: HashSet<usize> = truth_rows.iter().copied().collect();
    let tp = predicted.intersection(&truth).count();
    BinaryMetrics::from_counts(tp, predicted.len() - tp, truth.len() - tp)
}

/// Set-level confusion counts over attribute values (or any strings):
/// reported values vs. ground-truth values, duplicates ignored.
pub fn value_metrics(reported: &[String], truth: &[String]) -> BinaryMetrics {
    let reported: HashSet<&String> = reported.iter().collect();
    let truth: HashSet<&String> = truth.iter().collect();
    let tp = reported.intersection(&truth).count();
    BinaryMetrics::from_counts(tp, reported.len() - tp, truth.len() - tp)
}

/// F1 of reported attribute values against ground truth — the `fig4`/
/// `fig11` device-F1 metric (previously `device_f1_score` in `mb-ingest`).
pub fn value_f1(reported: &[String], truth: &[String]) -> f64 {
    value_metrics(reported, truth).f1()
}

/// The value part (`after the first '='`) of a rendered attribute string,
/// or the whole string if it carries no column prefix.
pub fn attribute_value(attribute: &str) -> &str {
    attribute.split('=').nth(1).unwrap_or(attribute)
}

/// Every attribute value named by a set of explanations, in report order
/// (duplicates preserved; the metric functions de-duplicate).
pub fn reported_values(explanations: &[RenderedExplanation]) -> Vec<String> {
    explanations
        .iter()
        .flat_map(|e| e.attributes.iter())
        .map(|a| attribute_value(a).to_string())
        .collect()
}

/// The set of attribute combinations named by a set of explanations, each
/// combination sorted so ordering differences don't affect set identity.
pub fn combination_set(explanations: &[RenderedExplanation]) -> BTreeSet<Vec<String>> {
    explanations
        .iter()
        .map(|e| {
            let mut attrs = e.attributes.clone();
            attrs.sort();
            attrs
        })
        .collect()
}

/// Jaccard similarity between two sets of attribute combinations
/// (`|A ∩ B| / |A ∪ B|`; 1.0 when both are empty).
pub fn jaccard(a: &BTreeSet<Vec<String>>, b: &BTreeSet<Vec<String>>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    intersection / union
}

/// Jaccard similarity between a report's explanations and the guilty
/// combinations of a [`GroundTruth`](crate::GroundTruth) (each combination
/// is sorted before comparison).
pub fn explanation_jaccard(explanations: &[RenderedExplanation], truth: &[Vec<String>]) -> f64 {
    let reported = combination_set(explanations);
    let truth: BTreeSet<Vec<String>> = truth
        .iter()
        .map(|combo| {
            let mut combo = combo.clone();
            combo.sort();
            combo
        })
        .collect();
    jaccard(&reported, &truth)
}

/// 1-based rank of the first explanation naming the true cause (`None` if
/// absent) — the Table 4 / DBSherlock accuracy convention. An explanation
/// matches when any of its rendered attributes ends with `truth`.
pub fn truth_rank(explanations: &[RenderedExplanation], truth: &str) -> Option<usize> {
    explanations
        .iter()
        .position(|e| e.attributes.iter().any(|a| a.ends_with(truth)))
        .map(|idx| idx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_explain::risk_ratio::ExplanationStats;

    fn explanation(attributes: &[&str]) -> RenderedExplanation {
        RenderedExplanation {
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
            items: Vec::new(),
            stats: ExplanationStats {
                outlier_count: 1.0,
                inlier_count: 0.0,
                outlier_support: 1.0,
                risk_ratio: f64::INFINITY,
                total_outliers: 1.0,
                total_inliers: 1.0,
            },
        }
    }

    #[test]
    fn point_metrics_counts_confusion() {
        let m = point_metrics(&[1, 2, 3, 4], &[3, 4, 5]);
        assert_eq!(m, BinaryMetrics::from_counts(2, 2, 1));
        assert_eq!(m.precision(), 0.5);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_follow_the_device_f1_convention() {
        // Mirrors the retired mb_ingest::synthetic::device_f1_score tests.
        let truth = vec!["a".to_string(), "b".to_string()];
        assert_eq!(value_f1(&truth.clone(), &truth), 1.0);
        assert_eq!(value_f1(&[], &truth), 0.0);
        assert_eq!(value_f1(&["c".to_string()], &truth), 0.0);
        let partial = value_f1(&["a".to_string()], &truth);
        assert!(partial > 0.0 && partial < 1.0);
        assert_eq!(value_f1(&[], &[]), 1.0);
        assert_eq!(point_metrics(&[], &[]).f1(), 1.0);
        assert_eq!(point_metrics(&[1], &[]).f1(), 0.0);
    }

    #[test]
    fn value_extraction_strips_the_column_prefix() {
        assert_eq!(attribute_value("device=device_13"), "device_13");
        assert_eq!(attribute_value("bare_value"), "bare_value");
        let values = reported_values(&[explanation(&["device=device_13", "host=host_03"])]);
        assert_eq!(values, vec!["device_13".to_string(), "host_03".to_string()]);
    }

    #[test]
    fn jaccard_ignores_attribute_order_within_combinations() {
        let reported = [
            explanation(&["b=2", "a=1"]),
            explanation(&["c=3"]),
        ];
        let truth = vec![
            vec!["a=1".to_string(), "b=2".to_string()],
            vec!["d=4".to_string()],
        ];
        let score = explanation_jaccard(&reported, &truth);
        assert!((score - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(explanation_jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn truth_rank_is_one_based_and_suffix_matched() {
        let explanations = [
            explanation(&["host=host_01"]),
            explanation(&["host=host_03"]),
        ];
        assert_eq!(truth_rank(&explanations, "host_03"), Some(2));
        assert_eq!(truth_rank(&explanations, "host_09"), None);
    }
}
