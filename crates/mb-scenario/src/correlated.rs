//! Correlated multi-metric failure: a DBSherlock-shaped incident window.
//!
//! Mirrors the OLTP post-mortem workloads of Table 4 (and the DBSherlock
//! comparison): a fleet of hosts reports several correlated counters — all
//! driven by a shared load factor — and during a contiguous failure window
//! one host's affected counters shift jointly by several sigma. Univariate
//! views are noisy here; the multivariate (MCD) path must use the counter
//! correlations to isolate the window, and the explainer should indict the
//! guilty host.

use crate::{GeneratedScenario, GroundTruth, Scenario};
use macrobase_core::query::AnalysisConfig;
use macrobase_core::types::Point;
use mb_explain::ExplanationConfig;
use mb_stats::rand_ext::{standard_normal, SplitMix64};

/// Configuration for the correlated multi-metric failure scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedFailureScenario {
    /// Number of hosts in the fleet.
    pub num_hosts: usize,
    /// Rows (time ticks) per host; total rows = `num_hosts * rows_per_host`.
    pub rows_per_host: usize,
    /// Number of correlated counters per row (the metric dimensionality).
    pub num_counters: usize,
    /// Index (mod `num_hosts`) of the host that fails.
    pub guilty_host: usize,
    /// Fraction of the guilty host's ticks inside the failure window.
    pub failure_fraction: f64,
    /// Joint shift applied to the affected counters, in per-counter sigmas.
    pub shift_sigmas: f64,
    /// RNG seed; the same seed always yields the same rows and truth.
    pub seed: u64,
}

impl Default for CorrelatedFailureScenario {
    fn default() -> Self {
        CorrelatedFailureScenario {
            num_hosts: 11,
            rows_per_host: 360,
            num_counters: 6,
            guilty_host: 3,
            failure_fraction: 0.25,
            shift_sigmas: 6.0,
            seed: 0xc0_11e1a7ed,
        }
    }
}

impl CorrelatedFailureScenario {
    fn guilty_value(&self) -> String {
        format!("host_{:02}", self.guilty_host % self.num_hosts.max(1))
    }

    fn counter_std(counter: usize) -> f64 {
        3.0 + counter as f64 * 0.5
    }

    fn window(&self) -> std::ops::Range<usize> {
        let len = ((self.rows_per_host as f64) * self.failure_fraction).round() as usize;
        let start = self.rows_per_host.saturating_sub(len) / 2;
        start..(start + len).min(self.rows_per_host)
    }
}

impl Scenario for CorrelatedFailureScenario {
    fn name(&self) -> &'static str {
        "correlated_failure"
    }

    fn analysis(&self) -> AnalysisConfig {
        let total = (self.num_hosts * self.rows_per_host).max(1);
        let planted = self.window().len();
        AnalysisConfig {
            target_percentile: 1.0 - planted as f64 / total as f64,
            explanation: ExplanationConfig::new(0.2, 3.0),
            attribute_names: vec!["host".to_string()],
            retain_outlier_rows: true,
            ..AnalysisConfig::default()
        }
    }

    fn generate(&self) -> GeneratedScenario {
        let mut rng = SplitMix64::new(self.seed);
        let hosts = self.num_hosts.max(1);
        let guilty_index = self.guilty_host % hosts;
        let guilty = self.guilty_value();
        let window = self.window();
        // The jointly shifted counters: the first half (at least one).
        let affected = (self.num_counters / 2).max(1);

        let mut points = Vec::with_capacity(hosts * self.rows_per_host);
        let mut outlier_rows = Vec::new();
        // Rows interleave hosts tick by tick (round-robin), the order a
        // fleet-wide collector would emit them in, so the failure window is
        // contiguous in time but spread across any partitioning of the rows.
        for tick in 0..self.rows_per_host {
            for host in 0..hosts {
                let failing = host == guilty_index && window.contains(&tick);
                // One latent load factor per row keeps the counters
                // correlated; the failure shifts the affected ones jointly.
                let load = standard_normal(&mut rng);
                let metrics: Vec<f64> = (0..self.num_counters)
                    .map(|counter| {
                        let std = Self::counter_std(counter);
                        let mean = 50.0 + 10.0 * counter as f64;
                        let noise = standard_normal(&mut rng);
                        let mut value = mean + std * (0.6 * load + 0.8 * noise);
                        if failing && counter < affected {
                            value += self.shift_sigmas * std;
                        }
                        value
                    })
                    .collect();
                if failing {
                    outlier_rows.push(points.len());
                }
                points.push(Point::new(metrics, vec![format!("host_{host:02}")]));
            }
        }

        GeneratedScenario {
            points,
            truth: GroundTruth {
                outlier_rows,
                guilty_attributes: vec![vec![format!("host={guilty}")]],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_window_is_contiguous_on_the_guilty_host() {
        let scenario = CorrelatedFailureScenario::default();
        let generated = scenario.generate();
        assert_eq!(generated.points.len(), 11 * 360);
        assert_eq!(generated.truth.outlier_rows.len(), 90);
        for &row in &generated.truth.outlier_rows {
            let point = &generated.points[row];
            assert_eq!(point.attributes[0], "host_03");
            assert_eq!(point.metrics.len(), 6);
        }
        // Consecutive planted rows are exactly one fleet round apart.
        for pair in generated.truth.outlier_rows.windows(2) {
            assert_eq!(pair[1] - pair[0], 11);
        }
    }

    #[test]
    fn shifted_counters_separate_from_healthy_ones() {
        let scenario = CorrelatedFailureScenario::default();
        let generated = scenario.generate();
        let planted: std::collections::HashSet<usize> =
            generated.truth.outlier_rows.iter().copied().collect();
        let mean = |rows: &mut dyn Iterator<Item = &Point>| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for p in rows {
                sum += p.metrics[0];
                count += 1;
            }
            sum / count as f64
        };
        let healthy = mean(
            &mut generated
                .points
                .iter()
                .enumerate()
                .filter(|(row, _)| !planted.contains(row))
                .map(|(_, p)| p),
        );
        let failing = mean(
            &mut generated
                .points
                .iter()
                .enumerate()
                .filter(|(row, _)| planted.contains(row))
                .map(|(_, p)| p),
        );
        assert!(failing - healthy > 12.0, "counter 0 must shift ~6 sigma");
    }
}
