//! Self telemetry: MacroBase monitoring MacroBase.
//!
//! A recorded stream of the system's own per-stage latency telemetry (the
//! shape `mb-obs` exports: one row per stage sample, tagged with the stage
//! name and the worker that produced it) in which one pipeline stage
//! develops a latency regression. The metric is the sample's latency as a
//! multiple of that stage's rolling baseline, so healthy rows sit near 1.0
//! regardless of stage; regressed rows sit several multiples above. The
//! explainer should blame exactly the guilty stage — and *not* the workers,
//! which all observe the regression at equal rates.
//!
//! This is the observability layer's dogfood scenario: the attribute
//! vocabulary is `mb_obs::stage::ALL` itself, and recovering the planted
//! regression through the EWS pipeline is exactly the "monitor the monitor"
//! loop a deployment would run.

use crate::{GeneratedScenario, GroundTruth, Scenario};
use macrobase_core::query::AnalysisConfig;
use macrobase_core::types::Point;
use mb_explain::ExplanationConfig;
use mb_stats::rand_ext::{normal, SplitMix64};

/// Configuration for the self-telemetry scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTelemetryScenario {
    /// Total number of telemetry rows (stage latency samples).
    pub num_points: usize,
    /// Number of pool workers emitting samples; each row draws one
    /// uniformly, so no worker is guilty.
    pub num_workers: usize,
    /// Index into [`mb_obs::stage::ALL`] of the stage that regresses.
    pub guilty_stage: usize,
    /// Fraction of rows planted as regressed samples.
    pub outlier_fraction: f64,
    /// Healthy latency ratio standard deviation (mean is 1.0 by
    /// construction — a sample at baseline).
    pub baseline_std: f64,
    /// Mean latency ratio of regressed samples (multiples of baseline).
    pub regression_ratio: f64,
    /// Standard deviation of regressed samples.
    pub regression_std: f64,
    /// RNG seed; the same seed always yields the same rows and truth.
    pub seed: u64,
}

impl Default for SelfTelemetryScenario {
    fn default() -> Self {
        SelfTelemetryScenario {
            num_points: 6_000,
            num_workers: 8,
            // stage::ALL[3] == "score" — the stage a real regression most
            // often lands in (model scoring cost).
            guilty_stage: 3,
            outlier_fraction: 0.02,
            baseline_std: 0.06,
            regression_ratio: 6.0,
            regression_std: 0.5,
            seed: 0x0b5e_57a6,
        }
    }
}

impl SelfTelemetryScenario {
    fn guilty_value(&self) -> &'static str {
        mb_obs::stage::ALL[self.guilty_stage % mb_obs::stage::ALL.len()]
    }
}

impl Scenario for SelfTelemetryScenario {
    fn name(&self) -> &'static str {
        "self_telemetry"
    }

    fn analysis(&self) -> AnalysisConfig {
        AnalysisConfig {
            target_percentile: 1.0 - self.outlier_fraction,
            // Support 0.2 sits above any single stage×worker pair's share of
            // the outliers (~1/num_workers) but below the guilty stage's
            // (≈1.0), so the explanation is the stage alone.
            explanation: ExplanationConfig::new(0.2, 3.0),
            attribute_names: vec!["stage".to_string(), "worker".to_string()],
            retain_outlier_rows: true,
            ..AnalysisConfig::default()
        }
    }

    fn generate(&self) -> GeneratedScenario {
        let mut rng = SplitMix64::new(self.seed);
        let n = self.num_points;
        let workers = self.num_workers.max(1);
        let stages = mb_obs::stage::ALL;
        let planted = ((n as f64) * self.outlier_fraction).round() as usize;
        let guilty = self.guilty_value();

        let mut points = Vec::with_capacity(n);
        let mut outlier_rows = Vec::with_capacity(planted);
        // Selection sampling (Knuth Algorithm S): exactly `planted`
        // regressed samples, uniformly spread over the stream.
        let mut needed = planted;
        for row in 0..n {
            let remaining = n - row;
            let worker = format!("worker_{}", rng.next_below(workers));
            if needed > 0 && rng.next_below(remaining) < needed {
                needed -= 1;
                outlier_rows.push(row);
                let ratio = normal(&mut rng, self.regression_ratio, self.regression_std);
                points.push(Point::new(
                    vec![ratio],
                    vec![guilty.to_string(), worker],
                ));
            } else {
                let stage = stages[rng.next_below(stages.len())];
                let ratio = normal(&mut rng, 1.0, self.baseline_std);
                points.push(Point::new(
                    vec![ratio],
                    vec![stage.to_string(), worker],
                ));
            }
        }

        GeneratedScenario {
            points,
            truth: GroundTruth {
                outlier_rows,
                guilty_attributes: vec![vec![format!("stage={guilty}")]],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use macrobase_core::query::Executor;

    #[test]
    fn plants_exact_mass_on_the_guilty_stage() {
        let scenario = SelfTelemetryScenario::default();
        let generated = scenario.generate();
        assert_eq!(generated.points.len(), 6_000);
        assert_eq!(generated.truth.outlier_rows.len(), 120);
        for &row in &generated.truth.outlier_rows {
            let point = &generated.points[row];
            assert_eq!(point.attributes[0], "score");
            assert!(point.metrics[0] > 3.0, "regressed ratio expected");
        }
        assert_eq!(
            generated.truth.guilty_attributes,
            vec![vec!["stage=score".to_string()]]
        );
    }

    #[test]
    fn attribute_vocabulary_is_the_obs_stage_set() {
        let generated = SelfTelemetryScenario::default().generate();
        for point in &generated.points {
            assert!(
                mb_obs::stage::ALL.contains(&point.attributes[0].as_str()),
                "unknown stage {}",
                point.attributes[0]
            );
            assert!(point.attributes[1].starts_with("worker_"));
        }
    }

    #[test]
    fn ews_pipeline_recovers_the_regressed_stage() {
        // The dogfood loop: replay the recorded telemetry stream through the
        // streaming (EWS) executor and check the guilty stage is blamed.
        let scenario = SelfTelemetryScenario {
            num_points: 20_000,
            ..SelfTelemetryScenario::default()
        };
        let generated = scenario.generate();
        let mut query = scenario.query().unwrap();
        let report = query
            .execute(&Executor::streaming(), &generated.points)
            .unwrap();
        let jaccard = eval::explanation_jaccard(
            &report.explanations,
            &generated.truth.guilty_attributes,
        );
        assert!(
            jaccard > 0.0,
            "stage=score missing from {:?}",
            report.top_attributes(5)
        );
        assert!(
            report
                .explanations
                .first()
                .is_some_and(|e| e.attributes.iter().any(|a| a == "stage=score")),
            "top explanation should blame the regressed stage: {:?}",
            report.top_attributes(5)
        );
    }
}
