//! Attribute-cardinality explosion: a guilty value hidden in a wide column.
//!
//! The explanation stage's hard case (Section 5): rows carry both a
//! low-cardinality column (`app`) and a high-cardinality one (`user`, one
//! value per few rows). One app misbehaves; individual users do not. The
//! encoder and FP-growth must digest thousands of distinct items, and the
//! support threshold must prune the long tail of singleton users so the
//! report indicts the app alone.

use crate::{GeneratedScenario, GroundTruth, Scenario};
use macrobase_core::query::AnalysisConfig;
use macrobase_core::types::Point;
use mb_explain::ExplanationConfig;
use mb_stats::rand_ext::{normal, SplitMix64};

/// Configuration for the attribute-cardinality-explosion scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CardinalityExplosionScenario {
    /// Total number of rows.
    pub num_points: usize,
    /// Number of distinct apps (the low-cardinality column).
    pub num_apps: usize,
    /// Index (mod `num_apps`) of the app that misbehaves.
    pub guilty_app: usize,
    /// Distinct users per row of data: the user column's cardinality is
    /// `num_points / rows_per_user`, so it grows with the dataset.
    pub rows_per_user: usize,
    /// Fraction of rows planted as anomalies (all on the guilty app).
    pub outlier_fraction: f64,
    /// Healthy metric mean.
    pub baseline_mean: f64,
    /// Healthy metric standard deviation.
    pub baseline_std: f64,
    /// Mean of the guilty app's anomalous readings.
    pub anomaly_mean: f64,
    /// RNG seed; the same seed always yields the same rows and truth.
    pub seed: u64,
}

impl Default for CardinalityExplosionScenario {
    fn default() -> Self {
        CardinalityExplosionScenario {
            num_points: 6_000,
            num_apps: 24,
            guilty_app: 7,
            rows_per_user: 4,
            outlier_fraction: 0.02,
            baseline_mean: 10.0,
            baseline_std: 2.0,
            anomaly_mean: 60.0,
            seed: 0xca4d_1a11,
        }
    }
}

impl CardinalityExplosionScenario {
    fn guilty_value(&self) -> String {
        format!("app_{:02}", self.guilty_app % self.num_apps.max(1))
    }

    fn num_users(&self) -> usize {
        (self.num_points / self.rows_per_user.max(1)).max(1)
    }
}

impl Scenario for CardinalityExplosionScenario {
    fn name(&self) -> &'static str {
        "cardinality_explosion"
    }

    fn analysis(&self) -> AnalysisConfig {
        AnalysisConfig {
            target_percentile: 1.0 - self.outlier_fraction,
            explanation: ExplanationConfig::new(0.1, 3.0),
            attribute_names: vec!["app".to_string(), "user".to_string()],
            retain_outlier_rows: true,
            ..AnalysisConfig::default()
        }
    }

    fn generate(&self) -> GeneratedScenario {
        let mut rng = SplitMix64::new(self.seed);
        let n = self.num_points;
        let apps = self.num_apps.max(1);
        let users = self.num_users();
        let planted = ((n as f64) * self.outlier_fraction).round() as usize;
        let guilty = self.guilty_value();

        let mut points = Vec::with_capacity(n);
        let mut outlier_rows = Vec::with_capacity(planted);
        let mut needed = planted;
        for row in 0..n {
            // Every row gets a user from the wide column; anomalies share
            // the guilty app but NOT a common user, so only the app
            // combination has explanatory support.
            let user = format!("user_{}", rng.next_below(users));
            let remaining = n - row;
            if needed > 0 && rng.next_below(remaining) < needed {
                needed -= 1;
                outlier_rows.push(row);
                let value = normal(&mut rng, self.anomaly_mean, self.baseline_std);
                points.push(Point::new(vec![value], vec![guilty.clone(), user]));
            } else {
                let app = format!("app_{:02}", rng.next_below(apps));
                let value = normal(&mut rng, self.baseline_mean, self.baseline_std);
                points.push(Point::new(vec![value], vec![app, user]));
            }
        }

        GeneratedScenario {
            points,
            truth: GroundTruth {
                outlier_rows,
                guilty_attributes: vec![vec![format!("app={guilty}")]],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn user_column_explodes_while_truth_stays_narrow() {
        let scenario = CardinalityExplosionScenario::default();
        let generated = scenario.generate();
        let users: HashSet<&String> = generated.points.iter().map(|p| &p.attributes[1]).collect();
        assert!(
            users.len() > 1_000,
            "expected >1000 distinct users, got {}",
            users.len()
        );
        assert_eq!(generated.truth.outlier_rows.len(), 120);
        for &row in &generated.truth.outlier_rows {
            assert_eq!(generated.points[row].attributes[0], "app_07");
        }
        // No single user dominates the planted anomalies, so the support
        // threshold can prune every user-level combination.
        let mut per_user: std::collections::HashMap<&String, usize> = Default::default();
        for &row in &generated.truth.outlier_rows {
            *per_user.entry(&generated.points[row].attributes[1]).or_default() += 1;
        }
        let max_share = per_user.values().copied().max().unwrap() as f64
            / generated.truth.outlier_rows.len() as f64;
        assert!(max_share < 0.1, "one user carries {max_share} of anomalies");
    }
}
