//! Labeled fault-injection scenarios and accuracy metrics for MacroBase-RS.
//!
//! The reproduction benchmarks in `mb-bench` mostly gate *throughput*; this
//! crate supplies the other half of the evaluation story: workloads with
//! **ground truth**, so precision/recall and explanation quality can be
//! regression-gated too. It provides:
//!
//! * [`Scenario`] — one trait over seeded, parameterized fault injectors.
//!   Each implementation emits a batch of [`Point`]s plus a [`GroundTruth`]
//!   (which rows were planted anomalies, which attribute combinations are
//!   guilty) and recommends the [`AnalysisConfig`] a diagnostician would run.
//! * Four generators spanning the failure modes in the paper's motivating
//!   deployments (Sections 1–2): [`LevelShiftScenario`] (a misbehaving
//!   device shifts its metric), [`CorrelatedFailureScenario`] (a
//!   DBSherlock-shaped multi-metric failure window on one host),
//!   [`SeasonalDriftScenario`] (spikes on top of a drifting seasonal
//!   baseline), and [`CardinalityExplosionScenario`] (a guilty value hiding
//!   in a high-cardinality attribute column) — plus
//!   [`SelfTelemetryScenario`], the observability layer's dogfood workload:
//!   a recorded stream of the system's own per-stage latency telemetry with
//!   a planted stage regression.
//! * [`eval`] — the single shared implementation of point-level
//!   precision/recall/F1 and explanation-level Jaccard/rank metrics, used by
//!   the integration tests, the `fig4`/`fig11`/`table4` reproductions, and
//!   the `quality_matrix` accuracy harness.
//!
//! Generation is fully deterministic: every scenario owns a `seed` and draws
//! through [`mb_stats::rand_ext::SplitMix64`], so the corpus — and therefore
//! every accuracy metric computed over it — is byte-stable across runs and
//! thread counts.
//!
//! ```
//! use macrobase_core::query::Executor;
//! use mb_scenario::{eval, LevelShiftScenario, Scenario};
//!
//! let scenario = LevelShiftScenario::default();
//! let generated = scenario.generate();
//! let mut query = scenario.query().unwrap();
//! let report = query.execute(&Executor::OneShot, &generated.points).unwrap();
//!
//! let m = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
//! assert!(m.f1() > 0.95);
//! ```

#![warn(missing_docs)]

pub mod cardinality;
pub mod correlated;
pub mod eval;
pub mod level_shift;
pub mod seasonal;
pub mod self_telemetry;

pub use cardinality::CardinalityExplosionScenario;
pub use correlated::CorrelatedFailureScenario;
pub use level_shift::LevelShiftScenario;
pub use seasonal::SeasonalDriftScenario;
pub use self_telemetry::SelfTelemetryScenario;

use macrobase_core::operator::{EncodedBatch, Ingestor};
use macrobase_core::query::{AnalysisConfig, MdpQuery};
use macrobase_core::types::Point;

/// The labels a scenario generator plants alongside its rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// Input-order indices of the rows planted as anomalies, ascending.
    pub outlier_rows: Vec<usize>,
    /// The guilty attribute combinations, rendered exactly as the MDP
    /// explainer renders them (`column=value` strings, sorted within each
    /// combination). Compare against
    /// [`MdpReport::explanations`](macrobase_core::types::MdpReport::explanations)
    /// with [`eval::explanation_jaccard`].
    pub guilty_attributes: Vec<Vec<String>>,
}

/// A generated scenario: the rows to analyze plus their ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedScenario {
    /// The rows, in the input order the truth's indices refer to.
    pub points: Vec<Point>,
    /// What was planted.
    pub truth: GroundTruth,
}

impl GeneratedScenario {
    /// Split into a batching [`Ingestor`] over the rows and the ground
    /// truth, for driving
    /// [`MdpQuery::execute_ingest`](macrobase_core::query::MdpQuery::execute_ingest).
    pub fn into_source(self, batch_size: usize) -> (ScenarioSource, GroundTruth) {
        (ScenarioSource::new(self.points, batch_size), self.truth)
    }
}

/// A seeded, parameterized fault-injection workload with known ground truth.
///
/// Implementations are plain config structs: construct, adjust fields,
/// [`generate`](Scenario::generate). The same configuration always yields
/// the same rows and truth.
pub trait Scenario {
    /// Stable short name, used as the row key in accuracy reports.
    fn name(&self) -> &'static str;

    /// The analysis a diagnostician would run on this workload: estimator,
    /// target percentile matched to the planted outlier mass, explanation
    /// thresholds, and attribute column names. Always enables
    /// [`AnalysisConfig::retain_outlier_rows`] so point-level accuracy can
    /// be scored.
    fn analysis(&self) -> AnalysisConfig;

    /// Generate the rows and their ground truth.
    fn generate(&self) -> GeneratedScenario;

    /// Convenience: the recommended [`analysis`](Scenario::analysis) wrapped
    /// in an [`MdpQuery`], ready for any executor.
    fn query(&self) -> macrobase_core::Result<MdpQuery> {
        Ok(MdpQuery::new(self.analysis()))
    }
}

/// A batching [`Ingestor`] over a generated scenario's rows.
#[derive(Debug)]
pub struct ScenarioSource {
    points: Vec<Point>,
    cursor: usize,
    batch_size: usize,
}

impl ScenarioSource {
    /// Wrap `points`, yielding them in batches of `batch_size` (min 1).
    pub fn new(points: Vec<Point>, batch_size: usize) -> Self {
        ScenarioSource {
            points,
            cursor: 0,
            batch_size: batch_size.max(1),
        }
    }

    /// Total number of rows (delivered plus pending).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the source holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Ingestor for ScenarioSource {
    fn next_batch(&mut self) -> macrobase_core::Result<Option<Vec<Point>>> {
        if self.cursor >= self.points.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(self.points.len());
        let batch = self.points[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(Some(batch))
    }

    // Encode straight off the stored points instead of cloning a `Vec<Point>`
    // per batch (the default adapter would pay that clone only to discard the
    // attribute strings right after encoding them).
    fn next_encoded_batch(
        &mut self,
        encoder: &mut mb_explain::AttributeEncoder,
    ) -> macrobase_core::Result<Option<EncodedBatch>> {
        if self.cursor >= self.points.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(self.points.len());
        let points = &self.points[self.cursor..end];
        self.cursor = end;
        let dim = points[0].dimension();
        let mut batch = EncodedBatch {
            metrics: Vec::with_capacity(points.len() * dim),
            dim,
            items: mb_explain::ItemBatch::with_capacity(points.len(), 2),
        };
        let mut scratch = Vec::new();
        for p in points {
            if p.dimension() != dim {
                return Err(macrobase_core::PipelineError::InconsistentDimensions {
                    expected: dim,
                    actual: p.dimension(),
                });
            }
            batch.metrics.extend_from_slice(&p.metrics);
            encoder.encode_point_into(&p.attributes, &mut scratch);
            batch.items.push_row(&scratch);
        }
        Ok(Some(batch))
    }
}

/// The standard corpus: one instance of every scenario at default parameters
/// with row counts multiplied by `scale` (min 1). `scale = 1` is sized for
/// per-PR CI; the nightly accuracy gate runs `scale = 10`.
pub fn standard_corpus(scale: usize) -> Vec<Box<dyn Scenario>> {
    let scale = scale.max(1);
    let mut level_shift = LevelShiftScenario::default();
    level_shift.num_points *= scale;
    let mut correlated = CorrelatedFailureScenario::default();
    correlated.rows_per_host *= scale;
    let mut seasonal = SeasonalDriftScenario::default();
    seasonal.num_points *= scale;
    seasonal.period *= scale;
    let mut cardinality = CardinalityExplosionScenario::default();
    cardinality.num_points *= scale;
    let mut self_telemetry = SelfTelemetryScenario::default();
    self_telemetry.num_points *= scale;
    vec![
        Box::new(level_shift),
        Box::new(correlated),
        Box::new(seasonal),
        Box::new(cardinality),
        Box::new(self_telemetry),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_batches_cover_all_rows() {
        let scenario = LevelShiftScenario {
            num_points: 250,
            ..LevelShiftScenario::default()
        };
        let generated = scenario.generate();
        let expected = generated.points.clone();
        let (mut source, _truth) = generated.into_source(64);
        assert_eq!(source.len(), 250);
        let mut seen = Vec::new();
        while let Some(batch) = source.next_batch().unwrap() {
            assert!(batch.len() <= 64);
            seen.extend(batch);
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn encoded_batches_match_point_batches() {
        let scenario = LevelShiftScenario {
            num_points: 250,
            ..LevelShiftScenario::default()
        };
        let generated = scenario.generate();
        let (mut points_src, _) = generated.clone().into_source(64);
        let (mut encoded_src, _) = generated.into_source(64);
        let mut expected_encoder = mb_explain::AttributeEncoder::new();
        let mut encoder = mb_explain::AttributeEncoder::new();
        loop {
            let points = points_src.next_batch().unwrap();
            let encoded = encoded_src.next_encoded_batch(&mut encoder).unwrap();
            let Some(points) = points else {
                assert!(encoded.is_none());
                break;
            };
            let encoded = encoded.unwrap();
            assert_eq!(encoded.len(), points.len());
            assert_eq!(encoded.dim, points[0].dimension());
            for (r, p) in points.iter().enumerate() {
                let start = r * encoded.dim;
                assert_eq!(&encoded.metrics[start..start + encoded.dim], &p.metrics[..]);
                assert_eq!(
                    encoded.items.row(r),
                    expected_encoder.encode_point(&p.attributes)
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for scenario in standard_corpus(1) {
            let a = scenario.generate();
            let b = scenario.generate();
            assert_eq!(a, b, "{} must be deterministic", scenario.name());
        }
    }

    #[test]
    fn corpus_truth_is_well_formed() {
        for scenario in standard_corpus(1) {
            let generated = scenario.generate();
            let n = generated.points.len();
            assert!(n > 0, "{} generated no rows", scenario.name());
            let rows = &generated.truth.outlier_rows;
            assert!(!rows.is_empty(), "{} planted no outliers", scenario.name());
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must ascend");
            assert!(*rows.last().unwrap() < n, "row index out of range");
            // Planted mass must match the recommended percentile cut to
            // within a percent of the population, or the scenario's own
            // query could never recover it.
            let mass = rows.len() as f64 / n as f64;
            let cut = 1.0 - scenario.analysis().target_percentile;
            assert!(
                (mass - cut).abs() < 0.01,
                "{}: planted mass {mass} vs percentile cut {cut}",
                scenario.name()
            );
            assert!(!generated.truth.guilty_attributes.is_empty());
            let analysis = scenario.analysis();
            assert!(analysis.retain_outlier_rows);
            for combo in &generated.truth.guilty_attributes {
                for attr in combo {
                    let column = attr.split('=').next().unwrap();
                    assert!(
                        analysis.attribute_names.iter().any(|c| c == column),
                        "{}: guilty attribute {attr} names unknown column",
                        scenario.name()
                    );
                }
            }
        }
    }
}
